"""Table V — human-readable masking rules extracted via SHAP.

The paper's Table V lists conjunction rules over neighbourhood gate types
and connectivity ("As long as G4 = NAND && ... -> Select & Replace with
masking gate" / "Do not Mask").  This bench extracts the same kind of rules
from the trained AdaBoost model with Tree SHAP + the rule extractor, prints
them, and checks that the rule set is non-trivial and usable as a
standalone classifier (the "rules only" mode of §IV-B).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ExperimentRecord
from repro.xai import RuleExtractor

from bench_common import write_text_result


def test_table5_rule_extraction(benchmark, trained_polaris_bench, recorder):
    extractor = RuleExtractor(top_features=4, min_support=2, max_rules=4)

    def extract():
        explanations = trained_polaris_bench.explain(max_samples=60)
        return extractor.extract(explanations), explanations

    rules, explanations = benchmark.pedantic(extract, rounds=1, iterations=1)

    rendered = rules.describe() if len(rules) else "(no rules met the support threshold)"
    print("\nTable V reproduction (SHAP-extracted masking rules)")
    print(rendered)
    write_text_result("table5_rules", rendered)
    recorder.record(ExperimentRecord(
        "table5", "SHAP-extracted masking rules",
        parameters={"top_features": 4, "min_support": 2},
        rows=[{"rule": rule.describe(), "action": rule.action,
               "support": rule.support} for rule in rules.rules]))

    # Shape: at least one rule is extracted, rules reference structural
    # conditions, and the rule set agrees with the model on a majority of
    # the samples it covers.
    assert len(rules) >= 1
    assert any("G" in condition.feature or condition.feature.endswith("fraction")
               or condition.feature in ("fanin", "fanout", "depth_ratio",
                                        "neighborhood_size")
               for rule in rules.rules for condition in rule.conditions)

    dataset = trained_polaris_bench.dataset
    model_scores = trained_polaris_bench.model.positive_score(dataset.features)
    agreements = []
    for features, score in zip(dataset.features, model_scores):
        action = rules.predict_action(features)
        if action is None:
            continue
        agreements.append((action == "mask") == (score >= 0.5))
    if agreements:
        assert float(np.mean(agreements)) >= 0.5
