"""Table III — leakage reduction by ML model family.

Trains POLARIS with Random Forest (+SMOTE), XGBoost-style gradient boosting
(weighted) and AdaBoost (weighted) on the same cognition dataset and compares
the leakage reduction on a subset of the evaluation suite.  The paper's
observation is that the boosted models beat Random Forest on average and
AdaBoost is the best choice overall.

The comparison is run at a 50 % mask budget rather than the paper's full
mask: with the scaled-down designs a full budget covers nearly every
maskable gate, which would hide the ranking differences between the model
families that this table is meant to expose.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ExperimentRecord,
    TrainedPolaris,
    format_table,
    protect_design,
    train_masking_model,
)
from repro.tvla import assess_leakage

from bench_common import bench_polaris_config, bench_tvla_config, write_text_result

MODEL_FAMILIES = ("random_forest", "xgboost", "adaboost")
#: Subset keeps the 3-model sweep quick; override via POLARIS_BENCH_DESIGNS.
TABLE3_DESIGNS = ("des3", "voter", "multiplier", "md5")


def test_table3_model_comparison(benchmark, trained_polaris_bench,
                                 evaluation_suite, recorder):
    base_config = bench_polaris_config()
    dataset = trained_polaris_bench.dataset
    designs = [d for d in evaluation_suite if d.name in TABLE3_DESIGNS] or \
        list(evaluation_suite)[:3]
    tvla = bench_tvla_config()
    baselines = {design.name: assess_leakage(design, tvla) for design in designs}

    rows = []

    def run_sweep():
        rows.clear()
        per_model = {}
        for family in MODEL_FAMILIES:
            config = base_config.with_model(family)
            model = train_masking_model(dataset, config)
            trained = TrainedPolaris(
                model=model, dataset=dataset,
                cognition_report=trained_polaris_bench.cognition_report,
                config=config, encoder=trained_polaris_bench.encoder)
            per_model[family] = {}
            for design in designs:
                report = protect_design(design, trained, mask_fraction=0.5,
                                        before=baselines[design.name])
                per_model[family][design.name] = report.leakage_reduction_pct
        for design in designs:
            rows.append({
                "design": design.name,
                **{family: per_model[family][design.name]
                   for family in MODEL_FAMILIES},
            })
        return rows

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    averages = {family: float(np.mean([row[family] for row in rows]))
                for family in MODEL_FAMILIES}
    table = [[row["design"]] + [row[f] for f in MODEL_FAMILIES] for row in rows]
    table.append(["Average"] + [averages[f] for f in MODEL_FAMILIES])
    rendered = format_table(["design", "random_forest", "xgboost", "adaboost"], table)
    print("\nTable III reproduction (leakage reduction % by model family)")
    print(rendered)
    write_text_result("table3_ml_models", rendered)
    recorder.record(ExperimentRecord(
        "table3", "Leakage reduction by ML model family",
        parameters={"designs": [d.name for d in designs]},
        rows=rows + [{"design": "Average", **averages}]))

    # Shape: every family reduces leakage substantially and the families
    # land in one comparable band.  The paper's ~2 pp AdaBoost > XGBoost >
    # RF ranking is below the statistical resolution of the CI-scale
    # campaigns (500 traces vs the paper's 10,000), so asserting the exact
    # winner here would pin down seed noise rather than model quality.
    assert all(value > 10.0 for value in averages.values())
    assert max(averages.values()) - min(averages.values()) < 10.0
