"""Fig. 4 — per-gate TVLA t-values before and after POLARIS masking (des3).

The paper's Fig. 4 plots the TVLA t statistic of every gate of the ``des3``
design before and after POLARIS masking against the ±4.5 threshold.  This
bench regenerates the underlying series, renders a text histogram of the
|t| distribution in both conditions, and checks the figure's message: the
number of gates above the threshold collapses after masking.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ExperimentRecord, format_table, protect_design
from repro.tvla import TVLA_THRESHOLD, assess_leakage

from bench_common import bench_tvla_config, write_text_result

BINS = (0.0, 2.0, 4.5, 9.0, 18.0, float("inf"))


def _histogram(values: np.ndarray) -> list:
    counts = []
    for low, high in zip(BINS[:-1], BINS[1:]):
        counts.append(int(((values >= low) & (values < high)).sum()))
    return counts


def test_fig4_tvla_before_after_masking(benchmark, trained_polaris_bench,
                                        evaluation_suite, recorder):
    design = next((d for d in evaluation_suite if d.name == "des3"),
                  evaluation_suite[0])
    tvla = bench_tvla_config()

    def run():
        before = assess_leakage(design, tvla)
        report = protect_design(design, trained_polaris_bench,
                                mask_fraction=1.0, before=before)
        return before, report.after

    before, after = benchmark.pedantic(run, rounds=1, iterations=1)

    abs_before = np.abs(before.t_values)
    abs_after = np.abs(after.t_values)
    headers = ["|t| bin", "before", "after POLARIS"]
    labels = ["[0, 2)", "[2, 4.5)", "[4.5, 9)", "[9, 18)", ">= 18"]
    rows = [[label, b, a] for label, b, a in
            zip(labels, _histogram(abs_before), _histogram(abs_after))]
    rows.append(["gates above 4.5", int(before.n_leaky), int(after.n_leaky)])
    rendered = format_table(headers, rows)
    print(f"\nFig. 4 reproduction (per-gate |t| on {design.name}, threshold "
          f"{TVLA_THRESHOLD})")
    print(rendered)
    write_text_result("fig4_tvla_before_after", rendered)
    recorder.record(ExperimentRecord(
        "fig4", "Per-gate TVLA t-values before/after POLARIS masking",
        parameters={"design": design.name, "threshold": TVLA_THRESHOLD},
        rows=[{"gate": name, "t_before": float(tb),
               # Look the after-value up by name: the before and after
               # assessments order their gates differently (the masked
               # design groups masked composites into sub-ranges).
               "t_after": after.gate_t_value(name)}
              for name, tb in zip(before.gate_names, before.t_values)]))

    # Shape: the unprotected design has many gates above the threshold and
    # masking removes the large majority of them.
    assert before.n_leaky > 0.3 * len(before.gate_names)
    assert after.n_leaky < before.n_leaky
    assert after.n_leaky <= 0.6 * before.n_leaky
    assert float(np.mean(abs_after)) < float(np.mean(abs_before))
