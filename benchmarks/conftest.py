"""Pytest fixtures for the benchmark harness (see bench_common.py)."""

from __future__ import annotations

import pytest

from bench_common import (
    BENCH_DESIGNS,
    BENCH_SCALE,
    RESULTS_DIR,
    bench_polaris_config,
)

from repro.core import ExperimentRecorder, train_polaris
from repro.workloads import WorkloadConfig, evaluation_designs, training_designs


@pytest.fixture(scope="session")
def recorder() -> ExperimentRecorder:
    fixture_recorder = ExperimentRecorder(RESULTS_DIR)
    yield fixture_recorder
    if not fixture_recorder.records:
        return
    # Merge with the existing latest.json instead of overwriting it: a
    # partial run (e.g. the default `-m "not slow"` selection, or a single
    # bench module) refreshes only the experiments it re-ran and keeps the
    # records of everything else (such as the slow 10k-trace microbenches).
    latest = RESULTS_DIR / "latest.json"
    if latest.exists():
        fresh_ids = {record.experiment_id
                     for record in fixture_recorder.records}
        kept = [record for record in ExperimentRecorder.load(latest)
                if record.experiment_id not in fresh_ids]
        fixture_recorder.records = kept + fixture_recorder.records
    fixture_recorder.save("latest.json")


@pytest.fixture(scope="session")
def training_suite():
    return training_designs(WorkloadConfig(scale=0.5, seed=2025))


@pytest.fixture(scope="session")
def evaluation_suite():
    return evaluation_designs(WorkloadConfig(scale=BENCH_SCALE, seed=2025,
                                             designs=BENCH_DESIGNS))


@pytest.fixture(scope="session")
def trained_polaris_bench(training_suite):
    """POLARIS trained once per benchmark session (AdaBoost model)."""
    return train_polaris(training_suite, bench_polaris_config())
