"""Ablation benches for the design choices called out in DESIGN.md.

These go beyond the paper's tables:

* mask-size sweep — leakage reduction as the budget grows from 25 % to 100 %
  of the leaky-gate count (extends Table II's three points);
* locality sweep — effect of the structural-feature locality ``L``;
* equal-cells VALIANT ablation — when the VALIANT baseline is given the same
  masking cells (residual factor) as POLARIS, the per-gate protection gap
  closes, isolating how much of Table II's difference comes from cell
  quality vs selection quality.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.baselines import ValiantConfig, valiant_protect
from repro.core import (
    ExperimentRecord,
    ModelConfig,
    PolarisConfig,
    format_table,
    protect_design,
    train_polaris,
)
from repro.power import PowerModelConfig
from repro.tvla import TvlaConfig, assess_leakage
from repro.workloads import WorkloadConfig, evaluation_designs, training_designs

from bench_common import bench_tvla_config, write_text_result


def test_mask_size_sweep(benchmark, trained_polaris_bench, evaluation_suite,
                         recorder):
    """Leakage reduction versus mask budget (25/50/75/100 % of leaky gates)."""
    design = next((d for d in evaluation_suite if d.name == "voter"),
                  evaluation_suite[0])
    tvla = bench_tvla_config()
    before = assess_leakage(design, tvla)
    fractions = (0.25, 0.5, 0.75, 1.0)

    def sweep():
        return [protect_design(design, trained_polaris_bench, fraction,
                               before=before).leakage_reduction_pct
                for fraction in fractions]

    reductions = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[f"{int(f * 100)}%", r] for f, r in zip(fractions, reductions)]
    rendered = format_table(["mask size", "leakage reduction %"], rows)
    print(f"\nAblation: mask-size sweep on {design.name}")
    print(rendered)
    write_text_result("ablation_mask_size", rendered)
    recorder.record(ExperimentRecord(
        "ablation_mask_size", "Leakage reduction vs mask budget",
        parameters={"design": design.name},
        rows=[{"fraction": f, "reduction_pct": r}
              for f, r in zip(fractions, reductions)]))

    # Reduction must grow (within TVLA noise) as the budget grows.
    assert reductions[-1] >= reductions[0]
    assert reductions[-1] > 25.0


def test_locality_sweep(benchmark, training_suite, evaluation_suite, recorder):
    """Effect of the BFS locality L on downstream leakage reduction."""
    localities = (2, 4, 7)
    tvla = TvlaConfig(n_traces=300, n_fixed_classes=3, seed=13)
    design = next((d for d in evaluation_suite if d.name == "des3"),
                  evaluation_suite[0])
    before = assess_leakage(design, tvla)
    train_subset = training_suite[:3]

    def sweep():
        results = []
        for locality in localities:
            config = PolarisConfig(
                msize=30, locality=locality, iterations=4, tvla=tvla,
                model=ModelConfig(model_type="adaboost", learning_rate=0.2,
                                  n_estimators=40, max_depth=2), seed=5)
            trained = train_polaris(train_subset, config)
            report = protect_design(design, trained, mask_fraction=0.5,
                                    before=before)
            results.append(report.leakage_reduction_pct)
        return results

    reductions = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[l, r] for l, r in zip(localities, reductions)]
    rendered = format_table(["locality L", "leakage reduction % (50% mask)"], rows)
    print(f"\nAblation: locality sweep on {design.name}")
    print(rendered)
    write_text_result("ablation_locality", rendered)
    recorder.record(ExperimentRecord(
        "ablation_locality", "Leakage reduction vs feature locality L",
        parameters={"design": design.name},
        rows=[{"locality": l, "reduction_pct": r}
              for l, r in zip(localities, reductions)]))

    assert all(r > 10.0 for r in reductions)


def test_valiant_equal_cells_ablation(benchmark, evaluation_suite, recorder):
    """Give VALIANT POLARIS-grade cells: the per-gate protection gap closes."""
    design = next((d for d in evaluation_suite if d.name == "sin"),
                  evaluation_suite[0])
    base_power = PowerModelConfig()
    tvla_default = bench_tvla_config()
    equal_power = dataclasses.replace(base_power,
                                      valiant_residual=base_power.masked_residual)
    tvla_equal = dataclasses.replace(tvla_default, power=equal_power)
    before = assess_leakage(design, tvla_default)
    base = before.mean_leakage

    def run_both():
        default = valiant_protect(design, ValiantConfig(tvla=tvla_default))
        default_after = assess_leakage(default.masked_netlist, tvla_default)
        equal = valiant_protect(design, ValiantConfig(tvla=tvla_equal,
                                                      overhead_scale=1.0))
        equal_after = assess_leakage(equal.masked_netlist, tvla_equal)
        return (100 * (base - default_after.mean_leakage) / base,
                100 * (base - equal_after.mean_leakage) / base)

    default_red, equal_red = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rendered = format_table(
        ["VALIANT variant", "leakage reduction %"],
        [["VALIANT cells (paper setting)", default_red],
         ["POLARIS-grade cells (ablation)", equal_red]])
    print(f"\nAblation: VALIANT with equal masking cells on {design.name}")
    print(rendered)
    write_text_result("ablation_valiant_equal_cells", rendered)
    recorder.record(ExperimentRecord(
        "ablation_valiant_cells", "VALIANT with POLARIS-grade cells",
        parameters={"design": design.name},
        rows=[{"variant": "valiant_cells", "reduction_pct": default_red},
              {"variant": "polaris_cells", "reduction_pct": equal_red}]))

    # With equal cells VALIANT improves: the residual-factor substitution is
    # what models the per-gate protection gap of Table II.
    assert equal_red >= default_red - 2.0
