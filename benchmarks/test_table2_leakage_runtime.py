"""Table II — leakage reduction and runtime: VALIANT vs POLARIS.

Reproduces the paper's headline comparison: per-gate leakage before
protection and after VALIANT / POLARIS at 50 %, 75 % and 100 % mask sizes
(percentages of the leaky-gate count found by TVLA), total leakage reduction
per design, and the runtime of each flow.

The expected *shape* (absolute numbers depend on the simulated substrate):

* POLARIS at 50 % mask is competitive with VALIANT's full protection;
* POLARIS reduction grows monotonically with the mask size and exceeds
  VALIANT at 75 % / 100 %;
* POLARIS's decision runtime is several times smaller than VALIANT's
  TVLA-iteration-dominated runtime.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ValiantConfig, valiant_protect
from repro.core import ExperimentRecord, format_table, protect_design
from repro.tvla import assess_leakage

from bench_common import bench_tvla_config, write_text_result

COLUMNS = [
    "design", "before", "valiant", "polaris_50", "polaris_75", "polaris_100",
    "red_valiant", "red_50", "red_75", "red_100", "time_valiant", "time_polaris",
]


def _run_design(design, trained):
    tvla = bench_tvla_config()
    before = assess_leakage(design, tvla)
    base = before.mean_leakage

    reports = {}
    for fraction in (0.5, 0.75, 1.0):
        reports[fraction] = protect_design(design, trained, fraction, before=before)

    valiant = valiant_protect(design, ValiantConfig(tvla=tvla))
    valiant_after = assess_leakage(valiant.masked_netlist, tvla)
    valiant_reduction = 0.0
    if base > 0:
        valiant_reduction = (base - valiant_after.mean_leakage) / base * 100.0

    return {
        "design": design.name,
        "before": base,
        "valiant": valiant_after.mean_leakage,
        "polaris_50": reports[0.5].after.mean_leakage,
        "polaris_75": reports[0.75].after.mean_leakage,
        "polaris_100": reports[1.0].after.mean_leakage,
        "red_valiant": valiant_reduction,
        "red_50": reports[0.5].leakage_reduction_pct,
        "red_75": reports[0.75].leakage_reduction_pct,
        "red_100": reports[1.0].leakage_reduction_pct,
        "time_valiant": valiant.runtime_seconds,
        "time_polaris": reports[0.5].polaris_seconds,
    }


def test_table2_leakage_and_runtime(benchmark, trained_polaris_bench,
                                    evaluation_suite, recorder):
    rows = []

    def run_all():
        rows.clear()
        for design in evaluation_suite:
            rows.append(_run_design(design, trained_polaris_bench))
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    averages = {key: float(np.mean([row[key] for row in rows]))
                for key in COLUMNS if key != "design"}
    averages["design"] = "Average"
    table_rows = [[row[col] for col in COLUMNS] for row in rows + [averages]]
    rendered = format_table(COLUMNS, table_rows)
    print("\nTable II reproduction (leakage value per gate, reduction %, time s)")
    print(rendered)
    write_text_result("table2_leakage_runtime", rendered)
    recorder.record(ExperimentRecord(
        "table2", "Leakage reduction and runtime, VALIANT vs POLARIS",
        parameters={"designs": [d.name for d in evaluation_suite]},
        rows=rows + [averages]))

    # Shape assertions (averaged over the suite).
    assert averages["red_50"] > 25.0
    assert averages["red_75"] >= averages["red_50"] - 2.0
    assert averages["red_100"] >= averages["red_75"] - 2.0
    assert averages["red_100"] > averages["red_valiant"]
    # POLARIS at half the mask budget is competitive with VALIANT (within a
    # 12-point band, as in the paper where the two are statistically tied).
    assert averages["red_50"] >= averages["red_valiant"] - 12.0
    # POLARIS decision time is well below VALIANT's TVLA-driven runtime.
    assert averages["time_polaris"] * 3.0 < averages["time_valiant"]
