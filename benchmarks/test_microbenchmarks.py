"""Micro-benchmarks of the substrate primitives.

Unlike the table/figure benches (single-shot experiment reproductions) these
use pytest-benchmark's normal repeated timing to track the throughput of the
hot paths: gate-level simulation, per-gate power-trace generation, the TVLA
assessment (naive two-pass vs one-pass accumulator), structural feature
extraction, and model inference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.features import StructuralFeatureExtractor
from repro.netlist import load_benchmark
from repro.power import PowerTraceGenerator
from repro.simulation import LogicSimulator, fixed_vs_random_campaigns
from repro.tvla import OnePassMoments, TvlaConfig, assess_leakage, welch_t_test

from bench_common import BENCH_SCALE


@pytest.fixture(scope="module")
def design():
    return load_benchmark("md5", scale=BENCH_SCALE, seed=3)


def test_logic_simulation_throughput(benchmark, design):
    simulator = LogicSimulator(design)
    rng = np.random.default_rng(0)
    stimulus = {net: rng.integers(0, 2, 2000).astype(bool)
                for net in design.primary_inputs}
    result = benchmark(simulator.evaluate, stimulus)
    assert result.n_vectors == 2000


def test_power_trace_generation_throughput(benchmark, design):
    generator = PowerTraceGenerator(design, seed=1)
    fixed, _ = fixed_vs_random_campaigns(design, 500, seed=1)
    traces = benchmark(generator.generate, fixed)
    assert traces.per_gate.shape == (500, len(design))


def test_tvla_assessment_throughput(benchmark, design):
    config = TvlaConfig(n_traces=300, n_fixed_classes=1, seed=2)
    assessment = benchmark(assess_leakage, design, config)
    assert len(assessment.gate_names) == len(design)


def test_welch_two_pass_throughput(benchmark):
    rng = np.random.default_rng(0)
    group0 = rng.normal(size=(2000, 300))
    group1 = rng.normal(0.1, 1.0, size=(2000, 300))
    result = benchmark(welch_t_test, group0, group1)
    assert result.t_statistic.shape == (300,)


def test_one_pass_moments_throughput(benchmark):
    rng = np.random.default_rng(0)
    samples = rng.normal(size=(2000, 300))

    def accumulate():
        acc = OnePassMoments(max_order=2, shape=(300,))
        acc.update_batch(samples)
        return acc

    acc = benchmark(accumulate)
    assert acc.count == 2000


def test_feature_extraction_throughput(benchmark, design):
    extractor = StructuralFeatureExtractor(design, locality=7)
    names, matrix = benchmark(extractor.extract_all, True)
    assert matrix.shape[0] == len(names)


def test_model_inference_throughput(benchmark, trained_polaris_bench, design):
    extractor = StructuralFeatureExtractor(design, locality=7,
                                           encoder=trained_polaris_bench.encoder)
    _, matrix = extractor.extract_all(maskable_only=True)
    scores = benchmark(trained_polaris_bench.model.positive_score, matrix)
    assert scores.shape[0] == matrix.shape[0]
