"""Micro-benchmarks of the substrate primitives.

Unlike the table/figure benches (single-shot experiment reproductions) these
use pytest-benchmark's normal repeated timing to track the throughput of the
hot paths: gate-level simulation, per-gate power-trace generation (the
vectorised streaming engine vs the reference per-gate loop, at the paper's
10,000-trace scale), the TVLA assessment (streaming one-pass vs naive
two-pass), structural feature extraction, and model inference.

The vectorised-vs-loop comparison is recorded in
``benchmarks/results/latest.json`` (experiment id
``microbench_trace_generation``), the fused-kernel-vs-gate-loop simulation
sweep as ``microbench_compiled_sweep``, the packed end-to-end hot path vs
the pre-fusion oracle as ``microbench_packed_power``, the fused-vs-naive
moment update as ``microbench_moment_update``, the flat-array batch
model scoring + batched TreeSHAP vs their per-sample oracles as
``microbench_ml_scoring``, and the shard-count scaling curve of the
sharded TVLA driver (both simulation backends) as
``microbench_sharded_tvla_scaling``.  The speedup metrics of the non-slow
benches are anchored in ``benchmarks/results/baseline.json`` and gated
against >25% regressions by ``tools/check_bench_regression.py`` (the CI
``bench-regression`` job).

The 10k-trace benches are marked ``slow``: they are deselected by default
(see ``pytest.ini``) and in CI; run them with ``pytest -m slow benchmarks``
or the whole suite with ``pytest -m ""``.
"""

from __future__ import annotations

import os
import time
import timeit

import numpy as np
import pytest

from repro.core import ExperimentRecord
from repro.features import StructuralFeatureExtractor
from repro.masking import apply_masking, maskable_gates
from repro.netlist import load_benchmark
from repro.power import CounterStream, PowerTraceGenerator
from repro.simulation import LogicSimulator, fixed_vs_random_campaigns
from repro.tvla import (
    OnePassMoments,
    TvlaConfig,
    assess_leakage,
    assess_leakage_sharded,
    chunk_seed_streams,
    welch_t_test,
)
from repro.tvla.welch import welch_from_accumulators

from bench_common import BENCH_SCALE

#: Trace count of the paper-scale generation benchmark (§V-A).
PAPER_TRACES = 10_000


@pytest.fixture(scope="module")
def design():
    return load_benchmark("md5", scale=BENCH_SCALE, seed=3)


@pytest.fixture(scope="module")
def comparison_design():
    """Bench netlist for the vectorised-vs-loop comparison.

    Pinned to at least the default scale so shrinking
    ``POLARIS_BENCH_SCALE`` (where fixed per-call overhead dominates both
    engines) cannot flake the speedup assertion.
    """
    return load_benchmark("md5", scale=max(BENCH_SCALE, 0.35), seed=3)


@pytest.fixture(scope="module")
def masked_design(comparison_design):
    """The bench netlist fully masked — the post-protection TVLA workload."""
    return apply_masking(comparison_design,
                         maskable_gates(comparison_design)).netlist


def test_logic_simulation_throughput(benchmark, design):
    simulator = LogicSimulator(design)
    rng = np.random.default_rng(0)
    stimulus = {net: rng.integers(0, 2, 2000).astype(bool)
                for net in design.primary_inputs}
    result = benchmark(simulator.evaluate, stimulus)
    assert result.n_vectors == 2000


def test_compiled_sweep_microbench(recorder):
    """Fused levelised kernel vs the per-gate loop: per-trace sweep time.

    Evaluates several paper benchmark netlists at full (paper) scale with a
    TVLA-representative batch (`chunk_traces` default of 2048 vectors) on
    both simulation backends, checks bit-identical outputs, and records the
    per-trace kernel times as ``microbench_compiled_sweep``.  The fused
    kernel must at least halve the per-trace sweep time on the widest
    designs (the designs whose levels fuse into large segments); the deep
    narrow ones still have to win, just by a thinner margin.
    """
    batch = 2048
    rows = []
    for name in ("md5", "des3", "log2", "memctrl"):
        netlist = load_benchmark(name, scale=1.0, seed=3)
        compiled = LogicSimulator(netlist, backend="compiled")
        loop = LogicSimulator(netlist, backend="loop")
        assert compiled.backend == "compiled"
        rng = np.random.default_rng(0)
        stimulus = {net: rng.integers(0, 2, batch).astype(bool)
                    for net in netlist.primary_inputs}

        reference = loop.evaluate(stimulus)
        result = compiled.evaluate(stimulus)
        for net in reference.net_values:
            np.testing.assert_array_equal(result.net_values[net],
                                          reference.net_values[net])

        def best_of(fn, repeats=5, number=10):
            return min(timeit.timeit(fn, number=number)
                       for _ in range(repeats)) / number

        loop_seconds = best_of(lambda: loop.evaluate(stimulus))
        compiled_seconds = best_of(lambda: compiled.evaluate(stimulus))
        stats = compiled.plan.describe()
        rows.append({
            "design": netlist.name,
            "n_gates": len(netlist),
            "n_levels": stats["n_levels"],
            "n_segments": stats["n_segments"],
            "gates_per_segment": stats["gates_per_segment"],
            "batch": batch,
            "loop_us_per_trace": loop_seconds / batch * 1e6,
            "compiled_us_per_trace": compiled_seconds / batch * 1e6,
            "speedup": loop_seconds / compiled_seconds,
        })

    recorder.record(ExperimentRecord(
        experiment_id="microbench_compiled_sweep",
        description=("Fused levelised simulation kernel vs per-gate loop: "
                     f"per-trace sweep time at batch {batch}, paper-scale "
                     "netlists"),
        parameters={"scale": 1.0, "batch": batch},
        rows=rows,
    ))
    # Best-of-N minima keep the ratios stable under runner load; the floors
    # are deliberately loose (the measured margins are 1.6-2.5x) so only a
    # genuine kernel regression fails the always-on suite.
    speedups = {row["design"]: row["speedup"] for row in rows}
    assert max(speedups.values()) >= 2.0, (
        f"fused kernel never reached 2x over the per-gate loop: {speedups}")
    assert all(value > 1.0 for value in speedups.values()), (
        f"fused kernel regressed below the loop on some designs: {speedups}")


def _tvla_end_to_end(design, power_backend, fused_moments,
                     n_traces=PAPER_TRACES, chunk=2048, seed=2,
                     sampler="sequence"):
    """One full trace-generation + streaming-TVLA pass (order 1, 1 class).

    Mirrors the chunked driver (per-chunk spawned RNG streams, one-pass
    accumulators, Welch from merged moments) but lets the caller pick the
    extraction backend, the moment-update implementation and the sampling
    discipline, so the bench can time the packed fast path against the
    pre-fusion oracle (and the counter sampler against the SeedSequence
    streams) on identical work.
    """
    generator = PowerTraceGenerator(design, seed=seed,
                                    power_backend=power_backend)
    campaigns = fixed_vs_random_campaigns(design, n_traces, seed=seed)
    n_chunks = (n_traces + chunk - 1) // chunk
    accumulators = []
    for group_index, campaign in enumerate(campaigns):
        acc = OnePassMoments(max_order=2, shape=(generator.n_gates,))
        fold = acc.update_batch if fused_moments else acc.update_batch_naive
        if sampler == "counter":
            blocks = generator.generate_stream(
                campaign, chunk,
                counter_stream=CounterStream(seed, 0, group_index))
        else:
            seeds = chunk_seed_streams(seed, 0, group_index, n_chunks)
            blocks = generator.generate_stream(campaign, chunk, seeds=seeds)
        for traces in blocks:
            fold(traces.per_gate)
        accumulators.append(acc)
    return welch_from_accumulators(accumulators[0], accumulators[1])


def _simulation_only(design, n_traces=PAPER_TRACES, chunk=2048, seed=2):
    """Just the two per-chunk simulator sweeps of ``_tvla_end_to_end``.

    Both sampling disciplines share this work verbatim, so subtracting it
    isolates the sampler-sensitive share (mask/noise draws + toggle
    assembly + moments) of the end-to-end chunk time.
    """
    simulator = LogicSimulator(design)
    for campaign in fixed_vs_random_campaigns(design, n_traces, seed=seed):
        for start in range(0, n_traces, chunk):
            block = campaign.slice(start, min(n_traces, start + chunk))
            prev_inputs, cur_inputs = block.as_dicts()
            simulator.evaluate(prev_inputs)
            simulator.evaluate(cur_inputs)


def test_packed_power_microbench(comparison_design, masked_design, recorder):
    """The packed end-to-end hot path vs the pre-PR oracle at paper scale.

    Runs 10,000-trace trace-generation + streaming TVLA per group on the
    bench designs two ways: the fast path (``power_backend="packed"`` +
    fused ``update_batch``) and the bit-identical oracle it replaced
    (``power_backend="unpacked"`` + naive per-order moment updates — the
    pre-PR pipeline, kept in-tree).  T-values must be **exactly** equal;
    the fast path must be >= 1.3x faster end to end.  The
    ``power_backend_only`` rows isolate the packed-extraction share of the
    win (same fused moments on both sides, not asserted — on masked
    designs the shared mask/noise sampling dominates that slice).

    The ``sampler_*`` rows time the counter-based Philox sampler
    (``TvlaConfig(sampler="counter")``, the default since PR 8) against
    the frozen SeedSequence streams on the masked design, where
    mask/noise sampling is a meaningful share of each chunk:
    ``sampler_chunk`` is the full end-to-end ratio, ``sampler_share``
    subtracts the simulator sweeps both disciplines share verbatim.  The
    two samplers draw different bits by design, so there is no equality
    assertion here — the counter sampler's bitwise contracts live in
    ``tests/test_ctrsample.py``.

    Best-of-5 minima keep the asserted ratio stable under runner load
    (measured margins are 1.4-1.6x against the 1.3 floor); the long-term
    trajectory is separately gated by ``tools/check_bench_regression.py``
    with a 25% tolerance against the committed baseline.
    """

    def best_of(fn, repeats=5):
        return min(timeit.timeit(fn, number=1) for _ in range(repeats))

    rows = []
    speedups = {}
    for label, design in (("unmasked", comparison_design),
                          ("masked", masked_design)):
        fast = best_of(lambda: _tvla_end_to_end(design, "packed", True))
        oracle = best_of(lambda: _tvla_end_to_end(design, "unpacked", False))
        unpacked_fused = best_of(
            lambda: _tvla_end_to_end(design, "unpacked", True))
        fast_result = _tvla_end_to_end(design, "packed", True)
        oracle_result = _tvla_end_to_end(design, "unpacked", False)
        np.testing.assert_array_equal(fast_result.t_statistic,
                                      oracle_result.t_statistic)
        speedups[label] = oracle / fast
        rows.append({
            "design": design.name,
            "variant": label,
            "comparison": "full_hot_path_vs_oracle",
            "n_traces": PAPER_TRACES,
            "n_gates": len(design),
            "oracle_seconds": oracle,
            "fast_seconds": fast,
            "speedup": oracle / fast,
            "t_values_exactly_equal": True,
        })
        rows.append({
            "design": design.name,
            "variant": label,
            "comparison": "power_backend_only",
            "n_traces": PAPER_TRACES,
            "n_gates": len(design),
            "oracle_seconds": unpacked_fused,
            "fast_seconds": fast,
            "speedup": unpacked_fused / fast,
            "t_values_exactly_equal": True,
        })

    counter = best_of(
        lambda: _tvla_end_to_end(masked_design, "packed", True,
                                 sampler="counter"))
    sequence = best_of(
        lambda: _tvla_end_to_end(masked_design, "packed", True,
                                 sampler="sequence"))
    sim_seconds = best_of(lambda: _simulation_only(masked_design))
    sampler_speedups = {
        "sampler_chunk": sequence / counter,
        "sampler_share": (sequence - sim_seconds) / (counter - sim_seconds),
    }
    for comparison, speedup in sampler_speedups.items():
        rows.append({
            "design": masked_design.name,
            "variant": "masked",
            "comparison": comparison,
            "n_traces": PAPER_TRACES,
            "n_gates": len(masked_design),
            "oracle_seconds": sequence,
            "fast_seconds": counter,
            "sim_seconds": sim_seconds,
            "speedup": speedup,
            "t_values_exactly_equal": False,
        })

    recorder.record(ExperimentRecord(
        experiment_id="microbench_packed_power",
        description=("Packed end-to-end hot path (packed toggle extraction "
                     "+ fused moment updates) vs the pre-PR oracle "
                     f"(unpacked + naive updates) at {PAPER_TRACES} traces; "
                     "t-values exactly equal.  sampler_* rows: counter "
                     "Philox sampler vs the frozen SeedSequence streams on "
                     "the masked design (different draws by design)"),
        parameters={"scale": max(BENCH_SCALE, 0.35),
                    "n_traces": PAPER_TRACES, "chunk_traces": 2048,
                    "cpu_count": os.cpu_count()},
        rows=rows,
    ))
    assert min(speedups.values()) >= 1.3, (
        f"packed end-to-end hot path below the 1.3x floor vs the oracle: "
        f"{speedups}")
    # The counter sampler's measured margin over the sequence streams is
    # thin (~1.03-1.04x on the masked bench design) — the headline win of
    # sampler="counter" is the bitwise layout invariance, not wall clock.
    # The in-test floor only catches the sampler becoming materially
    # *slower*; the speedup trajectory itself is gated against baseline.
    assert min(sampler_speedups.values()) >= 0.8, (
        f"counter sampler materially slower than the SeedSequence streams: "
        f"{sampler_speedups}")


def test_moment_update_fused_microbench(recorder):
    """Fused (in-place Horner) vs naive ``update_batch`` power chain.

    Times one paper-scale chunk fold — a float32 gate-major trace block,
    exactly the ``traces.per_gate`` layout — per accumulator order: the
    order-1 TVLA default (central sums to 2) and order-3 TVLA (sums to 6,
    where the naive ``delta**k`` chain allocated one fresh matrix per
    order).  Both implementations are bit-identical (pinned by
    tests/test_packed_power.py); recorded as ``microbench_moment_update``.
    """

    def best_of(fn, repeats=7, number=5):
        return min(timeit.timeit(fn, number=number)
                   for _ in range(repeats)) / number

    rng = np.random.default_rng(0)
    n_traces, n_gates = 2048, 300
    # Gate-major block transposed into the public (n_traces, n_gates)
    # trace layout, as the streaming driver hands it to the accumulator.
    samples = np.asfortranarray(
        rng.normal(size=(n_traces, n_gates)).astype(np.float32))
    rows = []
    for tvla_order, max_order in ((1, 2), (3, 6)):
        fused_acc = OnePassMoments(max_order=max_order, shape=(n_gates,))
        naive_acc = OnePassMoments(max_order=max_order, shape=(n_gates,))
        fused = best_of(lambda: fused_acc.update_batch(samples))
        naive = best_of(lambda: naive_acc.update_batch_naive(samples))
        rows.append({
            "tvla_order": tvla_order,
            "max_order": max_order,
            "n_traces": n_traces,
            "n_gates": n_gates,
            "naive_ms": naive * 1e3,
            "fused_ms": fused * 1e3,
            "speedup": naive / fused,
        })
    recorder.record(ExperimentRecord(
        experiment_id="microbench_moment_update",
        description=("Fused in-place Horner moment update vs the naive "
                     "delta**k chain, one 2048x300 float32 chunk per "
                     "accumulator order"),
        parameters={"n_traces": n_traces, "n_gates": n_gates,
                    "cpu_count": os.cpu_count()},
        rows=rows,
    ))
    speedups = {row["max_order"]: row["speedup"] for row in rows}
    # Floors are deliberately loose (measured margins are ~2x): only a
    # genuine fusion regression should fail the always-on suite.
    assert all(value > 1.1 for value in speedups.values()), (
        f"fused moment update lost its margin over the naive chain: "
        f"{speedups}")


def test_power_trace_generation_throughput(benchmark, design):
    generator = PowerTraceGenerator(design, seed=1)
    fixed, _ = fixed_vs_random_campaigns(design, 500, seed=1)
    traces = benchmark(generator.generate, fixed)
    assert traces.per_gate.shape == (500, len(design))


@pytest.mark.slow
def test_trace_generation_vectorised_vs_loop(comparison_design, masked_design,
                                             recorder):
    """Paper-scale (10,000-trace) vectorised vs per-gate-loop comparison.

    One-shot timing (best of a few runs) rather than pytest-benchmark so the
    slow reference loop does not dominate the harness; the measured speedups
    are recorded in ``latest.json``.  The masked design is the
    representative TVLA hot path: POLARIS cognition and the Table II flows
    spend most of their trace budget assessing (partially) masked designs.
    """

    def best_of(fn, repeats=5):
        return min(timeit.timeit(fn, number=1) for _ in range(repeats))

    rows = []
    for label, netlist in (("unmasked", comparison_design),
                           ("masked", masked_design)):
        generator = PowerTraceGenerator(netlist, seed=1)
        fixed, _ = fixed_vs_random_campaigns(netlist, PAPER_TRACES, seed=1)
        vectorised = best_of(lambda: generator.generate(fixed))
        loop = best_of(lambda: generator.generate_loop(fixed))
        rows.append({
            "design": netlist.name,
            "variant": label,
            "n_traces": PAPER_TRACES,
            "n_gates": len(netlist),
            "loop_seconds": loop,
            "vectorised_seconds": vectorised,
            "speedup": loop / vectorised,
        })

    recorder.record(ExperimentRecord(
        experiment_id="microbench_trace_generation",
        description=("Vectorised streaming trace engine vs per-gate loop "
                     f"at {PAPER_TRACES} traces"),
        parameters={"scale": max(BENCH_SCALE, 0.35), "n_traces": PAPER_TRACES},
        rows=rows,
    ))
    masked_row = rows[1]
    assert masked_row["speedup"] >= 5.0, (
        f"vectorised engine only {masked_row['speedup']:.1f}x faster than "
        f"the per-gate loop on the masked bench netlist")
    assert rows[0]["speedup"] > 1.0


def test_tvla_assessment_throughput(benchmark, design):
    config = TvlaConfig(n_traces=300, n_fixed_classes=1, seed=2)
    assessment = benchmark(assess_leakage, design, config)
    assert len(assessment.gate_names) == len(design)


@pytest.mark.slow
def test_streaming_assessment_paper_scale(masked_design, recorder):
    """10,000-trace streaming TVLA campaign — the paper-scale scenario.

    Streams each group through one-pass accumulators in
    ``chunk_traces``-sized blocks, so peak trace memory is O(chunk × gates)
    instead of O(n_traces × gates).
    """
    config = TvlaConfig(n_traces=PAPER_TRACES, n_fixed_classes=1, seed=2,
                        chunk_traces=2048)
    start = time.perf_counter()
    assessment = assess_leakage(masked_design, config)
    elapsed = time.perf_counter() - start
    assert assessment.streamed
    assert len(assessment.gate_names) == len(masked_design)
    recorder.record(ExperimentRecord(
        experiment_id="microbench_streaming_tvla",
        description="Streaming one-pass TVLA assessment at 10,000 traces",
        parameters={"scale": max(BENCH_SCALE, 0.35), "n_traces": PAPER_TRACES,
                    "chunk_traces": config.chunk_traces},
        rows=[{
            "design": masked_design.name,
            "n_gates": len(masked_design),
            "seconds": elapsed,
            "traces_per_second": 2 * PAPER_TRACES / elapsed,
        }],
    ))


@pytest.mark.slow
def test_sharded_tvla_scaling(masked_design, recorder):
    """Shard-count scaling of a 10,000-trace sharded TVLA campaign.

    Runs the same campaign with 1/2/4 workers on both pool executors and
    **both simulation backends** (the per-gate ``"loop"`` before, the fused
    ``"compiled"`` kernel after) and records the scaling curves in
    ``latest.json``.  Chunk size 1024 gives 10 chunks, so 4 shards still
    get a balanced 3/3/2/2 split.  Correctness is asserted against the
    serial streaming driver (~1e-12); the speedups are recorded together
    with the host's CPU count but not asserted — on a single-core CI
    container the curve documents pure sharding overhead, while multi-core
    hosts see both pools scale with the shard count now that the fused
    kernel's numpy segments release the GIL for the bulk of each chunk
    (with the loop backend, the thread curve stays flat: the per-gate
    Python sweep holds the GIL).
    """
    serial_seconds = {}
    references = {}
    configs = {}
    for sim_backend in ("loop", "compiled"):
        configs[sim_backend] = TvlaConfig(
            n_traces=PAPER_TRACES, n_fixed_classes=1, seed=2,
            chunk_traces=1024, streaming=True, sim_backend=sim_backend)
        start = time.perf_counter()
        references[sim_backend] = assess_leakage(masked_design,
                                                 configs[sim_backend])
        serial_seconds[sim_backend] = time.perf_counter() - start
    # Both backends generate bit-identical traces: same verdict.
    np.testing.assert_array_equal(references["loop"].t_values,
                                  references["compiled"].t_values)

    rows = []
    for sim_backend in ("loop", "compiled"):
        config = configs[sim_backend]
        for executor in ("thread", "process"):
            if executor == "process" and sim_backend == "loop":
                continue  # the before/after story is the thread curve
            for n_shards in (1, 2, 4):
                start = time.perf_counter()
                sharded = assess_leakage_sharded(masked_design, config,
                                                 n_shards=n_shards,
                                                 executor=executor,
                                                 max_workers=n_shards)
                elapsed = time.perf_counter() - start
                np.testing.assert_allclose(
                    sharded.t_values, references[sim_backend].t_values,
                    rtol=1e-12, atol=1e-12)
                rows.append({
                    "design": masked_design.name,
                    "sim_backend": sim_backend,
                    "executor": executor,
                    "n_shards": n_shards,
                    "n_gates": len(masked_design),
                    "seconds": elapsed,
                    "speedup_vs_serial":
                        serial_seconds[sim_backend] / elapsed,
                    "traces_per_second": 2 * PAPER_TRACES / elapsed,
                })

    recorder.record(ExperimentRecord(
        experiment_id="microbench_sharded_tvla_scaling",
        description=("Sharded streaming TVLA campaign at 10,000 traces: "
                     "shard-count scaling (1/2/4 workers; loop vs fused "
                     "compiled simulation backend on the thread pool, "
                     "plus the process-pool curve)"),
        parameters={"scale": max(BENCH_SCALE, 0.35),
                    "n_traces": PAPER_TRACES,
                    "chunk_traces": 1024,
                    "serial_seconds_loop": serial_seconds["loop"],
                    "serial_seconds_compiled": serial_seconds["compiled"],
                    "cpu_count": os.cpu_count()},
        rows=rows,
    ))


def test_campaign_overhead_microbench(design, recorder, tmp_path):
    """Queue + store overhead of the campaign subsystem vs in-process shards.

    Runs the same 2-shard campaign three ways — in-process thread pool,
    queue-backed ``QueueExecutor`` (SQLite lease/ack per shard), and the
    full durable runner (submit → work → checkpoint → merge → store) —
    plus a store cache hit, and records the wall-clock of each as
    ``microbench_campaign_overhead`` in ``latest.json``.  Correctness is
    asserted (~1e-12 against the in-process result, bit-identical for the
    cache hit); the recorded overhead documents what durability costs at
    small scale, where the fixed per-task queue round-trips are most
    visible — at paper scale the shard compute dominates.
    """
    from repro.campaign import QueueExecutor, collect_result, run_campaign, \
        submit_campaign

    config = TvlaConfig(n_traces=600, n_fixed_classes=2, seed=11,
                        chunk_traces=150, streaming=True)
    n_shards = 2

    start = time.perf_counter()
    in_process = assess_leakage_sharded(design, config, n_shards=n_shards,
                                        executor="thread",
                                        max_workers=n_shards)
    in_process_seconds = time.perf_counter() - start

    start = time.perf_counter()
    with QueueExecutor(tmp_path / "queue.sqlite", n_workers=n_shards) as pool:
        queued = assess_leakage_sharded(design, config, n_shards=n_shards,
                                        executor=pool)
    queue_seconds = time.perf_counter() - start
    np.testing.assert_allclose(queued.t_values, in_process.t_values,
                               rtol=1e-12, atol=1e-12)

    root = tmp_path / "campaigns"
    start = time.perf_counter()
    durable = run_campaign(root, design, config, n_shards=n_shards,
                           n_workers=n_shards)
    durable_seconds = time.perf_counter() - start
    np.testing.assert_allclose(durable.t_values, in_process.t_values,
                               rtol=1e-12, atol=1e-12)

    start = time.perf_counter()
    outcome = submit_campaign(root, netlist=design, config=config,
                              n_shards=n_shards)
    cached = collect_result(root, outcome.spec_hash)
    cache_seconds = time.perf_counter() - start
    assert outcome.status == "cached"
    assert np.array_equal(cached.t_values, durable.t_values)

    rows = [{
        "variant": variant,
        "design": design.name,
        "n_shards": n_shards,
        "n_traces": config.n_traces,
        "seconds": seconds,
        "overhead_pct": (seconds - in_process_seconds)
        / in_process_seconds * 100.0,
    } for variant, seconds in (
        ("in_process_thread", in_process_seconds),
        ("queue_executor", queue_seconds),
        ("durable_campaign", durable_seconds),
        ("store_cache_hit", cache_seconds),
    )]
    recorder.record(ExperimentRecord(
        experiment_id="microbench_campaign_overhead",
        description=("Queue+store overhead of repro.campaign vs in-process "
                     "sharding (2 shards, 600 traces x 2 classes), plus the "
                     "content-addressed cache hit"),
        parameters={"scale": BENCH_SCALE, "n_traces": config.n_traces,
                    "chunk_traces": config.chunk_traces,
                    "n_shards": n_shards, "cpu_count": os.cpu_count()},
        rows=rows,
    ))
    # A cache hit only reads and deserialises one JSON object; even on a
    # loaded runner it must beat re-simulating the campaign.
    assert cache_seconds < durable_seconds


def test_service_streaming_microbench(design, recorder, tmp_path):
    """Per-frame cost of the live service's streaming path (informational).

    Measures the two things the server does per streamed shard — the wire
    codec round-trip of a real ``ShardPartial`` frame (the exact checkpoint
    bytes, base64 in canonical JSON) and the interim fold (unpack + merge
    present shards + aggregate into t-values) — and records them as
    ``microbench_service`` in ``latest.json``.  Not gated: the numbers
    document what live streaming costs per shard next to the shard's own
    compute, they are not a regression anchor.
    """
    import base64

    from repro.campaign import run_campaign
    from repro.campaign.runner import CampaignPaths
    from repro.campaign.serialize import unpack_shard_moments
    from repro.service.protocol import (ShardPartial, decode_message,
                                        encode_message)
    from repro.tvla.assessment import aggregate_class_results
    from repro.tvla.sharding import merge_shard_partials

    config = TvlaConfig(n_traces=600, n_fixed_classes=2, seed=11,
                        chunk_traces=150, streaming=True)
    n_shards = 2
    root = tmp_path / "campaigns"
    reference = run_campaign(root, design, config, n_shards=n_shards,
                             n_workers=n_shards)
    from repro.campaign.spec import CampaignSpec
    spec = CampaignSpec.from_netlist(design, config, n_shards=n_shards,
                                     force_streaming=True)
    paths = CampaignPaths(root, spec.content_hash)
    payloads = [paths.shard_path(k).read_bytes() for k in range(n_shards)]

    frame = ShardPartial(tenant="bench", spec_hash=spec.content_hash,
                         shard_index=0,
                         payload_b64=base64.b64encode(payloads[0]).decode(),
                         worker="bench")
    codec_loops = 200
    codec_seconds = timeit.timeit(
        lambda: decode_message(encode_message(frame)), number=codec_loops)

    partials = [unpack_shard_moments(payload) for payload in payloads]
    fold_loops = 20

    def fold():
        class_results = merge_shard_partials(partials, config)
        return aggregate_class_results(class_results, design.name,
                                       reference.gate_names, config, 0.0,
                                       streamed=True, n_shards=n_shards)

    fold_seconds = timeit.timeit(fold, number=fold_loops)
    # The fold must reproduce the batch merge bitwise — the property the
    # whole streaming design rests on.
    assert np.array_equal(fold().t_values, reference.t_values)

    rows = [
        {"metric": "shard_partial_codec_roundtrip",
         "frame_bytes": len(encode_message(frame)),
         "seconds_per_op": codec_seconds / codec_loops},
        {"metric": "interim_fold_all_shards",
         "n_shards": n_shards,
         "seconds_per_op": fold_seconds / fold_loops},
    ]
    recorder.record(ExperimentRecord(
        experiment_id="microbench_service",
        description=("Per-shard streaming cost of repro.service: wire "
                     "codec round-trip of a real ShardPartial frame and "
                     "the server's interim fold (merge + aggregate), on a "
                     "2-shard 600-trace campaign"),
        parameters={"scale": BENCH_SCALE, "n_traces": config.n_traces,
                    "chunk_traces": config.chunk_traces,
                    "n_shards": n_shards},
        rows=rows,
    ))


def test_welch_two_pass_throughput(benchmark):
    rng = np.random.default_rng(0)
    group0 = rng.normal(size=(2000, 300))
    group1 = rng.normal(0.1, 1.0, size=(2000, 300))
    result = benchmark(welch_t_test, group0, group1)
    assert result.t_statistic.shape == (300,)


def test_one_pass_moments_throughput(benchmark):
    rng = np.random.default_rng(0)
    samples = rng.normal(size=(2000, 300))

    def accumulate():
        acc = OnePassMoments(max_order=2, shape=(300,))
        acc.update_batch(samples)
        return acc

    acc = benchmark(accumulate)
    assert acc.count == 2000


def test_feature_extraction_throughput(benchmark, design):
    extractor = StructuralFeatureExtractor(design, locality=7)
    names, matrix = benchmark(extractor.extract_all, True)
    assert matrix.shape[0] == len(names)


def test_ml_scoring_microbench(trained_polaris_bench, design, recorder):
    """Flat-array batch scoring + batched TreeSHAP vs the per-sample oracles.

    Scores a benchmark-netlist gate-feature matrix (tiled to >= 2000 rows)
    with the trained AdaBoost model two ways: the flat-array fast path
    (``positive_score`` descending every :class:`repro.ml.FlatTree` for
    the whole matrix at once) and a verbatim reconstruction of the pre-PR
    inference loop (one recursive ``predict_value`` node walk per row per
    weak learner, one vote comparison pass per class).  Scores must be
    **exactly** equal and the batch path must clear a 10x floor.  A second
    row times ``explain_matrix`` against per-row ``explain`` calls on the
    same model (the SHAP path shares one coalition-expectation sweep
    across all rows); recorded as ``microbench_ml_scoring`` and gated by
    ``tools/check_bench_regression.py``.
    """
    model = trained_polaris_bench.model
    extractor = StructuralFeatureExtractor(
        design, locality=7, encoder=trained_polaris_bench.encoder)
    _, matrix = extractor.extract_all(maskable_only=True)
    matrix = np.tile(matrix, (max(1, -(-2000 // matrix.shape[0])), 1))

    def per_sample_scores():
        votes = np.zeros((matrix.shape[0], len(model.classes_)))
        for tree, alpha in zip(model.estimators_, model.estimator_weights_):
            proba = tree.tree_.predict_value(matrix)
            predictions = tree.classes_[np.argmax(proba, axis=1)]
            for column, cls in enumerate(model.classes_):
                votes[:, column] += alpha * (predictions == cls)
        total = votes.sum(axis=1, keepdims=True)
        total[total == 0] = 1.0
        probabilities = votes / total
        classes = list(model.classes_)
        column = classes.index(1) if 1 in classes else len(classes) - 1
        return probabilities[:, column]

    def best_of(fn, repeats=5, number=1):
        return min(timeit.timeit(fn, number=number)
                   for _ in range(repeats)) / number

    np.testing.assert_array_equal(model.positive_score(matrix),
                                  per_sample_scores())
    scoring_fast = best_of(lambda: model.positive_score(matrix), number=3)
    scoring_oracle = best_of(per_sample_scores)

    from repro.xai import TreeShapExplainer
    explainer = TreeShapExplainer(model)
    shap_rows = matrix[:8]
    for fast_expl, oracle_expl in zip(
            explainer.explain_matrix(shap_rows),
            [explainer.explain(row) for row in shap_rows]):
        np.testing.assert_array_equal(fast_expl.shap_values,
                                      oracle_expl.shap_values)
        assert fast_expl.prediction == oracle_expl.prediction
    shap_fast = best_of(lambda: explainer.explain_matrix(shap_rows),
                        repeats=3)
    shap_oracle = best_of(
        lambda: [explainer.explain(row) for row in shap_rows], repeats=3)

    rows = [
        {
            "design": design.name,
            "comparison": "batch_scoring_vs_per_sample",
            "n_rows": int(matrix.shape[0]),
            "n_estimators": len(model.estimators_),
            "oracle_seconds": scoring_oracle,
            "fast_seconds": scoring_fast,
            "speedup": scoring_oracle / scoring_fast,
            "bitwise_equal": True,
        },
        {
            "design": design.name,
            "comparison": "shap_matrix_vs_per_sample",
            "n_rows": int(shap_rows.shape[0]),
            "n_estimators": len(model.estimators_),
            "oracle_seconds": shap_oracle,
            "fast_seconds": shap_fast,
            "speedup": shap_oracle / shap_fast,
            "bitwise_equal": True,
        },
    ]
    recorder.record(ExperimentRecord(
        experiment_id="microbench_ml_scoring",
        description=("Flat-array batch model scoring and batched TreeSHAP "
                     "vs the per-sample oracle walks on a benchmark-netlist "
                     "gate-feature matrix; outputs exactly equal"),
        parameters={"scale": BENCH_SCALE, "locality": 7,
                    "model": "adaboost", "cpu_count": os.cpu_count()},
        rows=rows,
    ))
    speedups = {row["comparison"]: row["speedup"] for row in rows}
    # The batch descent replaces ~n_rows * n_estimators Python node walks
    # with one vectorised frontier sweep per tree; measured margins are far
    # above these floors, which only catch a genuine fast-path regression.
    assert speedups["batch_scoring_vs_per_sample"] >= 10.0, (
        f"flat-array batch scoring below the 10x floor: {speedups}")
    assert speedups["shap_matrix_vs_per_sample"] > 1.2, (
        f"batched TreeSHAP lost its margin over per-row explain: {speedups}")


def test_model_inference_throughput(benchmark, trained_polaris_bench, design):
    extractor = StructuralFeatureExtractor(design, locality=7,
                                           encoder=trained_polaris_bench.encoder)
    _, matrix = extractor.extract_all(maskable_only=True)
    scores = benchmark(trained_polaris_bench.model.positive_score, matrix)
    assert scores.shape[0] == matrix.shape[0]
