"""Table IV — area / power / delay overheads: VALIANT vs POLARIS (50 % mask).

For every evaluation design, reports the original area (um^2), power (mW)
and delay (ns), the multipliers of the VALIANT-protected design, and the
multipliers of the POLARIS-protected design at a 50 % mask, plus the
percentage reduction POLARIS achieves relative to VALIANT — the layout of
the paper's Table IV.  The expected shape is that POLARIS's overheads are
consistently below VALIANT's on all three axes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ValiantConfig, valiant_protect
from repro.core import ExperimentRecord, format_table, protect_design
from repro.power import analyze_design
from repro.tvla import assess_leakage

from bench_common import bench_tvla_config, write_text_result

COLUMNS = [
    "design", "area", "power", "delay",
    "valiant_area_x", "valiant_power_x", "valiant_delay_x",
    "polaris_area_x", "polaris_power_x", "polaris_delay_x",
    "area_saving_pct", "power_saving_pct", "delay_saving_pct",
]


def _saving(valiant_ratio: float, polaris_ratio: float) -> float:
    if valiant_ratio <= 0:
        return 0.0
    return (valiant_ratio - polaris_ratio) / valiant_ratio * 100.0


def test_table4_overheads(benchmark, trained_polaris_bench, evaluation_suite,
                          recorder):
    tvla = bench_tvla_config()
    rows = []

    def run_all():
        rows.clear()
        for design in evaluation_suite:
            before = assess_leakage(design, tvla)
            original = analyze_design(design)
            polaris = protect_design(design, trained_polaris_bench,
                                     mask_fraction=0.5, before=before,
                                     evaluate=False)
            valiant = valiant_protect(design, ValiantConfig(tvla=tvla))
            valiant_metrics = analyze_design(valiant.masked_netlist)
            valiant_ratios = valiant_metrics.ratios_to(original)
            polaris_ratios = polaris.masked_metrics.ratios_to(original)
            rows.append({
                "design": design.name,
                "area": original.area,
                "power": original.power,
                "delay": original.delay,
                "valiant_area_x": valiant_ratios["area"],
                "valiant_power_x": valiant_ratios["power"],
                "valiant_delay_x": valiant_ratios["delay"],
                "polaris_area_x": polaris_ratios["area"],
                "polaris_power_x": polaris_ratios["power"],
                "polaris_delay_x": polaris_ratios["delay"],
                "area_saving_pct": _saving(valiant_ratios["area"],
                                           polaris_ratios["area"]),
                "power_saving_pct": _saving(valiant_ratios["power"],
                                            polaris_ratios["power"]),
                "delay_saving_pct": _saving(valiant_ratios["delay"],
                                            polaris_ratios["delay"]),
            })
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    averages = {key: float(np.mean([row[key] for row in rows]))
                for key in COLUMNS if key != "design"}
    averages["design"] = "Average"
    table_rows = [[row[col] for col in COLUMNS] for row in rows + [averages]]
    rendered = format_table(COLUMNS, table_rows)
    print("\nTable IV reproduction (overheads as multiples of the original design)")
    print(rendered)
    write_text_result("table4_overheads", rendered)
    recorder.record(ExperimentRecord(
        "table4", "Area/power/delay overheads, VALIANT vs POLARIS (50% mask)",
        parameters={"designs": [d.name for d in evaluation_suite]},
        rows=rows + [averages]))

    # Shape: POLARIS's overheads are below VALIANT's on every axis on average,
    # and all protected designs cost more than the original (>1x).
    assert averages["polaris_area_x"] > 1.0
    assert averages["polaris_area_x"] < averages["valiant_area_x"]
    assert averages["polaris_power_x"] < averages["valiant_power_x"]
    assert averages["polaris_delay_x"] < averages["valiant_delay_x"]
    assert averages["area_saving_pct"] > 10.0
