"""Fig. 3 — SHAP waterfall plots for individual masking decisions.

The paper's Fig. 3 shows two waterfall plots produced by SHAP on the
AdaBoost model: one sample pushed towards "good masking candidate" and one
pushed away from it.  This bench reproduces both as text-mode waterfalls
(starting at E[f(x)], one bar per feature, ending at f(x)) and checks the
defining invariants of a waterfall plot: additivity and correct ordering of
bar magnitudes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ExperimentRecord
from repro.xai import TreeShapExplainer

from bench_common import write_text_result


def test_fig3_waterfall_plots(benchmark, trained_polaris_bench, recorder):
    dataset = trained_polaris_bench.dataset
    explainer = TreeShapExplainer(trained_polaris_bench.model,
                                  feature_names=dataset.feature_names)

    def explain_extremes():
        scores = trained_polaris_bench.model.positive_score(dataset.features)
        positive_index = int(np.argmax(scores))
        negative_index = int(np.argmin(scores))
        return (explainer.explain(dataset.features[positive_index]),
                explainer.explain(dataset.features[negative_index]))

    positive, negative = benchmark.pedantic(explain_extremes, rounds=1, iterations=1)

    sections = []
    for label, explanation in (("(a) high-score sample", positive),
                               ("(b) low-score sample", negative)):
        waterfall = explanation.waterfall(max_features=8)
        sections.append(f"{label}\n{waterfall.render()}")
    rendered = "\n\n".join(sections)
    print("\nFig. 3 reproduction (SHAP waterfall plots)")
    print(rendered)
    write_text_result("fig3_shap_waterfall", rendered)
    recorder.record(ExperimentRecord(
        "fig3", "SHAP waterfall plots for two predictions",
        rows=[{"sample": "high", "prediction": positive.prediction,
               "base_value": positive.base_value},
              {"sample": "low", "prediction": negative.prediction,
               "base_value": negative.base_value}]))

    # Waterfall invariants: attributions bridge base value to prediction,
    # the high-score sample sits above the low-score one, and bars are
    # ordered by decreasing magnitude.
    for explanation in (positive, negative):
        assert explanation.additivity_gap < 1e-8
        magnitudes = [abs(step.contribution)
                      for step in explanation.waterfall(8).steps]
        assert magnitudes == sorted(magnitudes, reverse=True)
    assert positive.prediction >= negative.prediction
    assert positive.base_value == pytest.approx(negative.base_value)
