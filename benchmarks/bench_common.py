"""Shared configuration and helpers for the benchmark harness.

Every paper table/figure has one bench module.  The defaults are sized so
the whole harness completes in a few minutes on a laptop; environment
variables scale the experiments up towards the paper's setting:

* ``POLARIS_BENCH_SCALE``  — benchmark netlist scale factor (default 0.35).
* ``POLARIS_BENCH_TRACES`` — TVLA traces per group (default 500; the paper
  uses 10,000).
* ``POLARIS_BENCH_DESIGNS`` — comma-separated subset of evaluation designs
  (default: the full 11-design suite of Table II).
* ``POLARIS_BENCH_CHUNK`` — trace-chunk size of the streaming TVLA driver
  (default 2048); campaigns larger than one chunk stream their moments
  instead of materialising full trace matrices.

Results (text tables + JSON) are written to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

SRC = Path(__file__).parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.core import ModelConfig, PolarisConfig  # noqa: E402
from repro.netlist import EVALUATION_SUITE  # noqa: E402
from repro.tvla import TvlaConfig  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"

BENCH_SCALE = float(os.environ.get("POLARIS_BENCH_SCALE", "0.35"))
BENCH_TRACES = int(os.environ.get("POLARIS_BENCH_TRACES", "500"))
BENCH_CHUNK = int(os.environ.get("POLARIS_BENCH_CHUNK", "2048"))
_default_designs = ",".join(EVALUATION_SUITE)
BENCH_DESIGNS = tuple(
    name.strip()
    for name in os.environ.get("POLARIS_BENCH_DESIGNS", _default_designs).split(",")
    if name.strip()
)


def bench_tvla_config(seed: int = 17) -> TvlaConfig:
    """TVLA configuration shared by all benches.

    Campaigns larger than ``BENCH_CHUNK`` traces (e.g. paper-scale runs
    with ``POLARIS_BENCH_TRACES=10000``) automatically use the streaming
    one-pass accumulator driver.
    """
    return TvlaConfig(n_traces=BENCH_TRACES, n_fixed_classes=4, seed=seed,
                      chunk_traces=BENCH_CHUNK)


def bench_polaris_config() -> PolarisConfig:
    """POLARIS configuration used by the benches.

    Follows the paper's L=7 / theta_r=0.7 / AdaBoost choice; ``msize`` and
    ``iterations`` are reduced from (200, 100) so cognition generation on
    the scaled-down training designs stays in CI-scale time.
    """
    return PolarisConfig(
        msize=40,
        locality=7,
        iterations=8,
        theta_r=0.70,
        tvla=bench_tvla_config(seed=11),
        model=ModelConfig(model_type="adaboost", learning_rate=0.1,
                          n_estimators=100, max_depth=3),
        seed=23,
    )


def write_text_result(name: str, content: str) -> Path:
    """Persist a rendered table under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(content + "\n")
    return path
