#!/usr/bin/env python3
"""Explainability deep-dive: SHAP waterfalls, global importance, and rules.

Reproduces the XAI side of the paper (Fig. 3 and Table V): after training the
masking model, the script

* prints text-mode SHAP waterfall plots for a strongly-positive and a
  strongly-negative prediction,
* aggregates per-sample explanations into a global feature-importance
  ranking,
* extracts the human-readable masking rules and evaluates how often the
  "rules only" mode agrees with the model.

Run with::

    python examples/explainability_report.py
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.core import ModelConfig, PolarisConfig, train_polaris
from repro.tvla import TvlaConfig
from repro.workloads import WorkloadConfig, training_designs
from repro.xai import RuleExtractor, TreeShapExplainer, summarize_explanations


def main() -> None:
    config = PolarisConfig(
        msize=30, locality=7, iterations=5,
        tvla=TvlaConfig(n_traces=400, n_fixed_classes=3, seed=3),
        model=ModelConfig(model_type="adaboost", learning_rate=0.1,
                          n_estimators=80, max_depth=3))
    print("Training POLARIS (AdaBoost) ...")
    trained = train_polaris(training_designs(WorkloadConfig(scale=0.4)), config)
    dataset = trained.dataset
    print(f"  {dataset.n_samples} samples, positive fraction "
          f"{dataset.positive_fraction():.2f}\n")

    explainer = TreeShapExplainer(trained.model,
                                  feature_names=dataset.feature_names)
    scores = trained.model.positive_score(dataset.features)

    print("=== Fig. 3 style waterfall: strongest 'mask this gate' decision ===")
    positive = explainer.explain(dataset.features[int(np.argmax(scores))])
    print(positive.waterfall(max_features=8).render())

    print("\n=== Fig. 3 style waterfall: strongest 'do not mask' decision ===")
    negative = explainer.explain(dataset.features[int(np.argmin(scores))])
    print(negative.waterfall(max_features=8).render())

    print("\n=== Global feature importance (mean |SHAP| over 40 samples) ===")
    explanations = explainer.explain_matrix(dataset.features[:40])
    importance = summarize_explanations(explanations)
    for name, value in importance.ranked(12):
        print(f"  {name:34s} {value:.4f}")

    print("\n=== Table V style rules ===")
    rules = RuleExtractor(top_features=4, min_support=2).extract(explanations)
    print(rules.describe() or "  (no rule met the support threshold)")

    if len(rules):
        agreements = []
        for features, score in zip(dataset.features, scores):
            action = rules.predict_action(features)
            if action is not None:
                agreements.append((action == "mask") == (score >= 0.5))
        if agreements:
            print(f"\nRules-only mode agrees with the model on "
                  f"{100 * float(np.mean(agreements)):.0f}% of the samples "
                  f"it covers ({len(agreements)} samples).")


if __name__ == "__main__":
    main()
