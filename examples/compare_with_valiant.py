#!/usr/bin/env python3
"""Head-to-head comparison of POLARIS and the VALIANT baseline.

Reproduces a compact version of the paper's Tables II and IV on a handful of
evaluation designs: leakage reduction, decision runtime, and area/power/delay
overheads for VALIANT (TVLA-guided iterative protection) versus POLARIS at a
50 % mask budget.

Run with::

    python examples/compare_with_valiant.py [design ...]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.baselines import ValiantConfig, valiant_protect
from repro.core import (
    ModelConfig,
    PolarisConfig,
    format_table,
    protect_design,
    train_polaris,
)
from repro.power import analyze_design
from repro.tvla import TvlaConfig, assess_leakage
from repro.workloads import WorkloadConfig, evaluation_designs, training_designs

DEFAULT_DESIGNS = ("des3", "arbiter", "voter")


def main(design_names) -> None:
    tvla = TvlaConfig(n_traces=400, n_fixed_classes=3, seed=19)
    config = PolarisConfig(
        msize=30, locality=7, iterations=5, tvla=tvla,
        model=ModelConfig(model_type="adaboost", learning_rate=0.1,
                          n_estimators=80, max_depth=3))

    print("Training POLARIS on the ISCAS-85-like suite ...")
    trained = train_polaris(training_designs(WorkloadConfig(scale=0.4)), config)
    print(f"  {trained.dataset.n_samples} samples, "
          f"{trained.training_seconds:.1f} s\n")

    rows = []
    for design in evaluation_designs(WorkloadConfig(scale=0.35,
                                                    designs=tuple(design_names))):
        before = assess_leakage(design, tvla)
        base = before.mean_leakage

        polaris = protect_design(design, trained, mask_fraction=0.5, before=before)
        valiant = valiant_protect(design, ValiantConfig(tvla=tvla))
        valiant_after = assess_leakage(valiant.masked_netlist, tvla)
        valiant_reduction = (base - valiant_after.mean_leakage) / base * 100.0

        original = analyze_design(design)
        valiant_metrics = analyze_design(valiant.masked_netlist)

        rows.append([
            design.name,
            base,
            polaris.leakage_reduction_pct,
            valiant_reduction,
            polaris.polaris_seconds,
            valiant.runtime_seconds,
            polaris.overheads["area_ratio"],
            valiant_metrics.area / original.area,
        ])

    headers = ["design", "leakage before", "POLARIS 50% red %", "VALIANT red %",
               "POLARIS time s", "VALIANT time s", "POLARIS area x",
               "VALIANT area x"]
    print(format_table(headers, rows))
    print("\nExpected shape (paper Table II/IV): POLARIS at a 50 % mask budget "
          "is competitive with\nVALIANT's full protection while being several "
          "times faster and cheaper in area.")


if __name__ == "__main__":
    main(sys.argv[1:] or DEFAULT_DESIGNS)
