#!/usr/bin/env python3
"""Standalone TVLA leakage assessment of a gate-level design.

Shows the substrate layers below POLARIS: build (or load) a netlist, run a
fixed-vs-random TVLA campaign, and inspect which gates fail the ±4.5
threshold — the paper's Fig. 4 viewpoint, before any protection is applied.
The script also demonstrates the BENCH file round-trip and the one-pass
moments accumulator (Schneider–Moradi) matching the two-pass statistics.

Run with::

    python examples/tvla_leakage_assessment.py [benchmark-name]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.core import format_table
from repro.netlist import load_benchmark, parse_bench_file, write_bench_file
from repro.power import PowerTraceGenerator
from repro.simulation import fixed_vs_random_campaigns
from repro.tvla import (
    OnePassMoments,
    TvlaConfig,
    assess_leakage,
    assess_leakage_sharded,
    welch_from_accumulators,
    welch_t_test,
)


def main(name: str = "sin") -> None:
    print(f"Building the {name!r} benchmark ...")
    design = load_benchmark(name, scale=0.4)
    stats = design.stats()
    print(f"  {stats['gates']} gates, {stats['primary_inputs']} inputs, "
          f"{stats['maskable_gates']} maskable\n")

    # BENCH round-trip: write the netlist to disk and parse it back.
    with tempfile.TemporaryDirectory() as tmp:
        path = write_bench_file(design, Path(tmp) / f"{name}.bench")
        reloaded = parse_bench_file(path)
        print(f"BENCH round-trip: wrote {path.name}, reparsed "
              f"{len(reloaded)} gates (match={len(reloaded) == len(design)})\n")

    print("Running fixed-vs-random TVLA (per-gate Welch's t-test) ...")
    config = TvlaConfig(n_traces=600, n_fixed_classes=4, seed=5)
    assessment = assess_leakage(design, config)
    print(f"  traces per group : {config.n_traces} x {config.n_fixed_classes} classes")
    print(f"  leaky gates      : {assessment.n_leaky} / {len(assessment.gate_names)}")
    print(f"  mean leakage     : {assessment.mean_leakage:.2f} (|t|/4.5)")
    print(f"  assessment time  : {assessment.elapsed_seconds:.2f} s\n")

    worst = np.argsort(-np.abs(assessment.t_values))[:10]
    rows = [[assessment.gate_names[i],
             design.gate(assessment.gate_names[i]).gate_type.value,
             float(assessment.t_values[i]),
             "yes" if abs(assessment.t_values[i]) > assessment.threshold else "no"]
            for i in worst]
    print("Top-10 leakiest gates:")
    print(format_table(["gate", "type", "t value", "fails TVLA"], rows))

    # One-pass vs two-pass statistics on the design-level trace.
    print("\nOne-pass (Schneider-Moradi) vs two-pass Welch on total power:")
    generator = PowerTraceGenerator(design, seed=5)
    fixed, random_group = generator.generate_pair(
        fixed_vs_random_campaigns(design, 600, seed=5))
    two_pass = welch_t_test(fixed.total, random_group.total)
    acc_fixed, acc_random = OnePassMoments(), OnePassMoments()
    acc_fixed.update_batch(fixed.total)
    acc_random.update_batch(random_group.total)
    one_pass = welch_from_accumulators(acc_fixed, acc_random)
    print(f"  two-pass t = {float(two_pass.t_statistic):8.3f}")
    print(f"  one-pass t = {float(one_pass.t_statistic):8.3f}  "
          f"(difference {abs(float(two_pass.t_statistic) - float(one_pass.t_statistic)):.2e})")

    # Sharded campaign + higher-order TVLA: split the trace range across a
    # thread pool, merge the partial accumulators, and read the order-2
    # (centered-variance) verdict next to the order-1 one.  For a given
    # seed the t-values match the serial run regardless of shard count.
    print("\nSharded campaign (4 shards, thread pool) with order-2 TVLA:")
    sharded_config = TvlaConfig(n_traces=600, n_fixed_classes=4, seed=5,
                                chunk_traces=128, tvla_order=2)
    sharded = assess_leakage_sharded(design, sharded_config, n_shards=4,
                                     executor="thread")
    serial = assess_leakage(design, sharded_config)
    drift = float(np.max(np.abs(sharded.t_values - serial.t_values)))
    print(f"  shards           : {sharded.n_shards}")
    print(f"  order-1 leaky    : {sharded.n_leaky}")
    print(f"  order-2 leaky    : {sharded.n_leaky_for_order(2)}")
    print(f"  vs serial driver : max |t| drift {drift:.2e}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "sin")
