#!/usr/bin/env python3
"""Quickstart: train POLARIS on small designs and protect an unseen one.

This is the end-to-end "hello world" of the reproduction:

1. build the six ISCAS-85-like training designs,
2. run cognition generation (Algorithm 1) and train the AdaBoost model,
3. protect the unseen ``des3`` evaluation design (Algorithm 2),
4. report leakage before/after, the gates that were masked, and the
   area/power/delay overhead.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.core import (
    ModelConfig,
    PolarisConfig,
    format_table,
    protect_design,
    train_polaris,
)
from repro.tvla import TvlaConfig
from repro.workloads import WorkloadConfig, evaluation_designs, training_designs


def main() -> None:
    # Scaled-down settings so the script finishes in well under a minute;
    # raise scale / n_traces / iterations to move towards the paper's setup.
    tvla = TvlaConfig(n_traces=400, n_fixed_classes=3, seed=7)
    config = PolarisConfig(
        msize=30,
        locality=7,
        iterations=5,
        theta_r=0.70,
        tvla=tvla,
        model=ModelConfig(model_type="adaboost", learning_rate=0.1,
                          n_estimators=80, max_depth=3),
    )

    print("=== 1. Training designs (ISCAS-85 stand-ins) ===")
    designs = training_designs(WorkloadConfig(scale=0.4))
    for design in designs:
        print(f"  {design.name:8s} {len(design):4d} gates")

    print("\n=== 2. Cognition generation + model training (Algorithm 1) ===")
    trained = train_polaris(designs, config)
    report = trained.cognition_report
    print(f"  labelled samples : {trained.dataset.n_samples}")
    print(f"  positive fraction: {trained.dataset.positive_fraction():.2f}")
    print(f"  TVLA campaigns   : {report.tvla_runs}")
    print(f"  training time    : {trained.training_seconds:.1f} s")

    print("\n=== 3. Protecting an unseen design (Algorithm 2) ===")
    target = evaluation_designs(WorkloadConfig(scale=0.4, designs=("des3",)))[0]
    protection = protect_design(target, trained, mask_fraction=0.75)
    print(f"  design                  : {target.name} ({len(target)} gates)")
    print(f"  leaky gates before      : {protection.before.n_leaky}")
    print(f"  gates masked            : {protection.outcome.n_masked}")
    print(f"  mean leakage before     : {protection.before.mean_leakage:.2f}")
    print(f"  mean leakage after      : {protection.after.mean_leakage:.2f}")
    print(f"  total leakage reduction : {protection.leakage_reduction_pct:.1f} %")
    print(f"  POLARIS decision time   : {protection.polaris_seconds:.2f} s")

    print("\n=== 4. Design overheads ===")
    rows = [
        ["area (um^2)", protection.original_metrics.area,
         protection.masked_metrics.area, protection.overheads["area_ratio"]],
        ["power (mW)", protection.original_metrics.power,
         protection.masked_metrics.power, protection.overheads["power_ratio"]],
        ["delay (ns)", protection.original_metrics.delay,
         protection.masked_metrics.delay, protection.overheads["delay_ratio"]],
    ]
    print(format_table(["metric", "original", "masked", "ratio"], rows))


if __name__ == "__main__":
    main()
