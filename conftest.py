"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(the offline environment has no ``wheel`` package, so ``pip install -e .``
may be unavailable; ``python setup.py develop`` or this path hook both work).
"""

import sys
from pathlib import Path

SRC = Path(__file__).parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
