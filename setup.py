"""Packaging for the POLARIS reproduction.

Kept as a plain ``setup.py`` (no wheel/pyproject machinery required in the
reproduction container); ``pip install -e .`` exposes the ``repro``
package, the ``polaris-campaign`` campaign-orchestration CLI and the
``polaris-lint`` static-analysis CLI (also runnable without installing as
``python tools/polaris_lint``).
"""
from setuptools import find_packages, setup

setup(
    name="polaris-repro",
    version="1.0.0",
    description=("Reproduction of POLARIS: XAI-guided power side-channel "
                 "leakage mitigation (DAC 2025), with distributed TVLA "
                 "campaign orchestration and a live multi-tenant "
                 "assessment service"),
    package_dir={"": "src", "polaris_lint": "tools/polaris_lint"},
    packages=find_packages("src") + ["polaris_lint", "polaris_lint.rules"],
    python_requires=">=3.10",
    install_requires=["numpy", "scipy", "networkx"],
    entry_points={
        "console_scripts": [
            "polaris-campaign = repro.campaign.cli:main",
            "polaris-lint = polaris_lint.cli:main",
        ],
    },
)
