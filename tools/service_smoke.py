#!/usr/bin/env python
"""End-to-end smoke test of the live assessment service (`repro.service`).

Run by the CI ``service-smoke`` job (and runnable locally with
``python tools/service_smoke.py``).  Exercises the full multi-process
service story:

1. start ``polaris-campaign serve`` as a real subprocess (port 0 — the
   bound port is read off its stdout);
2. submit a campaign *through the service* with a following client;
3. attach **two** ``polaris-campaign work --connect`` worker processes
   that stream shard partials and heartbeats;
4. SIGKILL one of them mid-shard (shards are stretched with
   ``POLARIS_SHARD_DELAY`` so "mid-shard" is deterministic) — the
   campaign must complete anyway, via lease expiry + redelivery;
5. assert the streamed interim t-values converge **bitwise** to the
   batch ``collect_result`` for the same spec, and that the final
   ``CampaignComplete`` assessment round-trips bit-identically.

Exits non-zero with a diagnostic on any violation.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.campaign import campaign_queue, collect_result  # noqa: E402
from repro.campaign.serialize import (  # noqa: E402
    assessment_from_dict,
    decode_array,
)
from repro.campaign.spec import CampaignSpec  # noqa: E402
from repro.netlist import load_benchmark  # noqa: E402
from repro.service import (  # noqa: E402
    CampaignComplete,
    CampaignProgress,
    ServiceClient,
    ServiceError,
    tenant_key_prefix,
    tenant_root,
)
from repro.tvla import TvlaConfig  # noqa: E402

#: The smoke campaign: 240 traces in 48-trace chunks -> 5 chunks, 3 shards.
DESIGN = dict(name="des3", scale=0.25, seed=99)
CONFIG = TvlaConfig(n_traces=240, n_fixed_classes=2, seed=9,
                    chunk_traces=48, streaming=True)
N_SHARDS = 3
TENANT = "smoke"
#: Every shard is stretched to ~1.2s so mid-shard kills are deterministic,
#: and the victim's lease (1.0s) expires while the shard is still running.
SHARD_DELAY = "1.2"
LEASE_SECONDS = 1.0


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env["POLARIS_SHARD_DELAY"] = SHARD_DELAY
    return env


def start_server(root: Path) -> tuple:
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.campaign.cli", "serve",
         "--root", str(root), "--port", "0"],
        env=_env(), stdout=subprocess.PIPE, text=True)
    line = process.stdout.readline().strip()  # "serving on HOST:PORT"
    if not line.startswith("serving on "):
        raise RuntimeError(f"unexpected serve banner: {line!r}")
    host, _, port = line.rpartition(" ")[2].rpartition(":")
    return process, host, int(port)


def start_worker(root: Path, host: str, port: int) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.campaign.cli", "work",
         "--root", str(root), "--drain",
         "--connect", f"{host}:{port}",
         "--lease-seconds", str(LEASE_SECONDS)],
        env=_env())


def main() -> int:
    netlist = load_benchmark(DESIGN["name"], scale=DESIGN["scale"],
                             seed=DESIGN["seed"])
    spec = CampaignSpec.from_netlist(netlist, CONFIG, n_shards=N_SHARDS,
                                     force_streaming=True)
    root = Path(tempfile.mkdtemp(prefix="service-smoke-"))
    server, host, port = start_server(root)
    print(f"service pid {server.pid} on {host}:{port}, root {root}")

    workers = []
    try:
        client = ServiceClient(host, port)
        accepted = client.submit(TENANT, spec.to_json(), follow=True)
        print(f"submitted {accepted.spec_hash[:12]}… as tenant "
              f"{TENANT!r}: {accepted.status}, "
              f"{accepted.n_enqueued} enqueued")
        if accepted.status != "submitted":
            print(f"FAIL: fresh submission reported {accepted.status!r}")
            return 1

        workers.append(start_worker(root, host, port))
        workers.append(start_worker(root, host, port))
        victim, survivor = workers

        # Wait until both workers hold a shard lease, then kill the victim
        # mid-shard: its lease must expire and the shard be redelivered.
        queue = campaign_queue(root)
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if queue.counts()["leased"] >= 2:
                break
            time.sleep(0.05)
        time.sleep(0.4)  # well inside the stretched shard
        victim.send_signal(signal.SIGKILL)
        victim.wait()
        print(f"killed worker pid {victim.pid} mid-shard; survivor pid "
              f"{survivor.pid} must complete via lease expiry")

        progress, complete = [], None
        for frame in client.events(timeout=300):
            if isinstance(frame, CampaignProgress):
                progress.append(frame)
                print(f"  progress {len(frame.shards_done)}/"
                      f"{frame.n_shards_total} shards  "
                      f"max|t|={frame.max_abs_t:.3f}")
            elif isinstance(frame, CampaignComplete):
                complete = frame
                break
            elif isinstance(frame, ServiceError):
                print(f"FAIL: service error [{frame.code}]: "
                      f"{frame.message}")
                return 1
        client.close()
        if complete is None:
            print("FAIL: stream ended without CampaignComplete")
            return 1
        if survivor.wait(timeout=300) != 0:
            print("FAIL: surviving worker exited non-zero")
            return 1
        final = progress[-1]
        if final.shards_done != tuple(range(N_SHARDS)):
            print(f"FAIL: final frame saw shards {final.shards_done}")
            return 1

        troot = tenant_root(root, TENANT)
        collected = collect_result(troot, spec.content_hash, timeout=60,
                                   queue=queue,
                                   shard_key_prefix=tenant_key_prefix(
                                       TENANT))
        streamed = decode_array(final.t_values)
        if not np.array_equal(streamed, collected.t_values):
            print("FAIL: streamed interim t-values != collect result "
                  "(bitwise)")
            return 1
        served = assessment_from_dict(complete.assessment)
        if not np.array_equal(served.t_values, collected.t_values):
            print("FAIL: CampaignComplete assessment != collect result")
            return 1
        print(f"streamed t-values converge bitwise to collect "
              f"({len(collected.gate_names)} gates, "
              f"{len(progress)} progress frames); smoke ok")
        return 0
    finally:
        for process in workers:
            if process.poll() is None:
                process.kill()
                process.wait()
        server.terminate()
        server.wait(timeout=30)


if __name__ == "__main__":
    sys.exit(main())
