#!/usr/bin/env python
"""End-to-end smoke test of the distributed campaign subsystem.

Run by the CI ``campaign-smoke`` job (and runnable locally with
``python tools/campaign_smoke.py``).  Exercises the full multi-process
story that unit tests only simulate:

1. submit a small campaign into a fresh root;
2. start **two** ``polaris-campaign work`` worker *processes* against the
   shared queue;
3. SIGKILL one of them mid-run — its leased shard must be redelivered to
   the survivor once the lease expires;
4. wait for the survivor to drain the queue, merge the shard checkpoints,
   and assert the distributed result matches the serial in-process
   ``assess_leakage`` to ~1e-12;
5. resubmit the identical campaign and assert it is served from the
   content-addressed store bit-identically, without re-simulating.

Exits non-zero with a diagnostic on any violation.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.campaign import (  # noqa: E402 (path setup above)
    campaign_queue,
    collect_result,
    submit_campaign,
)
from repro.netlist import load_benchmark  # noqa: E402
from repro.tvla import TvlaConfig, assess_leakage  # noqa: E402

#: The smoke campaign: 600 traces in 75-trace chunks -> 8 chunks, 4 shards.
DESIGN = dict(name="des3", scale=0.25, seed=99)
CONFIG = TvlaConfig(n_traces=600, n_fixed_classes=2, seed=9,
                    chunk_traces=75, streaming=True)
N_SHARDS = 4
#: Short lease so the killed worker's shard is redelivered quickly.
LEASE_SECONDS = 3.0


def start_worker(root: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.campaign.cli", "work",
         "--root", str(root), "--drain",
         "--lease-seconds", str(LEASE_SECONDS)],
        env=env)


def main() -> int:
    netlist = load_benchmark(DESIGN["name"], scale=DESIGN["scale"],
                             seed=DESIGN["seed"])
    print(f"serial reference: {netlist.name}, {len(netlist)} gates, "
          f"{CONFIG.n_traces} traces x {CONFIG.n_fixed_classes} classes")
    reference = assess_leakage(netlist, CONFIG)

    root = Path(tempfile.mkdtemp(prefix="campaign-smoke-"))
    outcome = submit_campaign(root, netlist=netlist, config=CONFIG,
                              n_shards=N_SHARDS)
    print(f"submitted {outcome.spec_hash[:12]}… "
          f"({outcome.n_shards_total} shards) under {root}")
    if outcome.status != "submitted":
        print(f"FAIL: fresh submission reported {outcome.status!r}")
        return 1

    workers = [start_worker(root), start_worker(root)]
    time.sleep(1.0)  # let both claim work
    victim, survivor = workers
    victim.send_signal(signal.SIGKILL)
    victim.wait()
    print(f"killed worker pid {victim.pid} mid-run; "
          f"survivor pid {survivor.pid} must pick up its lease")
    if survivor.wait(timeout=300) != 0:
        print("FAIL: surviving worker exited non-zero")
        return 1

    counts = campaign_queue(root).counts()
    print(f"queue after drain: {counts}")
    if counts["failed"] or counts["pending"] or counts["leased"]:
        print("FAIL: queue not fully drained")
        return 1

    result = collect_result(root, outcome.spec_hash, timeout=60)
    try:
        np.testing.assert_allclose(result.t_values, reference.t_values,
                                   rtol=1e-12, atol=1e-12)
    except AssertionError as exc:
        print(f"FAIL: distributed t-values diverge from serial:\n{exc}")
        return 1
    print(f"distributed result matches serial to 1e-12 "
          f"({len(result.gate_names)} gates, {result.n_shards} shards)")

    resubmitted = submit_campaign(root, netlist=netlist, config=CONFIG,
                                  n_shards=N_SHARDS)
    if resubmitted.status != "cached":
        print(f"FAIL: resubmission reported {resubmitted.status!r}, "
              f"expected 'cached'")
        return 1
    cached = collect_result(root, resubmitted.spec_hash)
    if not (np.array_equal(cached.t_values, result.t_values)
            and np.array_equal(cached.mean_abs_t, result.mean_abs_t)):
        print("FAIL: cached result is not bit-identical")
        return 1
    print("resubmission served from the store bit-identically; smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
