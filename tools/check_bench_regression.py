#!/usr/bin/env python
"""Benchmark regression gate: compare latest.json against a committed anchor.

Run by the CI ``bench-regression`` job after the non-slow microbenches have
refreshed ``benchmarks/results/latest.json``: every gated metric is checked
against ``benchmarks/results/baseline.json`` (the committed anchor, seeded
by the PR that introduced this gate) and the script exits non-zero when a
metric regressed by more than ``TOLERANCE`` (25%).

Only **ratio** metrics (speedups of one in-tree implementation over its
in-tree oracle, measured back to back in the same process) are gated:
absolute wall-clock numbers do not transfer between the container that
recorded the baseline and whatever runner CI lands on, but a fast-path /
oracle ratio cancels the machine out, so a >25% drop means the fast path
itself lost its margin — a genuine regression, not runner weather.  The
benches feeding these metrics use best-of-N minima for the same reason.

Usage::

    python tools/check_bench_regression.py            # gate
    python tools/check_bench_regression.py --update   # re-anchor baseline

``--update`` rewrites baseline.json from the current latest.json (gated
experiments only) — do this deliberately, in a PR that explains why the
anchor moved.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple

RESULTS_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "results"
LATEST = RESULTS_DIR / "latest.json"
BASELINE = RESULTS_DIR / "baseline.json"

#: Allowed relative drop of a gated metric before the gate fails.
TOLERANCE = 0.25

#: experiment_id -> (row key fields, gated metric, higher_is_better).
#: Every gated experiment must be produced by a non-slow microbench, so a
#: plain ``pytest -m "not slow" benchmarks/test_microbenchmarks.py`` always
#: refreshes all of them.
GATED: Dict[str, Tuple[Tuple[str, ...], str, bool]] = {
    "microbench_compiled_sweep": (("design",), "speedup", True),
    "microbench_packed_power": (("design", "comparison"), "speedup", True),
    "microbench_moment_update": (("max_order",), "speedup", True),
    "microbench_ml_scoring": (("design", "comparison"), "speedup", True),
}

#: Row keys exempt from gating (informational rows): the packed-extraction
#: share in isolation sits at ~1.0x on masked designs (shared mask/noise
#: sampling dominates) and is recorded for transparency, not as a floor.
UNGATED_ROWS = {
    ("microbench_packed_power", ("md5", "power_backend_only")),
    ("microbench_packed_power", ("md5_masked", "power_backend_only")),
}


def load_records(path: Path) -> Dict[str, List[dict]]:
    """Map experiment_id -> rows for every record in a results file."""
    if not path.exists():
        return {}
    return {record["experiment_id"]: record.get("rows", [])
            for record in json.loads(path.read_text())}


def row_key(row: dict, fields: Tuple[str, ...]) -> Tuple:
    return tuple(row.get(field) for field in fields)


def check() -> int:
    latest = load_records(LATEST)
    baseline = load_records(BASELINE)
    if not baseline:
        print(f"error: no baseline at {BASELINE}; seed one with --update",
              file=sys.stderr)
        return 2
    failures: List[str] = []
    checked = 0
    for experiment, (fields, metric, higher_better) in sorted(GATED.items()):
        base_rows = baseline.get(experiment)
        if base_rows is None:
            print(f"  [skip] {experiment}: not anchored in baseline yet")
            continue
        latest_rows = latest.get(experiment)
        if latest_rows is None:
            failures.append(
                f"{experiment}: gated experiment missing from latest.json "
                f"(did the microbench get removed or renamed?)")
            continue
        latest_by_key = {row_key(row, fields): row for row in latest_rows}
        for base_row in base_rows:
            key = row_key(base_row, fields)
            if (experiment, key) in UNGATED_ROWS:
                continue
            current = latest_by_key.get(key)
            if current is None:
                failures.append(f"{experiment} {key}: row missing from "
                                f"latest.json")
                continue
            base_value = float(base_row[metric])
            value = float(current[metric])
            if higher_better:
                floor = base_value * (1.0 - TOLERANCE)
                regressed = value < floor
                bound = f">= {floor:.3f}"
            else:
                ceiling = base_value * (1.0 + TOLERANCE)
                regressed = value > ceiling
                bound = f"<= {ceiling:.3f}"
            checked += 1
            status = "FAIL" if regressed else "ok"
            print(f"  [{status}] {experiment} {key}: {metric} "
                  f"{value:.3f} (baseline {base_value:.3f}, allowed {bound})")
            if regressed:
                failures.append(
                    f"{experiment} {key}: {metric} regressed to "
                    f"{value:.3f} from baseline {base_value:.3f} "
                    f"(allowed {bound})")
    if failures:
        print(f"\n{len(failures)} benchmark regression(s) beyond "
              f"{TOLERANCE:.0%}:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nbench regression gate: {checked} gated metric(s) within "
          f"{TOLERANCE:.0%} of baseline")
    return 0


def update() -> int:
    latest = json.loads(LATEST.read_text())
    anchored = [record for record in latest
                if record["experiment_id"] in GATED]
    missing = sorted(set(GATED) - {r["experiment_id"] for r in anchored})
    if missing:
        print(f"error: latest.json lacks gated experiment(s) {missing}; "
              f"run the non-slow microbenches first", file=sys.stderr)
        return 2
    BASELINE.write_text(json.dumps(anchored, indent=2, sort_keys=True) + "\n")
    print(f"baseline re-anchored with {len(anchored)} experiment(s) "
          f"-> {BASELINE}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="rewrite baseline.json from latest.json")
    args = parser.parse_args(argv)
    return update() if args.update else check()


if __name__ == "__main__":
    sys.exit(main())
