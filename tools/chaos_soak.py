#!/usr/bin/env python
"""Chaos soak of the campaign/service stack under a seeded fault plan.

Run by the CI ``chaos-smoke`` job (and runnable locally with
``python tools/chaos_soak.py``).  One seeded :class:`FaultPlan` spans
**four fault domains** and the campaign must still converge *bitwise*
to an uninjected run, under both samplers:

1. start ``polaris-campaign serve`` as a real subprocess and submit a
   campaign through a following client;
2. **worker kill** — a doomed ``polaris-campaign work`` process whose
   fault plan SIGKILLs it mid-shard (``worker.shard:mode=crash``); its
   lease expires and the shard is redelivered;
3. **checkpoint corruption + queue faults** — a surviving
   ``work --connect`` process runs under
   ``checkpoint.write:mode=corrupt`` (one shard's on-disk seal is
   silently flipped) and ``queue.ack:mode=error`` (transient ack
   failures absorbed by the shared retry policy);
4. **severed watch connection** — the soak's own client drops its
   socket mid-stream (``service.recv:mode=sever``) and must redial,
   re-subscribe and dedupe the server's replay;
5. afterwards the corrupt checkpoint is quarantined (``.corrupt``
   kept for post-mortem), its shard requeued and healed by a fresh
   worker, and the streamed, collected and clean-rerun t-values are
   asserted bitwise equal.

Exits non-zero with a diagnostic on any violation.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.campaign import (  # noqa: E402
    CampaignPaths,
    campaign_queue,
    collect_result,
    run_campaign,
    run_worker,
)
from repro.campaign.runner import verified_checkpoint  # noqa: E402
from repro.campaign.serialize import decode_array  # noqa: E402
from repro.campaign.spec import CampaignSpec  # noqa: E402
from repro.netlist import load_benchmark  # noqa: E402
from repro.reliability import (  # noqa: E402
    FaultPlan,
    checkpoint_ok,
    set_fault_plan,
)
from repro.service import (  # noqa: E402
    CampaignComplete,
    CampaignProgress,
    ServiceClient,
    ServiceError,
    tenant_key_prefix,
    tenant_root,
)
from repro.tvla import TvlaConfig  # noqa: E402

#: The soak campaign: 240 traces in 48-trace chunks -> 5 chunks, 3 shards.
DESIGN = dict(name="des3", scale=0.25, seed=99)
N_SHARDS = 3
SAMPLERS = ("counter", "sequence")

#: The doomed worker SIGKILLs itself at its first shard's entry point.
DOOMED_PLAN = "worker.shard:mode=crash,max=1"
#: The survivor silently corrupts one checkpoint on disk and suffers two
#: transient ack failures (absorbed by the shared retry policy).
SURVIVOR_PLAN = ("seed=42;checkpoint.write:mode=corrupt,max=1;"
                 "queue.ack:mode=error,max=2")
#: The watching client's connection is severed on its next receive.
WATCHER_PLAN = "service.recv:mode=sever,max=1"


def _config(sampler: str) -> TvlaConfig:
    return TvlaConfig(sampler=sampler, n_traces=240, n_fixed_classes=2,
                      seed=9, chunk_traces=48, streaming=True)


def _env(fault_plan: str = "") -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("POLARIS_FAULT_PLAN", None)
    env.pop("POLARIS_SHARD_DELAY", None)
    if fault_plan:
        env["POLARIS_FAULT_PLAN"] = fault_plan
    return env


def start_server(root: Path) -> tuple:
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.campaign.cli", "serve",
         "--root", str(root), "--port", "0"],
        env=_env(), stdout=subprocess.PIPE, text=True)
    line = process.stdout.readline().strip()  # "serving on HOST:PORT"
    if not line.startswith("serving on "):
        raise RuntimeError(f"unexpected serve banner: {line!r}")
    host, _, port = line.rpartition(" ")[2].rpartition(":")
    return process, host, int(port)


def soak_one(sampler: str, root: Path, host: str, port: int) -> int:
    tenant = f"soak-{sampler}"
    netlist = load_benchmark(DESIGN["name"], scale=DESIGN["scale"],
                             seed=DESIGN["seed"])
    spec = CampaignSpec.from_netlist(netlist, _config(sampler),
                                     n_shards=N_SHARDS,
                                     force_streaming=True)
    queue = campaign_queue(root)
    client = ServiceClient(host, port)
    try:
        accepted = client.submit(tenant, spec.to_json(), follow=True)
        print(f"[{sampler}] submitted {accepted.spec_hash[:12]}… "
              f"({accepted.n_enqueued} shards enqueued)")

        # Fault domain 1: the doomed worker SIGKILLs mid-shard; its
        # short, unrenewed lease expires and the shard is redelivered.
        doomed = subprocess.Popen(
            [sys.executable, "-m", "repro.campaign.cli", "work",
             "--root", str(root), "--max-tasks", "1",
             "--lease-seconds", "0.7", "--no-renew"],
            env=_env(DOOMED_PLAN))
        doomed.wait(timeout=120)
        if doomed.returncode != -9:
            print(f"FAIL: doomed worker exited {doomed.returncode}, "
                  f"expected SIGKILL (-9)")
            return 1
        print(f"[{sampler}] doomed worker pid {doomed.pid} SIGKILLed "
              f"mid-shard; lease will expire")

        # Fault domains 2+3: the survivor corrupts one on-disk
        # checkpoint (its *streamed* partial stays clean) and retries
        # through injected ack errors; --drain waits out the dead lease.
        survivor = subprocess.Popen(
            [sys.executable, "-m", "repro.campaign.cli", "work",
             "--root", str(root), "--drain",
             "--connect", f"{host}:{port}",
             "--lease-seconds", "2", "--fault-plan", SURVIVOR_PLAN],
            env=_env())
        if survivor.wait(timeout=300) != 0:
            print("FAIL: surviving worker exited non-zero")
            return 1

        # Fault domain 4: our own watch connection is severed on the
        # next receive; the client must redial, re-subscribe, and dedupe
        # the server's replay of the stream.
        set_fault_plan(FaultPlan.parse(WATCHER_PLAN))
        progress, complete = [], None
        for frame in client.events(timeout=300):
            if isinstance(frame, CampaignProgress):
                progress.append(frame)
            elif isinstance(frame, CampaignComplete):
                complete = frame
                break
            elif isinstance(frame, ServiceError):
                print(f"FAIL: service error [{frame.code}]: "
                      f"{frame.message}")
                return 1
        if complete is None:
            print("FAIL: stream ended without CampaignComplete")
            return 1
        seen = [frame.shards_done for frame in progress]
        if len(seen) != len(set(seen)):
            print(f"FAIL: reconnect replayed progress frames: {seen}")
            return 1
        print(f"[{sampler}] stream survived sever + reconnect "
              f"({len(progress)} progress frames, no replays)")
    finally:
        client.close()
        set_fault_plan(None)

    # Post-mortem + healing: exactly one checkpoint fails its seal; it
    # is quarantined (bytes kept aside), requeued and recomputed.
    troot = tenant_root(root, tenant)
    prefix = tenant_key_prefix(tenant)
    paths = CampaignPaths(troot, spec.content_hash, key_prefix=prefix)
    bad = [k for k in range(N_SHARDS)
           if not checkpoint_ok(paths.shard_path(k))]
    if len(bad) != 1:
        print(f"FAIL: expected exactly 1 corrupt checkpoint, got {bad}")
        return 1
    verified_checkpoint(paths, bad[0], queue=queue)
    corpses = [p.name for p in paths.shards_dir.iterdir()
               if ".corrupt" in p.name]
    if len(corpses) != 1:
        print(f"FAIL: quarantine left {corpses}")
        return 1
    run_worker(queue, worker="healer", drain=True)
    if not checkpoint_ok(paths.shard_path(bad[0])):
        print(f"FAIL: shard {bad[0]} still corrupt after healing")
        return 1
    print(f"[{sampler}] shard {bad[0]} quarantined ({corpses[0]}) and "
          f"healed")

    # Convergence: streamed == collected == a clean uninjected rerun.
    streamed = decode_array(complete.assessment["t_values"])
    collected = collect_result(troot, spec.content_hash, timeout=60,
                               queue=queue, shard_key_prefix=prefix)
    if not np.array_equal(streamed, collected.t_values):
        print("FAIL: streamed final t-values != collect result (bitwise)")
        return 1
    with tempfile.TemporaryDirectory(prefix="chaos-clean-") as clean_dir:
        clean = run_campaign(clean_dir, netlist, _config(sampler),
                             n_shards=N_SHARDS, n_workers=1)
    if not np.array_equal(collected.t_values, clean.t_values):
        print("FAIL: chaos campaign != uninjected campaign (bitwise)")
        return 1
    print(f"[{sampler}] chaos t-values converge bitwise to the clean "
          f"run ({clean.t_values.shape[-1]} gates)")
    return 0


def main() -> int:
    started = time.monotonic()
    root = Path(tempfile.mkdtemp(prefix="chaos-soak-"))
    server, host, port = start_server(root)
    print(f"service pid {server.pid} on {host}:{port}, root {root}")
    try:
        for sampler in SAMPLERS:
            code = soak_one(sampler, root, host, port)
            if code != 0:
                return code
    finally:
        server.terminate()
        server.wait(timeout=30)
    print(f"chaos soak ok: 4 fault domains x {len(SAMPLERS)} samplers in "
          f"{time.monotonic() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
