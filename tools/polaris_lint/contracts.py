"""Repo-specific contract registries consumed by the rules.

These encode conventions established by earlier PRs — the linter's job is
to keep them from rotting as the codebase grows.  When a new fast path,
pickle-seam class or RNG seam lands, extend the matching registry here (and
``docs/static-analysis.md``) in the same PR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Paths (relative, posix) under which PL001's strict RNG discipline
#: applies: every generator must be injected or derived from a seeded
#: ``SeedSequence``-based seam.  Tools and benchmarks may construct their
#: own seeded generators but are still barred from global RNG state.
RNG_STRICT_PREFIXES: Tuple[str, ...] = ("src/repro/",)

#: ``numpy.random`` attributes that are part of the sanctioned Generator
#: API.  Everything else (``np.random.seed``, ``np.random.rand``,
#: ``np.random.RandomState``, ...) is hidden global state: it breaks the
#: shard-layout invariance built in PR 2, where every stream derives from
#: ``SeedSequence.spawn`` coordinates.
NP_RANDOM_ALLOWED: Tuple[str, ...] = (
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "Philox", "PCG64", "PCG64DXSM", "MT19937", "SFC64",
)

#: Seam functions that mint seeded generators; calling through them (or
#: accepting an injected ``rng`` parameter) is the sanctioned way to get
#: randomness inside ``src/repro``.
RNG_SEAM_FUNCTIONS: Tuple[str, ...] = (
    "chunk_seed_streams",
    # PR 8: the counter sampler's single BitGenerator seam — Philox keyed
    # by (seed, class, group, chunk, lane) coordinates, seedless by design.
    "philox_bit_generator",
)


@dataclass(frozen=True)
class OraclePair:
    """A fast path and the bit-identical oracle it must stay pinned to.

    Attributes:
        pair_id: Short identifier used in findings.
        module: Repo-relative path of the module defining both sides.
        fast: Fast-path symbol (``kind="symbol"``) or selector string
            (``kind="string"``).
        oracle: The reference implementation's symbol or selector string.
        kind: ``"symbol"`` — both names must be defined functions/methods
            in ``module``; ``"string"`` — both must appear as string
            constants in ``module`` (backend selector tuples).
    """

    pair_id: str
    module: str
    fast: str
    oracle: str
    kind: str = "symbol"


#: Every fast path introduced by PRs 1-5 and the oracle that pins it.
#: PL002 verifies both sides still exist and that at least one test module
#: references the pair together.
ORACLE_PAIRS: Tuple[OraclePair, ...] = (
    # PR 5: fused Horner moment update vs the naive power-chain reference.
    OraclePair("moments-update", "src/repro/tvla/moments.py",
               "update_batch", "update_batch_naive"),
    # PR 5: packed toggle extraction vs the bool-matrix oracle.
    OraclePair("power-backend", "src/repro/power/traces.py",
               "packed", "unpacked", kind="string"),
    # PR 3: fused levelised simulation kernel vs the per-gate loop.
    OraclePair("sim-backend", "src/repro/simulation/simulator.py",
               "compiled", "loop", kind="string"),
    # PR 1: vectorised trace engine vs the per-gate reference loop.
    OraclePair("trace-engine", "src/repro/power/traces.py",
               "generate", "generate_loop"),
    # PR 7: flat-array batch tree descent vs the per-sample node walk.
    OraclePair("tree-predict", "src/repro/ml/tree.py",
               "predict_batch", "predict_value"),
    # PR 7: bottom-up batched conditional expectation vs the recursive walk.
    OraclePair("tree-shap-expectation", "src/repro/xai/tree_shap.py",
               "expectation_batch", "expectation"),
    # PR 7: batched SHAP matrix vs the per-sample explainer.
    OraclePair("tree-shap-explain", "src/repro/xai/tree_shap.py",
               "explain_matrix", "explain"),
    # PR 8: native Philox word production vs the pure-numpy 10-round
    # reference implementation of the 4x64 block function.
    OraclePair("ctr-philox", "src/repro/power/ctrsample.py",
               "philox_raw", "philox_blocks_reference"),
    # PR 8: counter-based sampling discipline vs the frozen SeedSequence
    # stream discipline (different draws by design — the sequence side is
    # the stateless-contract oracle pinned byte-for-byte by regression).
    OraclePair("mask-sampler", "src/repro/power/ctrsample.py",
               "counter", "sequence", kind="string"),
)


#: Classes shipped across the process-executor / campaign pickle seam,
#: mapped to the scratch-buffer attributes their ``__getstate__`` must
#: exclude (PR 5 dropped these from pickles: multi-megabyte per-chunk
#: workspaces must not bloat queue messages or shard checkpoints).
#: PL004 also flags *any* ``src/repro`` class whose attribute names mark
#: them as scratch (``*scratch*``) when no ``__getstate__``/``__reduce__``
#: excludes them.
PICKLE_SEAM_CLASSES: Dict[str, Tuple[str, ...]] = {
    "OnePassMoments": ("_batch_scratch",),
}

#: Resource constructors PL005 tracks: every acquisition must be closed on
#: all paths (``with``/``closing``/try-finally) or have its ownership
#: transferred (returned, stored on ``self``).
RESOURCE_CONSTRUCTORS: Tuple[str, ...] = (
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.thread.ThreadPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
    "sqlite3.connect",
    "multiprocessing.shared_memory.SharedMemory",
    "shared_memory.SharedMemory",
    # asyncio resources (the service layer): servers need close() +
    # wait_closed(), stream pairs need the writer closed, background
    # tasks need cancel() — or ownership transferred, same as above.
    "asyncio.start_server",
    "asyncio.open_connection",
    "asyncio.create_task",
    "socket.create_connection",
)

#: Paths (relative, posix) under which PL007's durable-write discipline
#: applies: every file write must go through the fsync-before-rename
#: helpers in ``repro.reliability.atomic`` (PR 10 — a torn write here is
#: a corrupt checkpoint or store object after a crash).  The reliability
#: package itself hosts the helpers and is deliberately outside the
#: guarded surface.
ATOMIC_WRITE_PREFIXES: Tuple[str, ...] = (
    "src/repro/campaign/",
    "src/repro/service/",
)

#: The sanctioned write helpers (named in PL007 findings).
ATOMIC_WRITE_HELPERS: Tuple[str, ...] = (
    "repro.reliability.atomic.atomic_write_bytes",
    "repro.reliability.atomic.publish_exclusive",
)
