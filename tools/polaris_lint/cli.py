"""Command-line interface of ``polaris-lint``.

Usage::

    polaris-lint [PATH ...] [--root DIR] [--format human|json]
                 [--rules PL001,PL003] [--list-rules]

With no paths, lints the repo's default surface (``src``, ``tools``,
``benchmarks``) relative to ``--root``.  Exits 0 only when no
non-suppressed finding remains — the contract the CI ``static-analysis``
job and ``tests/test_lint_clean.py`` both gate on.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from . import rules as _rules  # noqa: F401  (imports register every rule)
from .core import RULES, LintResult, lint_paths

#: Default lint surface, relative to the project root.
DEFAULT_PATHS = ("src", "tools", "benchmarks")


def find_project_root(start: Path) -> Path:
    """Walk up from ``start`` to the directory containing ``setup.py``."""
    current = start.resolve()
    for candidate in (current, *current.parents):
        if (candidate / "setup.py").is_file():
            return candidate
    return current


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="polaris-lint",
        description="AST-based invariant checker for the POLARIS repo: "
                    "determinism, oracle pairing, buffer and pickle "
                    "hygiene, resource lifecycle, float equality.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (default: "
                             f"{' '.join(DEFAULT_PATHS)} under --root)")
    parser.add_argument("--root", default=None,
                        help="project root (default: auto-detected from the "
                             "first path or the working directory)")
    parser.add_argument("--format", choices=("human", "json"),
                        default="human", help="output format")
    parser.add_argument("--rules", default=None, metavar="IDS",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule registry and exit")
    return parser


def list_rules() -> str:
    lines = []
    for rule_id, rule_cls in sorted(RULES.items()):
        lines.append(f"{rule_id}  [{rule_cls.severity.value:7s}] "
                     f"{rule_cls.title}")
    return "\n".join(lines)


def render_human(result: LintResult) -> str:
    lines = [finding.render() for finding in result.findings]
    verdict = "clean" if result.clean else "FAILED"
    lines.append(f"polaris-lint: {verdict} — {result.errors} error(s), "
                 f"{result.warnings} warning(s) in {result.files_checked} "
                 f"file(s); {result.suppressed} suppression(s) honoured")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0

    if args.root is not None:
        root = Path(args.root).resolve()
    elif args.paths:
        first = Path(args.paths[0]).resolve()
        root = find_project_root(first if first.is_dir() else first.parent)
    else:
        root = find_project_root(Path.cwd())
    paths: List[str] = list(args.paths) or list(DEFAULT_PATHS)

    rule_ids = None
    if args.rules is not None:
        rule_ids = [rule_id.strip() for rule_id in args.rules.split(",")
                    if rule_id.strip()]
        unknown = [rule_id for rule_id in rule_ids if rule_id not in RULES]
        if unknown:
            print(f"polaris-lint: unknown rule id(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    result = lint_paths(root, paths, rule_ids=rule_ids)
    if args.format == "json":
        print(json.dumps(result.as_dict(), indent=2))
    else:
        print(render_human(result))
    return 0 if result.clean else 1


if __name__ == "__main__":
    sys.exit(main())
