"""Core engine of ``polaris-lint``: files, rules, suppressions, findings.

The linter is a thin, dependency-free AST pass over the repository's own
source: each :class:`FileRule` is an :class:`ast.NodeVisitor` that walks one
parsed module, each :class:`ProjectRule` sees every linted module at once
(for cross-file contracts such as oracle pairing), and the engine applies
inline suppressions before reporting.

Suppressions are deliberately strict: ``# polaris-lint: disable=PL003
<reason>`` silences matching findings on its line (or, for a comment-only
line, the line below), but a suppression **without a written justification
is itself an error** (PL000) — the whole point of the tool is that every
deviation from a repo invariant carries its rationale in the diff.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type, Union

#: Rule id of the linter's own meta-findings (unparsable file, malformed or
#: unjustified suppression).  Not suppressible.
META_RULE = "PL000"


class Severity(str, Enum):
    """Finding severity; both levels fail the lint (CI gates on any)."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    def as_dict(self) -> dict:
        """JSON-ready representation (stable key order)."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        """Human one-liner, ``path:line:col: PLxxx [severity] message``."""
        return (f"{self.path}:{self.line}:{self.col}: {self.rule} "
                f"[{self.severity.value}] {self.message}")


#: A comment that is *trying* to talk to the linter (used to distinguish
#: malformed suppressions from prose that merely mentions the tool).
_SUPPRESS_ATTEMPT_RE = re.compile(r"^#\s*polaris-lint\b")
#: ``# polaris-lint: disable=PL001,PL003 <justification>``
_SUPPRESS_RE = re.compile(
    r"#\s*polaris-lint:\s*disable=([A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*)"
    r"(?:\s+(?P<reason>\S.*?))?\s*$")


@dataclass(frozen=True)
class Suppression:
    """An inline suppression comment, already bound to the line it covers."""

    codes: Tuple[str, ...]
    reason: str
    comment_line: int
    target_line: int


class SourceFile:
    """One parsed module plus everything rules need to inspect it."""

    def __init__(self, path: Path, rel_path: str, text: str) -> None:
        self.path = path
        self.rel_path = rel_path
        self.text = text
        self.lines = text.splitlines()
        self.tree: Optional[ast.Module] = None
        self.parse_error: Optional[SyntaxError] = None
        self.suppressions: List[Suppression] = []
        self.malformed_suppressions: List[Tuple[int, str]] = []
        self._parents: Dict[ast.AST, ast.AST] = {}
        self._imports: Dict[str, str] = {}
        try:
            self.tree = ast.parse(text, filename=rel_path)
        except SyntaxError as exc:
            self.parse_error = exc
            return
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self._collect_imports()
        self._collect_suppressions()

    # ------------------------------------------------------------------
    def _collect_imports(self) -> None:
        """Map local names to the fully dotted module paths they import.

        ``import numpy as np`` maps ``np -> numpy``; ``from numpy.random
        import default_rng as mk`` maps ``mk -> numpy.random.default_rng``.
        Only module-level and function-level plain imports are tracked —
        enough to resolve the idioms the rules care about.
        """
        assert self.tree is not None
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self._imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self._imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}")

    def _collect_suppressions(self) -> None:
        """Parse suppression comments with :mod:`tokenize` (never strings)."""
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.text).readline)
            comments = [(tok.start[0], tok.start[1], tok.string)
                        for tok in tokens if tok.type == tokenize.COMMENT]
        except tokenize.TokenError:
            return
        for line, col, comment in comments:
            if not _SUPPRESS_ATTEMPT_RE.match(comment):
                continue
            match = _SUPPRESS_RE.match(comment)
            if match is None:
                self.malformed_suppressions.append(
                    (line, "malformed polaris-lint suppression comment "
                           "(expected '# polaris-lint: disable=PLxxx "
                           "<justification>')"))
                continue
            codes = tuple(code.strip()
                          for code in match.group(1).split(","))
            reason = (match.group("reason") or "").strip()
            if not reason:
                self.malformed_suppressions.append(
                    (line, f"suppression of {', '.join(codes)} has no "
                           f"written justification"))
                continue
            # A comment-only line covers the next line; a trailing comment
            # covers its own.
            comment_only = self.lines[line - 1][:col].strip() == ""
            target = line + 1 if comment_only else line
            self.suppressions.append(
                Suppression(codes=codes, reason=reason,
                            comment_line=line, target_line=target))

    # ------------------------------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The AST parent of ``node`` (None for the module)."""
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def resolve_dotted(self, node: ast.AST) -> Optional[str]:
        """Fully qualified dotted name of a Name/Attribute chain, or None.

        Import aliases are expanded: with ``import numpy as np``, the
        expression ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng``.
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = self._imports.get(current.id, current.id)
        parts.append(base)
        return ".".join(reversed(parts))


class Project:
    """All linted files plus the repo context cross-file rules need."""

    def __init__(self, root: Path, files: Sequence[SourceFile]) -> None:
        self.root = root
        self.files = list(files)
        self._by_rel = {f.rel_path: f for f in self.files}
        self._test_texts: Optional[Dict[str, str]] = None

    def file(self, rel_path: str) -> Optional[SourceFile]:
        """The linted file at ``rel_path``, loading it on demand if absent.

        Cross-file rules may reference modules outside the linted path set
        (e.g. linting only ``tools`` must still see the oracle registry's
        ``src`` modules); those are parsed lazily from the project root.
        """
        found = self._by_rel.get(rel_path)
        if found is not None:
            return found
        candidate = self.root / rel_path
        if not candidate.is_file():
            return None
        loaded = SourceFile(candidate, rel_path,
                            candidate.read_text(encoding="utf-8"))
        self._by_rel[rel_path] = loaded
        return loaded

    def test_texts(self) -> Dict[str, str]:
        """``rel_path -> source text`` of every module under ``tests/``."""
        if self._test_texts is None:
            self._test_texts = {}
            tests_dir = self.root / "tests"
            if tests_dir.is_dir():
                for path in sorted(tests_dir.rglob("*.py")):
                    rel = path.relative_to(self.root).as_posix()
                    self._test_texts[rel] = path.read_text(encoding="utf-8")
        return self._test_texts


# ----------------------------------------------------------------------
# Rule framework
# ----------------------------------------------------------------------
class Rule:
    """Base class: a rule id, a severity, and a one-line contract."""

    rule_id: str = ""
    severity: Severity = Severity.ERROR
    title: str = ""

    def __init__(self) -> None:
        self.findings: List[Finding] = []

    def report(self, file: SourceFile, node_or_line: Union[ast.AST, int],
               message: str, col: int = 0) -> None:
        """Record one finding against ``file``."""
        if isinstance(node_or_line, ast.AST):
            line = getattr(node_or_line, "lineno", 1)
            col = getattr(node_or_line, "col_offset", 0)
        else:
            line = node_or_line
        self.findings.append(Finding(rule=self.rule_id, severity=self.severity,
                                     path=file.rel_path, line=line, col=col,
                                     message=message))


class FileRule(Rule, ast.NodeVisitor):
    """A rule that inspects one module at a time (the common case)."""

    def run(self, file: SourceFile) -> List[Finding]:
        """Visit ``file`` and return its findings."""
        self.findings = []
        self.file = file
        if file.tree is not None:
            self.visit(file.tree)
        return self.findings


class ProjectRule(Rule):
    """A rule that needs the whole project (cross-file contracts)."""

    def run_project(self, project: Project) -> List[Finding]:
        raise NotImplementedError


#: Registered rule classes by id, in registration order.
RULES: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id or cls.rule_id in RULES:
        raise ValueError(f"rule id {cls.rule_id!r} is empty or duplicated")
    RULES[cls.rule_id] = cls
    return cls


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding]
    files_checked: int
    suppressed: int
    suppression_reasons: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings
                   if f.severity is Severity.ERROR)

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings
                   if f.severity is Severity.WARNING)

    @property
    def clean(self) -> bool:
        return not self.findings

    def as_dict(self) -> dict:
        """JSON document shape consumed by CI and the test-suite."""
        return {
            "tool": "polaris-lint",
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "counts": {"error": self.errors, "warning": self.warnings},
            "clean": self.clean,
            "findings": [f.as_dict() for f in self.findings],
        }


def collect_files(root: Path, paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories to the sorted list of ``.py`` files."""
    seen = {}
    for entry in paths:
        path = Path(entry)
        if not path.is_absolute():
            path = root / path
        if path.is_file() and path.suffix == ".py":
            seen[path.resolve()] = None
        elif path.is_dir():
            for found in sorted(path.rglob("*.py")):
                if "__pycache__" in found.parts or any(
                        part.startswith(".") for part in found.parts):
                    continue
                seen[found.resolve()] = None
    return list(seen)


def lint_paths(root: Union[str, Path],
               paths: Sequence[Union[str, Path]],
               rule_ids: Optional[Sequence[str]] = None) -> LintResult:
    """Lint ``paths`` (files or directories) relative to ``root``.

    Returns a :class:`LintResult`; ``result.clean`` is the CI gate.
    """
    root = Path(root).resolve()
    files: List[SourceFile] = []
    for path in collect_files(root, paths):
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        files.append(SourceFile(path, rel, path.read_text(encoding="utf-8")))

    project = Project(root, files)
    selected = ([RULES[rule_id] for rule_id in rule_ids]
                if rule_ids is not None else list(RULES.values()))

    raw: List[Finding] = []
    for file in files:
        if file.parse_error is not None:
            raw.append(Finding(
                rule=META_RULE, severity=Severity.ERROR, path=file.rel_path,
                line=file.parse_error.lineno or 1, col=0,
                message=f"file does not parse: {file.parse_error.msg}"))
            continue
        for line, message in file.malformed_suppressions:
            raw.append(Finding(rule=META_RULE, severity=Severity.ERROR,
                               path=file.rel_path, line=line, col=0,
                               message=message))
        for suppression in file.suppressions:
            for code in suppression.codes:
                if code != META_RULE and code not in RULES:
                    raw.append(Finding(
                        rule=META_RULE, severity=Severity.ERROR,
                        path=file.rel_path, line=suppression.comment_line,
                        col=0, message=f"suppression names unknown rule "
                                       f"{code}"))
        for rule_cls in selected:
            if issubclass(rule_cls, FileRule):
                raw.extend(rule_cls().run(file))
    for rule_cls in selected:
        if issubclass(rule_cls, ProjectRule):
            raw.extend(rule_cls().run_project(project))

    # Apply suppressions (PL000 meta-findings are never suppressible).
    by_path = {file.rel_path: file for file in files}
    kept: List[Finding] = []
    suppressed = 0
    reasons: Dict[str, List[str]] = {}
    for finding in raw:
        file = by_path.get(finding.path)
        if finding.rule != META_RULE and file is not None and any(
                s.target_line == finding.line and finding.rule in s.codes
                for s in file.suppressions):
            suppressed += 1
            reasons.setdefault(finding.rule, []).append(
                f"{finding.path}:{finding.line}")
            continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintResult(findings=kept, files_checked=len(files),
                      suppressed=suppressed, suppression_reasons=reasons)
