"""Run the linter from a checkout: ``python tools/polaris_lint [...]``.

Python executes a directory by putting *it* on ``sys.path`` and running
``__main__.py``; the package itself then is not importable, so add the
parent (``tools/``) and import properly.
"""

import sys
from pathlib import Path

_TOOLS_DIR = str(Path(__file__).resolve().parent.parent)
if _TOOLS_DIR not in sys.path:
    sys.path.insert(0, _TOOLS_DIR)

from polaris_lint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
