"""PL004 — pickle hygiene at the process-executor seam.

Objects crossing the ``ProcessPoolExecutor`` / ``QueueExecutor`` / campaign
checkpoint seam are pickled; per-chunk scratch buffers are multi-megabyte
workspaces that must never ride along (PR 5 dropped them from
``OnePassMoments`` pickles — a regression here silently bloats every queue
message and shard checkpoint).  A class with scratch-buffer attributes
(``*scratch*`` naming, or listed in ``PICKLE_SEAM_CLASSES``) must define
``__getstate__`` (or ``__reduce__``) and mention each scratch attribute in
it, as evidence the attribute is excluded or reset.
"""

from __future__ import annotations

import ast
from typing import Optional, Set

from ..contracts import PICKLE_SEAM_CLASSES
from ..core import FileRule, Severity, register

_STATE_METHODS = ("__getstate__", "__reduce__", "__reduce_ex__")


def _instance_attrs(cls: ast.ClassDef) -> Set[str]:
    """Attribute names assigned to ``self`` anywhere in the class body."""
    attrs: Set[str] = set()
    for node in ast.walk(cls):
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Attribute) \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id == "self":
                attrs.add(target.attr)
    return attrs


def _state_method(cls: ast.ClassDef) -> Optional[ast.FunctionDef]:
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node.name in _STATE_METHODS:
            return node
    return None


def _mentions(func: ast.FunctionDef, attr: str) -> bool:
    """Whether ``attr`` appears in ``func`` as a string or attribute."""
    for node in ast.walk(func):
        if isinstance(node, ast.Constant) and node.value == attr:
            return True
        if isinstance(node, ast.Attribute) and node.attr == attr:
            return True
    return False


@register
class PickleSeamRule(FileRule):
    """Scratch buffers must not cross the pickle seam."""

    rule_id = "PL004"
    severity = Severity.ERROR
    title = "pickle hygiene: scratch buffers excluded via __getstate__"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        attrs = _instance_attrs(node)
        scratch = {attr for attr in attrs if "scratch" in attr.lower()}
        scratch.update(attr for attr in PICKLE_SEAM_CLASSES.get(node.name, ())
                       if attr in attrs)
        if scratch:
            state = _state_method(node)
            if state is None:
                self.report(self.file, node,
                            f"class {node.name} holds scratch buffer(s) "
                            f"{sorted(scratch)} but defines no __getstate__/"
                            f"__reduce__; pickling it ships multi-megabyte "
                            f"workspaces across the executor seam")
            else:
                for attr in sorted(scratch):
                    if not _mentions(state, attr):
                        self.report(self.file, state,
                                    f"{node.name}.{state.name} does not "
                                    f"mention scratch attribute {attr!r}; "
                                    f"it must be excluded or reset before "
                                    f"pickling")
        self.generic_visit(node)
