"""Rule modules; importing this package registers every rule.

Rule ids are stable and documented in ``docs/static-analysis.md``:

========  ========================================================
PL001     RNG discipline (no unseeded / global randomness)
PL002     oracle pairing (fast paths keep tested bit-identical oracles)
PL003     buffer safety (frozen shared arrays, no parameter mutation)
PL004     pickle hygiene (scratch buffers excluded from the seam)
PL005     resource lifecycle (close/shutdown on all paths)
PL006     float equality (tolerances, not ==)
PL007     durable writes (campaign/service use the atomic helpers)
========  ========================================================
"""

from . import buffers, floatcmp, oracle, pickle_seam, resources, rng, writes

__all__ = ["buffers", "floatcmp", "oracle", "pickle_seam", "resources",
           "rng", "writes"]
