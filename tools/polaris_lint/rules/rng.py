"""PL001 — RNG discipline.

Every random stream in ``src/repro`` must be reproducible from campaign
coordinates: generators are injected parameters, seeded explicitly, or
spawned from ``numpy.random.SeedSequence`` seam functions such as
``chunk_seed_streams`` (PR 2's shard-layout invariance depends on it).
Therefore:

* ``np.random.default_rng()`` without a seed (or with a literal ``None``)
  is forbidden — it silently draws OS entropy and makes results
  unreproducible;
* the legacy global-state API (``np.random.seed``, ``np.random.rand``,
  ``np.random.RandomState``, ...) is forbidden everywhere the linter runs;
* the stdlib :mod:`random` module is forbidden inside ``src/repro``.
"""

from __future__ import annotations

import ast

from ..contracts import NP_RANDOM_ALLOWED, RNG_STRICT_PREFIXES
from ..core import FileRule, Severity, register


def _in_strict_scope(rel_path: str) -> bool:
    return rel_path.startswith(RNG_STRICT_PREFIXES)


@register
class RngDisciplineRule(FileRule):
    """Unseeded/global randomness breaks campaign reproducibility."""

    rule_id = "PL001"
    severity = Severity.ERROR
    title = "RNG discipline: injected or SeedSequence-derived generators only"

    # ------------------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name.split(".")[0] == "random" \
                    and _in_strict_scope(self.file.rel_path):
                self.report(self.file, node,
                            "stdlib 'random' is banned in src/repro: use an "
                            "injected numpy Generator derived from "
                            "SeedSequence coordinates")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0 and node.module \
                and node.module.split(".")[0] == "random" \
                and _in_strict_scope(self.file.rel_path):
            self.report(self.file, node,
                        "stdlib 'random' is banned in src/repro: use an "
                        "injected numpy Generator derived from SeedSequence "
                        "coordinates")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.file.resolve_dotted(node.func)
        if dotted is not None:
            self._check_call(node, dotted)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # Non-call references to banned global-state attributes (e.g.
        # aliasing ``np.random.shuffle`` into a variable) are just as bad.
        parent = self.file.parent(node)
        is_call_func = isinstance(parent, ast.Call) and parent.func is node
        if not is_call_func and not isinstance(parent, ast.Attribute):
            dotted = self.file.resolve_dotted(node)
            if dotted is not None:
                self._check_global_state(node, dotted)
        self.generic_visit(node)

    # ------------------------------------------------------------------
    def _check_call(self, node: ast.Call, dotted: str) -> None:
        if dotted.endswith("numpy.random.Philox") \
                or dotted == "numpy.random.Philox":
            # Philox is counter-based: a construction keyed from campaign
            # coordinates (key=/counter=, or an explicit non-None seed) is
            # the sanctioned ctrsample seam.  A bare Philox() falls back
            # to OS entropy exactly like an unseeded default_rng().
            if any(kw.arg is None for kw in node.keywords):
                return  # **kwargs: cannot see the seed statically

            def _entropy(value: ast.expr) -> bool:
                return isinstance(value, ast.Constant) and value.value is None

            seeded = bool(node.args) and not _entropy(node.args[0])
            seeded = seeded or any(kw.arg in ("seed", "key")
                                   and not _entropy(kw.value)
                                   for kw in node.keywords)
            if not seeded:
                self.report(self.file, node,
                            "np.random.Philox() without a seed or key draws "
                            "OS entropy; key it from campaign coordinates "
                            "(see repro.power.ctrsample."
                            "philox_bit_generator)")
            return
        if dotted.endswith("numpy.random.default_rng") \
                or dotted == "numpy.random.default_rng":
            unseeded = not node.args and not node.keywords
            literal_none = (node.args
                            and isinstance(node.args[0], ast.Constant)
                            and node.args[0].value is None)
            if unseeded or literal_none:
                self.report(self.file, node,
                            "unseeded np.random.default_rng(): results "
                            "become silently nondeterministic; inject an "
                            "rng parameter or derive a seed from "
                            "SeedSequence coordinates")
            return
        self._check_global_state(node, dotted)
        if dotted.split(".")[0] == "random" \
                and _in_strict_scope(self.file.rel_path) \
                and dotted.count(".") == 1:
            self.report(self.file, node,
                        f"stdlib '{dotted}' is banned in src/repro: use an "
                        f"injected numpy Generator")

    def _check_global_state(self, node: ast.AST, dotted: str) -> None:
        prefix = "numpy.random."
        if not dotted.startswith(prefix):
            return
        member = dotted[len(prefix):].split(".")[0]
        if member not in NP_RANDOM_ALLOWED:
            self.report(self.file, node,
                        f"np.random.{member} uses hidden global RNG state; "
                        f"construct a Generator via default_rng(seed) / "
                        f"SeedSequence instead")
