"""PL005 — resource lifecycle.

Executors, SQLite connections, shared-memory handles — and, since the
service layer, asyncio servers/streams/tasks and raw sockets — must be
released on **all** paths: constructed inside a ``with``/``async with``
(directly or via ``contextlib.closing``), closed/cancelled in a
``try``/``finally``, or handed off — returned to a caller that owns the
lifecycle, or stored on an object attribute whose owner's shutdown path
takes over.  Anything else leaks worker processes, database handles,
shared segments, listening ports or forever-pending tasks when an
exception unwinds — exactly the failure PR 4 fixed for raised-in-shard
campaigns.

asyncio specifics: an ``await``\\ ed constructor (``await
asyncio.start_server(...)``) is unwrapped before the parent check, and a
tuple-unpacked acquisition (``reader, writer = await
asyncio.open_connection(...)``) passes when *any* unpacked name is
released in scope — closing the writer closes the shared transport.
"""

from __future__ import annotations

import ast
from typing import Optional

from ..contracts import RESOURCE_CONSTRUCTORS
from ..core import FileRule, Severity, register

_CLOSE_METHODS = frozenset({"close", "shutdown", "terminate", "unlink",
                            "cancel", "wait_closed"})


@register
class ResourceLifecycleRule(FileRule):
    """Every acquired executor/connection/segment has a release path."""

    rule_id = "PL005"
    severity = Severity.WARNING
    title = "resource lifecycle: close/shutdown on all paths"

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.file.resolve_dotted(node.func)
        if dotted is not None and self._is_resource(dotted):
            if not self._has_release_path(node):
                kind = dotted.split(".")[-1]
                self.report(self.file, node,
                            f"{kind} is acquired without a guaranteed "
                            f"release: use a 'with' block (or contextlib."
                            f"closing), a try/finally close/shutdown, or "
                            f"transfer ownership by returning it")
        self.generic_visit(node)

    # ------------------------------------------------------------------
    @staticmethod
    def _is_resource(dotted: str) -> bool:
        return any(dotted == known or dotted.endswith("." + known)
                   or known.endswith("." + dotted)
                   for known in RESOURCE_CONSTRUCTORS)

    def _has_release_path(self, node: ast.Call) -> bool:
        parent = self.file.parent(node)
        # `await <ctor>(...)` — the coroutine wrapper is transparent for
        # lifecycle purposes; the awaited result is the resource.
        if isinstance(parent, ast.Await):
            parent = self.file.parent(parent)
        # closing(<ctor>()) — unwrap and re-check the wrapper call.
        if isinstance(parent, ast.Call) and parent.func is not node:
            dotted = self.file.resolve_dotted(parent.func)
            if dotted is not None and dotted.split(".")[-1] == "closing":
                parent = self.file.parent(parent)
        # `return (pool, flags...)` transfers ownership just like a bare
        # return; climb through tuple/list display nesting first.
        while isinstance(parent, (ast.Tuple, ast.List, ast.Starred)):
            parent = self.file.parent(parent)
        if isinstance(parent, ast.withitem):
            return True
        if isinstance(parent, ast.Return):
            return True  # ownership transferred to the caller
        if isinstance(parent, ast.Assign):
            for target in parent.targets:
                if isinstance(target, ast.Attribute):
                    # Stored on an object attribute: that object's
                    # shutdown path owns the resource now (self._server,
                    # connection.sender, ...).
                    return True
                if isinstance(target, ast.Name):
                    return self._released_in_scope(node, target.id)
                if isinstance(target, (ast.Tuple, ast.List)):
                    # reader, writer = await open_connection(...): the
                    # pair shares one transport — releasing any unpacked
                    # name (the writer) releases the acquisition.
                    names = [element.id for element in target.elts
                             if isinstance(element, ast.Name)]
                    if any(isinstance(element, ast.Attribute)
                           for element in target.elts):
                        return True
                    return any(self._released_in_scope(node, name)
                               for name in names)
        return False

    def _released_in_scope(self, node: ast.AST, name: str) -> bool:
        """Whether ``name`` is with-entered or finally-closed in scope."""
        scope: Optional[ast.AST] = None
        for ancestor in self.file.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Module)):
                scope = ancestor
                break
        if scope is None:
            return False
        for other in ast.walk(scope):
            if isinstance(other, ast.withitem):
                expr = other.context_expr
                if isinstance(expr, ast.Name) and expr.id == name:
                    return True
                if isinstance(expr, ast.Call):
                    for arg in expr.args:
                        if isinstance(arg, ast.Name) and arg.id == name:
                            return True
            if isinstance(other, ast.Try) and other.finalbody:
                for stmt in other.finalbody:
                    for call in ast.walk(stmt):
                        if isinstance(call, ast.Call) \
                                and isinstance(call.func, ast.Attribute) \
                                and call.func.attr in _CLOSE_METHODS \
                                and isinstance(call.func.value, ast.Name) \
                                and call.func.value.id == name:
                            return True
        return False
