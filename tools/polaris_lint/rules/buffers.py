"""PL003 — buffer safety.

Arrays that outlive one call must not be silently writable, and arrays a
caller hands in must not be silently mutated:

* an array stored in a process-wide cache dict (``_*CACHE*`` naming
  convention, e.g. ``_TOGGLE_TABLE_CACHE``) must be frozen with
  ``setflags(write=False)`` before the store — cached tables are shared by
  every thread shard;
* a module-level numpy array (shared constant table) must be frozen at
  module level;
* a function must not mutate an array *parameter* in place (subscript
  stores, augmented assignment, ``out=param``, mutating methods) unless the
  function's contract says so — an ``out``-style parameter name, an
  ``*_inplace`` function name, or a docstring that states the mutation.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Set

from ..core import FileRule, Severity, register

#: Module/global cache-dict naming convention of the repo.
_CACHE_NAME_RE = re.compile(r"^_?[A-Z][A-Z0-9_]*CACHE[A-Z0-9_]*$")
#: numpy constructors whose module-level results are shared tables.
_NP_CTORS = frozenset({
    "zeros", "ones", "empty", "full", "arange", "array", "asarray",
    "ascontiguousarray", "asfortranarray", "frombuffer", "fromiter",
    "eye", "identity", "linspace", "tile", "concatenate", "stack",
})
#: ndarray methods that mutate the receiver.
_MUTATING_METHODS = frozenset({
    "fill", "sort", "partition", "put", "resize", "setflags", "itemset",
})
#: Parameter names that advertise an output/scratch contract.
_OUT_PARAM_RE = re.compile(r"^(out|buf|buffer|scratch|dest|workspace)")
#: Docstring phrases that advertise in-place mutation.
_INPLACE_DOC_RE = re.compile(r"in[- ]place|\bmutat", re.IGNORECASE)


def _shallow(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested function/class defs."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        yield current
        if not isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(current))


def _is_freeze_call(node: ast.AST, name: str) -> bool:
    """Whether ``node`` is ``<name>.setflags(write=False)``."""
    if not (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "setflags"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == name):
        return False
    for keyword in node.keywords:
        if keyword.arg == "write" and isinstance(keyword.value, ast.Constant):
            return keyword.value.value is False
    return bool(node.args and isinstance(node.args[0], ast.Constant)
                and node.args[0].value is False)


@register
class BufferSafetyRule(FileRule):
    """Shared arrays stay read-only; parameters stay caller-owned."""

    rule_id = "PL003"
    severity = Severity.WARNING
    title = "buffer safety: frozen shared arrays, no parameter mutation"

    # ------------------------------------------------------------------
    def visit_Module(self, node: ast.Module) -> None:
        self._check_module_tables(node)
        self.generic_visit(node)

    def _check_module_tables(self, module: ast.Module) -> None:
        frozen: Set[str] = set()
        for stmt in module.body:
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                call = stmt.value
                if isinstance(call.func, ast.Attribute) \
                        and call.func.attr == "setflags" \
                        and isinstance(call.func.value, ast.Name):
                    frozen.add(call.func.value.id)
        for stmt in module.body:
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Call)):
                continue
            dotted = self.file.resolve_dotted(stmt.value.func)
            if dotted is None or not dotted.startswith("numpy."):
                continue
            if dotted.split(".")[-1] not in _NP_CTORS:
                continue
            name = stmt.targets[0].id
            if name not in frozen:
                self.report(self.file, stmt,
                            f"module-level array {name!r} is shared by every "
                            f"importer but stays writable; freeze it with "
                            f"{name}.setflags(write=False)")

    # ------------------------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_cache_stores(node)
        self._check_parameter_mutation(node)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def _check_cache_stores(self, func: ast.FunctionDef) -> None:
        for stmt in _shallow(func):
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Subscript)):
                continue
            base = stmt.targets[0].value
            if not (isinstance(base, ast.Name)
                    and _CACHE_NAME_RE.match(base.id)):
                continue
            if not isinstance(stmt.value, ast.Name):
                self.report(self.file, stmt,
                            f"store into process-wide cache {base.id!r} "
                            f"must go through a named, frozen array "
                            f"(call setflags(write=False) before caching)")
                continue
            stored = stmt.value.id
            if not any(_is_freeze_call(other, stored)
                       for other in _shallow(func)
                       if getattr(other, "lineno", stmt.lineno) < stmt.lineno):
                self.report(self.file, stmt,
                            f"array {stored!r} is cached process-wide in "
                            f"{base.id!r} without setflags(write=False); a "
                            f"writable cached table lets one shard corrupt "
                            f"every other")

    # ------------------------------------------------------------------
    def _check_parameter_mutation(self, func: ast.FunctionDef) -> None:
        if "inplace" in func.name.lower() or func.name.endswith("_"):
            return
        docstring = ast.get_docstring(func) or ""
        if _INPLACE_DOC_RE.search(docstring):
            return
        args = func.args
        params = [arg.arg for arg in
                  args.posonlyargs + args.args + args.kwonlyargs]
        params = [p for p in params if p not in ("self", "cls")
                  and not _OUT_PARAM_RE.match(p)]
        if not params:
            return
        param_set = set(params)
        rebinds = {}
        for stmt in _shallow(func):
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) \
                            and target.id in param_set:
                        rebinds.setdefault(target.id, stmt.lineno)

        def owned_by_caller(name: str, line: int) -> bool:
            return name in param_set and rebinds.get(name, line + 1) > line

        for stmt in _shallow(func):
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Subscript) \
                            and isinstance(target.value, ast.Name) \
                            and owned_by_caller(target.value.id, stmt.lineno):
                        self._report_mutation(stmt, func, target.value.id,
                                              "subscript store into")
            elif isinstance(stmt, ast.AugAssign):
                target = stmt.target
                if isinstance(target, ast.Name) \
                        and owned_by_caller(target.id, stmt.lineno):
                    self._report_mutation(stmt, func, target.id,
                                          "augmented assignment to")
                elif isinstance(target, ast.Subscript) \
                        and isinstance(target.value, ast.Name) \
                        and owned_by_caller(target.value.id, stmt.lineno):
                    self._report_mutation(stmt, func, target.value.id,
                                          "augmented subscript store into")
            elif isinstance(stmt, ast.Call):
                for keyword in stmt.keywords:
                    if keyword.arg == "out" \
                            and isinstance(keyword.value, ast.Name) \
                            and owned_by_caller(keyword.value.id, stmt.lineno):
                        self._report_mutation(stmt, func, keyword.value.id,
                                              "out= targeting")
                if isinstance(stmt.func, ast.Attribute) \
                        and stmt.func.attr in _MUTATING_METHODS \
                        and isinstance(stmt.func.value, ast.Name) \
                        and owned_by_caller(stmt.func.value.id, stmt.lineno):
                    self._report_mutation(stmt, func, stmt.func.value.id,
                                          f".{stmt.func.attr}() on")

    def _report_mutation(self, node: ast.AST, func: ast.FunctionDef,
                         param: str, how: str) -> None:
        self.report(self.file, node,
                    f"{func.name}() mutates caller-owned parameter "
                    f"{param!r} ({how} it) without an out=/_inplace "
                    f"contract; copy first or document the mutation in the "
                    f"docstring")
