"""PL007 — durable writes.

Files under :data:`~tools.polaris_lint.contracts.ATOMIC_WRITE_PREFIXES`
(the campaign and service layers) persist checkpoints, specs, store
objects and queue side-files that other processes — and crash recovery —
read back.  A bare ``open(..., "w")`` there can tear: a worker killed
mid-write leaves a half-file that a later reader treats as real state.
PR 10 centralised the safe pattern (temp file in the target directory,
``fsync``, ``os.replace``/``os.link``, directory ``fsync``) in
``repro.reliability.atomic``; this rule keeps new writes from bypassing
it.

Flagged inside the guarded prefixes:

* ``open``/``io.open``/``os.fdopen`` with a writing mode (``w``, ``a``,
  ``x`` or ``+``; a *non-constant* mode is flagged too — the rule cannot
  prove it read-only);
* ``Path.write_bytes`` / ``Path.write_text`` convenience writes;
* hand-rolled atomic publishes (``tempfile.mkstemp``,
  ``tempfile.NamedTemporaryFile``, ``os.replace``, ``os.rename``,
  ``os.link``) — the helpers already do this correctly, including the
  directory fsync that ad-hoc versions forget.

Read-mode ``open`` calls and everything outside the prefixes are
untouched.  Deliberate exceptions carry a justified suppression, same
contract as PL001-PL006.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from ..contracts import ATOMIC_WRITE_HELPERS, ATOMIC_WRITE_PREFIXES
from ..core import FileRule, Finding, Severity, SourceFile, register

#: Callables that open a file handle whose mode argument decides intent.
_OPENERS = frozenset({"open", "io.open", "os.fdopen"})

#: Callables that reimplement what the atomic helpers already provide.
_ATOMIC_PIECES = frozenset({
    "tempfile.mkstemp",
    "tempfile.NamedTemporaryFile",
    "tempfile.TemporaryFile",
    "os.replace",
    "os.rename",
    "os.link",
})

#: Path convenience methods that write in place (no temp, no fsync).
_WRITE_METHODS = frozenset({"write_bytes", "write_text"})


def _helper_names() -> str:
    short = " / ".join(helper.rsplit(".", 1)[-1]
                       for helper in ATOMIC_WRITE_HELPERS)
    module = ATOMIC_WRITE_HELPERS[0].rsplit(".", 1)[0]
    return f"{short} ({module})"


@register
class DurableWriteRule(FileRule):
    """Campaign/service file writes go through the atomic helpers."""

    rule_id = "PL007"
    severity = Severity.ERROR
    title = "durable writes: use the shared atomic-write helpers"

    def run(self, file: SourceFile) -> List[Finding]:
        if not file.rel_path.startswith(tuple(ATOMIC_WRITE_PREFIXES)):
            return []
        return super().run(file)

    # ------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.file.resolve_dotted(node.func)
        if dotted in _OPENERS:
            verdict = self._open_mode_verdict(node)
            if verdict is not None:
                self.report(self.file, node,
                            f"{dotted}({verdict}) writes in place and can "
                            f"tear on crash: route the write through "
                            f"{_helper_names()}")
        elif dotted is not None and self._is_atomic_piece(dotted):
            self.report(self.file, node,
                        f"{dotted} is a hand-rolled atomic publish: use "
                        f"{_helper_names()}, which already does the "
                        f"temp-file/fsync/replace dance (directory fsync "
                        f"included)")
        elif isinstance(node.func, ast.Attribute) \
                and node.func.attr in _WRITE_METHODS:
            self.report(self.file, node,
                        f".{node.func.attr}() writes in place and can tear "
                        f"on crash: route the write through "
                        f"{_helper_names()}")
        self.generic_visit(node)

    # ------------------------------------------------------------------
    @staticmethod
    def _is_atomic_piece(dotted: str) -> bool:
        return any(dotted == known or dotted.endswith("." + known)
                   for known in _ATOMIC_PIECES)

    def _open_mode_verdict(self, node: ast.Call) -> Optional[str]:
        """A description of the writing mode, or None when provably read."""
        mode: Optional[ast.expr] = None
        if len(node.args) >= 2:
            mode = node.args[1]
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
        if mode is None:
            return None  # default "r": read-only
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            if any(flag in mode.value for flag in "wax+"):
                return f"mode={mode.value!r}"
            return None
        return "mode=<dynamic>"  # cannot prove it read-only


__all__ = ["DurableWriteRule"]
