"""PL006 — float equality.

Exact ``==``/``!=`` against floats is almost always a latent bug in a
numerical codebase: results that are equal today drift apart with any
reassociation (chunking, sharding, fused kernels).  The repo's sanctioned
equality idioms are ``numpy.array_equal`` for the designated bit-identical
oracle tests and tolerance comparisons (``numpy.allclose``, pytest approx)
everywhere else.  This rule flags ``==``/``!=`` where an operand is a float
literal or a call to an obviously float-producing reduction
(``.mean()``, ``.std()``, ``.var()``, ``.dot()``, ...).  Intentional
sentinel comparisons (e.g. "is this knob still at its exact default?")
carry a justified inline suppression instead.
"""

from __future__ import annotations

import ast

from ..core import FileRule, Severity, register

#: Reductions whose results are floats derived from float arithmetic.
_FLOAT_REDUCTIONS = frozenset({"mean", "std", "var", "dot", "trace"})


def _is_float_operand(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return _is_float_operand(node.operand)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
            and node.func.attr in _FLOAT_REDUCTIONS:
        return True
    return False


@register
class FloatEqualityRule(FileRule):
    """No exact float ==/!= outside designated oracle-equality tests."""

    rule_id = "PL006"
    severity = Severity.WARNING
    title = "float equality: use tolerances or array_equal oracles"

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_float_operand(left) or _is_float_operand(right):
                sign = "==" if isinstance(op, ast.Eq) else "!="
                self.report(self.file, node,
                            f"exact float {sign} comparison; use a "
                            f"tolerance (np.allclose / math.isclose) or, "
                            f"for a bit-identity oracle check, "
                            f"np.array_equal with a justified suppression")
                break
        self.generic_visit(node)
