"""PL002 — oracle pairing.

Every fast path in this repo is pinned to a bit-identical slow oracle
(``update_batch``/``update_batch_naive``, ``power_backend="packed"`` /
``"unpacked"``, ``backend="compiled"``/``"loop"``, ...).  The registry in
:mod:`polaris_lint.contracts` names those pairs; this rule verifies that

1. both sides of each pair still exist in the module that owns them (a
   refactor must not silently drop an oracle), and
2. at least one module under ``tests/`` references the pair together (an
   oracle nobody compares against pins nothing).
"""

from __future__ import annotations

import ast
import re
from typing import Optional

from ..contracts import ORACLE_PAIRS, OraclePair
from ..core import Finding, ProjectRule, Severity, SourceFile, register


def _symbol_line(file: SourceFile, name: str) -> Optional[int]:
    """Line of a function/method definition called ``name``, or None."""
    assert file.tree is not None
    for node in ast.walk(file.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node.name == name:
            return node.lineno
    return None


def _string_line(file: SourceFile, value: str) -> Optional[int]:
    """Line of a string constant equal to ``value``, or None."""
    assert file.tree is not None
    for node in ast.walk(file.tree):
        if isinstance(node, ast.Constant) and node.value == value:
            return node.lineno
    return None


def _references_pair(text: str, pair: OraclePair) -> bool:
    """Whether one test module mentions both sides of the pair."""
    return (re.search(rf"\b{re.escape(pair.fast)}\b", text) is not None
            and re.search(rf"\b{re.escape(pair.oracle)}\b", text) is not None)


@register
class OraclePairingRule(ProjectRule):
    """Fast paths must keep their bit-identical oracles, and tests must
    exercise the pair."""

    rule_id = "PL002"
    severity = Severity.ERROR
    title = "oracle pairing: every fast path keeps a tested oracle"

    def run_project(self, project) -> list:
        self.findings = []
        for pair in ORACLE_PAIRS:
            module = project.file(pair.module)
            if module is None or module.tree is None:
                self.findings.append(Finding(
                    rule=self.rule_id, severity=self.severity,
                    path=pair.module, line=1, col=0,
                    message=f"oracle pair '{pair.pair_id}': module "
                            f"{pair.module} is missing or unparsable"))
                continue
            locate = _symbol_line if pair.kind == "symbol" else _string_line
            fast_line = locate(module, pair.fast)
            oracle_line = locate(module, pair.oracle)
            what = ("function/method" if pair.kind == "symbol"
                    else "selector string")
            if fast_line is None:
                self.findings.append(Finding(
                    rule=self.rule_id, severity=self.severity,
                    path=pair.module, line=1, col=0,
                    message=f"oracle pair '{pair.pair_id}': fast-path "
                            f"{what} {pair.fast!r} no longer exists"))
            if oracle_line is None:
                self.findings.append(Finding(
                    rule=self.rule_id, severity=self.severity,
                    path=pair.module, line=fast_line or 1, col=0,
                    message=f"oracle pair '{pair.pair_id}': oracle {what} "
                            f"{pair.oracle!r} no longer exists — fast paths "
                            f"must keep their bit-identical reference"))
            if fast_line is None or oracle_line is None:
                continue
            if not any(_references_pair(text, pair)
                       for text in project.test_texts().values()):
                self.findings.append(Finding(
                    rule=self.rule_id, severity=self.severity,
                    path=pair.module, line=fast_line, col=0,
                    message=f"oracle pair '{pair.pair_id}': no module under "
                            f"tests/ references {pair.fast!r} and "
                            f"{pair.oracle!r} together — the oracle is "
                            f"untested"))
        return self.findings
