"""polaris-lint: AST-based invariant checker for the POLARIS reproduction.

Enforces the repo's load-bearing conventions as static-analysis rules:
RNG discipline (PL001), oracle pairing (PL002), buffer safety (PL003),
pickle hygiene at the executor seam (PL004), resource lifecycle (PL005)
and float equality (PL006).  See ``docs/static-analysis.md`` for the
invariant behind each rule.

Programmatic entry points::

    from polaris_lint import lint_paths, RULES
    result = lint_paths(repo_root, ["src", "tools", "benchmarks"])
    assert result.clean, result.findings
"""

from . import rules as _rules  # noqa: F401  (registers every rule)
from .core import (
    Finding,
    LintResult,
    RULES,
    Severity,
    lint_paths,
)

__version__ = "1.0.0"

__all__ = ["Finding", "LintResult", "RULES", "Severity", "lint_paths",
           "__version__"]
