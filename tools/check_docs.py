#!/usr/bin/env python
"""Documentation checker: intra-repo links and fenced doctest examples.

Run by the CI ``docs`` job (and by ``tests/test_docs.py`` in the tier-1
suite) over ``README.md`` and ``docs/*.md``:

1. **Link check** — every relative markdown link ``[text](target)`` must
   resolve to an existing file (anchors are stripped; ``http(s)://`` and
   ``mailto:`` targets are skipped).
2. **Doctest check** — every fenced ```` ```python ```` / ```` ```pycon ````
   block that contains ``>>>`` prompts is executed with
   :mod:`doctest`; outputs must match.  Fenced blocks without prompts are
   illustrative snippets and are not executed.

Exits non-zero with a per-failure report; prints a one-line summary on
success.  Builds nothing heavy — a full run takes a couple of seconds.
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

#: Markdown inline links: [text](target).  Images ![alt](target) match too
#: (the leading "!" is irrelevant for resolution).
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Fenced code blocks with an explicit language tag.
_FENCE_RE = re.compile(r"```(\w+)\n(.*?)```", re.DOTALL)
#: Link targets that are not repo files.
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def doc_files() -> List[Path]:
    """The markdown files covered by the checker."""
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def check_links(path: Path) -> List[str]:
    """Return one error string per broken intra-repo link in ``path``."""
    errors = []
    for match in _LINK_RE.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(_EXTERNAL_PREFIXES):
            continue
        resolved, _, _anchor = target.partition("#")
        if not resolved:
            continue  # pure in-page anchor
        candidate = (path.parent / resolved).resolve()
        if not candidate.exists():
            errors.append(f"{path.relative_to(REPO_ROOT)}: broken link "
                          f"-> {target}")
    return errors


def doctest_blocks(path: Path) -> List[Tuple[int, str]]:
    """(line number, source) of every fenced doctest block in ``path``."""
    text = path.read_text()
    blocks = []
    for match in _FENCE_RE.finditer(text):
        language, body = match.group(1).lower(), match.group(2)
        if language in ("python", "pycon") and ">>>" in body:
            line = text.count("\n", 0, match.start()) + 1
            blocks.append((line, body))
    return blocks


def check_doctests(path: Path) -> List[str]:
    """Run ``path``'s fenced doctest blocks; return one error per failure."""
    errors = []
    parser = doctest.DocTestParser()
    runner = doctest.DocTestRunner(verbose=False,
                                   optionflags=doctest.ELLIPSIS)
    for line, body in doctest_blocks(path):
        name = f"{path.relative_to(REPO_ROOT)}:{line}"
        test = parser.get_doctest(body, {}, name, str(path), line)
        result = runner.run(test, clear_globs=True)
        if result.failed:
            errors.append(f"{name}: {result.failed} doctest failure(s) "
                          f"(run `python tools/check_docs.py` for details)")
    return errors


def main() -> int:
    """Check all documentation files; return a process exit code."""
    files = doc_files()
    errors: List[str] = []
    n_blocks = 0
    for path in files:
        errors.extend(check_links(path))
        n_blocks += len(doctest_blocks(path))
        errors.extend(check_doctests(path))
    if errors:
        for error in errors:
            print(f"ERROR: {error}", file=sys.stderr)
        return 1
    print(f"docs ok: {len(files)} file(s), {n_blocks} doctest block(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
