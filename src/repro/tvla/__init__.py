"""Test Vector Leakage Assessment (TVLA) engine."""

from .moments import OnePassMoments
from .welch import (
    TVLA_THRESHOLD,
    WelchResult,
    moment_order_for_tvla,
    welch_from_accumulators,
    welch_from_moments,
    welch_higher_order,
    welch_t_test,
)
from .assessment import (
    LeakageAssessment,
    SUPPORTED_TVLA_ORDERS,
    TvlaConfig,
    assess_leakage,
    campaign_schedule,
    chunk_seed_streams,
    compare_assessments,
)
from .sharding import (
    EXECUTORS,
    assess_leakage_sharded,
    assess_many,
    merge_shard_partials,
    shard_trace_ranges,
)

__all__ = [
    "OnePassMoments",
    "TVLA_THRESHOLD",
    "WelchResult",
    "moment_order_for_tvla",
    "welch_from_accumulators",
    "welch_from_moments",
    "welch_higher_order",
    "welch_t_test",
    "LeakageAssessment",
    "SUPPORTED_TVLA_ORDERS",
    "TvlaConfig",
    "assess_leakage",
    "campaign_schedule",
    "chunk_seed_streams",
    "compare_assessments",
    "EXECUTORS",
    "assess_leakage_sharded",
    "assess_many",
    "merge_shard_partials",
    "shard_trace_ranges",
]
