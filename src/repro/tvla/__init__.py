"""Test Vector Leakage Assessment (TVLA) engine."""

from .moments import OnePassMoments
from .welch import (
    TVLA_THRESHOLD,
    WelchResult,
    welch_from_accumulators,
    welch_from_moments,
    welch_t_test,
)
from .assessment import (
    LeakageAssessment,
    TvlaConfig,
    assess_leakage,
    campaign_schedule,
    compare_assessments,
)

__all__ = [
    "OnePassMoments",
    "TVLA_THRESHOLD",
    "WelchResult",
    "welch_from_accumulators",
    "welch_from_moments",
    "welch_t_test",
    "LeakageAssessment",
    "TvlaConfig",
    "assess_leakage",
    "campaign_schedule",
    "compare_assessments",
]
