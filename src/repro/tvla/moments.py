"""One-pass (incremental) raw and central moment computation.

The paper (§II-A, citing Schneider & Moradi) notes that naive TVLA is slow
because mean and variance require two passes over the traces; the remedy is
an online accumulator that updates the raw moment ``M1`` and central sums as
each trace ``y`` arrives::

    M1' = M1 + delta / n,      delta = y - M1
    mu  = M1,                  s^2 = CM2 = M2 - M1^2

This module implements that accumulator up to fourth-order central moments
(Welford / Pébay update formulas), vectorised so one accumulator tracks all
gates of a design simultaneously.  Higher-order moments enable the
higher-order TVLA variants discussed by Schneider & Moradi.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

ArrayLike = Union[float, np.ndarray]


class OnePassMoments:
    """Streaming estimator of mean, variance, skewness and kurtosis.

    The accumulator accepts scalar samples or vectors of samples (one entry
    per gate / trace point); all entries are updated in parallel in a single
    pass, matching the acquisition-time computation advocated by the paper.

    Args:
        max_order: Highest central-moment order to track (2, 3 or 4).
        shape: Shape of each incoming sample (``()`` for scalars).
    """

    def __init__(self, max_order: int = 2, shape: Tuple[int, ...] = ()) -> None:
        if max_order not in (2, 3, 4):
            raise ValueError("max_order must be 2, 3 or 4")
        self.max_order = max_order
        self.shape = tuple(shape)
        self.count = 0
        self._mean = np.zeros(self.shape, dtype=float)
        self._m2 = np.zeros(self.shape, dtype=float)
        self._m3 = np.zeros(self.shape, dtype=float)
        self._m4 = np.zeros(self.shape, dtype=float)

    # ------------------------------------------------------------------
    def update(self, sample: ArrayLike) -> None:
        """Fold one sample (scalar or array of ``shape``) into the moments."""
        sample = np.asarray(sample, dtype=float)
        if sample.shape != self.shape:
            raise ValueError(
                f"sample shape {sample.shape} does not match accumulator "
                f"shape {self.shape}"
            )
        n1 = self.count
        self.count += 1
        n = self.count
        delta = sample - self._mean
        delta_n = delta / n
        delta_n2 = delta_n * delta_n
        term1 = delta * delta_n * n1
        self._mean = self._mean + delta_n
        if self.max_order >= 4:
            self._m4 = (self._m4
                        + term1 * delta_n2 * (n * n - 3 * n + 3)
                        + 6.0 * delta_n2 * self._m2
                        - 4.0 * delta_n * self._m3)
        if self.max_order >= 3:
            self._m3 = (self._m3
                        + term1 * delta_n * (n - 2)
                        - 3.0 * delta_n * self._m2)
        self._m2 = self._m2 + term1

    def update_batch(self, samples: np.ndarray) -> None:
        """Fold a batch of samples (first axis indexes the samples).

        The batch's mean and central sums are computed with vectorised
        matrix reductions and merged into the running state with the exact
        pairwise (Chan et al. / Pébay) formulas — one accumulator update per
        batch instead of one Python-level Welford step per sample, which is
        what makes chunked streaming TVLA practical at paper scale.
        """
        samples = np.asarray(samples, dtype=float)
        if samples.ndim < 1 or samples.shape[1:] != self.shape:
            raise ValueError(
                f"batch shape {samples.shape} does not match accumulator "
                f"shape (n, *{self.shape})"
            )
        n_b = samples.shape[0]
        if n_b == 0:
            return
        mean_b = samples.mean(axis=0)
        delta = samples - mean_b
        sq = delta * delta
        m2_b = sq.sum(axis=0)
        if self.max_order >= 3:
            cube = sq * delta
            m3_b = cube.sum(axis=0)
        else:
            m3_b = np.zeros(self.shape, dtype=float)
        if self.max_order >= 4:
            m4_b = (sq * sq).sum(axis=0)
        else:
            m4_b = np.zeros(self.shape, dtype=float)
        self._combine(n_b, mean_b, m2_b, m3_b, m4_b)

    def _combine(self, n_b: int, mean_b: np.ndarray, m2_b: np.ndarray,
                 m3_b: np.ndarray, m4_b: np.ndarray) -> None:
        """Merge a partial stream's (count, mean, central sums) in place."""
        n_a = self.count
        n = n_a + n_b
        if n_b == 0:
            return
        if n_a == 0:
            self.count = n_b
            self._mean = np.array(mean_b, dtype=float)
            self._m2 = np.array(m2_b, dtype=float)
            self._m3 = np.array(m3_b, dtype=float)
            self._m4 = np.array(m4_b, dtype=float)
            return
        delta = mean_b - self._mean
        if self.max_order >= 4:
            self._m4 = (self._m4 + m4_b
                        + delta ** 4 * n_a * n_b
                        * (n_a ** 2 - n_a * n_b + n_b ** 2) / n ** 3
                        + 6.0 * delta ** 2 * (n_a ** 2 * m2_b
                                              + n_b ** 2 * self._m2) / n ** 2
                        + 4.0 * delta * (n_a * m3_b - n_b * self._m3) / n)
        if self.max_order >= 3:
            self._m3 = (self._m3 + m3_b
                        + delta ** 3 * n_a * n_b * (n_a - n_b) / n ** 2
                        + 3.0 * delta * (n_a * m2_b - n_b * self._m2) / n)
        self._m2 = self._m2 + m2_b + delta ** 2 * n_a * n_b / n
        self._mean = self._mean + delta * (n_b / n)
        self.count = n

    # ------------------------------------------------------------------
    @property
    def mean(self) -> np.ndarray:
        """First raw moment (sample mean)."""
        return self._mean.copy()

    def central_moment(self, order: int) -> np.ndarray:
        """Biased central moment ``CM_order`` (central sum / n)."""
        if self.count == 0:
            return np.zeros(self.shape, dtype=float)
        if order == 1:
            return np.zeros(self.shape, dtype=float)
        if order == 2:
            return self._m2 / self.count
        if order == 3 and self.max_order >= 3:
            return self._m3 / self.count
        if order == 4 and self.max_order >= 4:
            return self._m4 / self.count
        raise ValueError(f"order {order} not tracked (max {self.max_order})")

    @property
    def variance(self) -> np.ndarray:
        """Unbiased sample variance (``n - 1`` denominator)."""
        if self.count < 2:
            return np.zeros(self.shape, dtype=float)
        return self._m2 / (self.count - 1)

    @property
    def standard_deviation(self) -> np.ndarray:
        """Unbiased sample standard deviation."""
        return np.sqrt(self.variance)

    def skewness(self) -> np.ndarray:
        """Standardised third central moment (0 where variance is 0)."""
        if self.max_order < 3:
            raise ValueError("accumulator was not configured for order 3")
        cm2 = self.central_moment(2)
        cm3 = self.central_moment(3)
        with np.errstate(divide="ignore", invalid="ignore"):
            result = np.where(cm2 > 0, cm3 / np.power(np.maximum(cm2, 1e-300), 1.5),
                              0.0)
        return result

    def kurtosis(self) -> np.ndarray:
        """Standardised fourth central moment (0 where variance is 0)."""
        if self.max_order < 4:
            raise ValueError("accumulator was not configured for order 4")
        cm2 = self.central_moment(2)
        cm4 = self.central_moment(4)
        with np.errstate(divide="ignore", invalid="ignore"):
            result = np.where(cm2 > 0, cm4 / np.power(np.maximum(cm2, 1e-300), 2.0),
                              0.0)
        return result

    def merge(self, other: "OnePassMoments") -> "OnePassMoments":
        """Return an accumulator equivalent to having seen both streams.

        Mean and second/third/fourth central sums are combined with the exact
        pairwise (Chan et al. / Pébay) formulas, so merging partial TVLA
        acquisitions is lossless.
        """
        if self.shape != other.shape or self.max_order != other.max_order:
            raise ValueError("cannot merge accumulators with different config")
        merged = OnePassMoments(self.max_order, self.shape)
        merged.count = self.count
        merged._mean = self._mean.copy()
        merged._m2 = self._m2.copy()
        merged._m3 = self._m3.copy()
        merged._m4 = self._m4.copy()
        merged._combine(other.count, other._mean, other._m2, other._m3,
                        other._m4)
        return merged
