"""One-pass (incremental) raw and central moment computation.

The paper (§II-A, citing Schneider & Moradi) notes that naive TVLA is slow
because mean and variance require two passes over the traces; the remedy is
an online accumulator that updates the raw moment ``M1`` and central sums as
each trace ``y`` arrives::

    M1' = M1 + delta / n,      delta = y - M1
    mu  = M1,                  s^2 = CM2 = M2 - M1^2

This module implements that accumulator for central moments of *arbitrary*
order (the general pairwise-update formulas of Pébay, which reduce to the
classic Welford/Chan updates at orders 2-4), vectorised so one accumulator
tracks all gates of a design simultaneously.  Higher-order moments enable
the higher-order TVLA variants discussed by Schneider & Moradi: the order-d
standardised t-test needs central sums up to order ``2 * d``, so order-2
(variance) TVLA tracks up to ``M4`` and order-3 (skewness) TVLA up to
``M6``.  Accumulators also merge losslessly (:meth:`OnePassMoments.merge`),
which is what lets sharded campaigns combine partial acquisitions.
"""

from __future__ import annotations

import json
import struct
from math import comb
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[float, np.ndarray]

#: Magic + version prefix of the :meth:`OnePassMoments.to_bytes` wire format.
_WIRE_MAGIC = b"OPM1"
#: On-the-wire array dtype: explicit little-endian float64, so blobs written
#: on any host deserialise bit-identically everywhere.
_WIRE_DTYPE = "<f8"


class OnePassMoments:
    """Streaming estimator of mean, variance, skewness and kurtosis.

    The accumulator accepts scalar samples or vectors of samples (one entry
    per gate / trace point); all entries are updated in parallel in a single
    pass, matching the acquisition-time computation advocated by the paper.

    Args:
        max_order: Highest central-moment order to track (any integer >= 2;
            order-d standardised TVLA needs ``2 * d``).
        shape: Shape of each incoming sample (``()`` for scalars).
    """

    def __init__(self, max_order: int = 2, shape: Tuple[int, ...] = ()) -> None:
        if not isinstance(max_order, (int, np.integer)) or max_order < 2:
            raise ValueError("max_order must be an integer >= 2")
        self.max_order = int(max_order)
        self.shape = tuple(shape)
        self.count = 0
        self._mean = np.zeros(self.shape, dtype=float)
        #: Central sums M_p = sum((y - mean)^p); index p - 2 holds order p.
        self._sums: List[np.ndarray] = [
            np.zeros(self.shape, dtype=float)
            for _ in range(2, self.max_order + 1)
        ]
        #: Reusable batch work buffers (delta, Horner power chain); see
        #: :meth:`_scratch_like`.  Never serialised.
        self._batch_scratch: List[Optional[np.ndarray]] = [None, None]

    def __getstate__(self) -> dict:
        # Scratch buffers are multi-megabyte per-chunk workspaces; pickling
        # them would bloat every queue message and shard checkpoint that
        # ships an accumulator, so they are dropped and lazily rebuilt.
        state = self.__dict__.copy()
        state["_batch_scratch"] = [None, None]
        return state

    # ------------------------------------------------------------------
    def update(self, sample: ArrayLike) -> None:
        """Fold one sample (scalar or array of ``shape``) into the moments."""
        sample = np.asarray(sample, dtype=float)
        if sample.shape != self.shape:
            raise ValueError(
                f"sample shape {sample.shape} does not match accumulator "
                f"shape {self.shape}"
            )
        # A single sample is a degenerate batch: every central sum is zero,
        # so the pairwise combine reduces to the classic Welford update.
        zeros = [np.zeros(self.shape, dtype=float) for _ in self._sums]
        self._combine(1, sample, zeros)

    def update_batch(self, samples: np.ndarray) -> None:
        """Fold a batch of samples (first axis indexes the samples).

        The batch's mean and central sums are computed with vectorised
        matrix reductions and merged into the running state with the exact
        pairwise (Chan et al. / Pébay) formulas — one accumulator update per
        batch instead of one Python-level Welford step per sample, which is
        what makes chunked streaming TVLA practical at paper scale.

        The power chain is **fused**: instead of materialising a float64
        conversion copy, a ``delta`` array and one fresh ``delta**k`` array
        per order, the conversion lands in a reusable scratch buffer, the
        deltas are subtracted in place, and every higher order is one
        in-place Horner-style multiply into a second scratch that is
        reused across chunks.  An order-6 accumulator (order-3 TVLA)
        therefore runs zero steady-state allocations where the naive chain
        made seven per chunk.  The arithmetic — operand order, dtype,
        layout, summation association — is unchanged, so results are
        **bit-identical** to :meth:`update_batch_naive` (the pre-fusion
        reference, pinned by ``tests/test_packed_power.py``).

        Accumulators configured for ``max_order == 2`` (first-order TVLA
        campaigns) never build odd-order central sums: the batch reduction
        stops at the squared deviations and the merge dispatches to the
        specialised :meth:`_combine_order2` Chan update.
        """
        samples = np.asarray(samples)
        if samples.ndim < 1 or samples.shape[1:] != self.shape:
            raise ValueError(
                f"batch shape {samples.shape} does not match accumulator "
                f"shape (n, *{self.shape})"
            )
        n_b = samples.shape[0]
        if n_b == 0:
            return
        # Reductions in numpy associate differently per memory layout, and
        # the naive path's temporaries inherit the input's layout (asarray
        # copies in K-order, ufunc outputs follow their operands).  The
        # scratch buffers must therefore match that layout exactly; exotic
        # strided inputs (neither C- nor F-contiguous) fall back to the
        # naive allocation pattern, which is bit-identical by construction.
        if samples.ndim > 1 and samples.flags.f_contiguous \
                and not samples.flags.c_contiguous:
            order = "F"
        elif samples.flags.c_contiguous:
            order = "C"
        else:
            order = None
        if samples.dtype != np.float64:
            if order is None:
                samples = np.asarray(samples, dtype=np.float64)
                delta = samples  # fresh copy: subtract in place below
            else:
                converted = self._scratch_like(samples.shape, order, slot=0)
                converted[...] = samples
                samples = converted
                delta = samples  # owned: subtract in place below
        else:
            # Caller's float64 array: reduce on it directly (exactly what
            # the naive path does) and never mutate it.
            delta = (self._scratch_like(samples.shape, order, slot=0)
                     if order is not None else None)
        mean_b = samples.mean(axis=0)
        delta = np.subtract(samples, mean_b, out=delta)
        if self.max_order == 2:
            # Order-2 needs no preserved delta: square it in place.
            np.multiply(delta, delta, out=delta)
            self._combine(n_b, mean_b, [delta.sum(axis=0)])
            return
        power = (self._scratch_like(samples.shape, order, slot=1)
                 if order is not None else None)
        power = np.multiply(delta, delta, out=power)
        sums_b = [power.sum(axis=0)]
        for _ in range(3, self.max_order + 1):
            np.multiply(power, delta, out=power)
            sums_b.append(power.sum(axis=0))
        self._combine(n_b, mean_b, sums_b)

    def update_batch_naive(self, samples: np.ndarray) -> None:
        """Pre-fusion reference implementation of :meth:`update_batch`.

        Converts to float64 up front and materialises the full
        ``delta**k`` power chain, exactly as the engine did before the
        fused update.  Kept as the bit-identical oracle for the property
        tests and the ``microbench_moment_update`` comparison; production
        paths call :meth:`update_batch`.
        """
        samples = np.asarray(samples, dtype=float)
        if samples.ndim < 1 or samples.shape[1:] != self.shape:
            raise ValueError(
                f"batch shape {samples.shape} does not match accumulator "
                f"shape (n, *{self.shape})"
            )
        n_b = samples.shape[0]
        if n_b == 0:
            return
        mean_b = samples.mean(axis=0)
        delta = samples - mean_b
        power = delta * delta
        sums_b = [power.sum(axis=0)]
        for _ in range(3, self.max_order + 1):
            power = power * delta
            sums_b.append(power.sum(axis=0))
        self._combine(n_b, mean_b, sums_b)

    def _scratch_like(self, shape: Tuple[int, ...], order: str,
                      slot: int) -> np.ndarray:
        """A reusable float64 scratch buffer of ``shape`` and ``order``.

        One accumulator folds same-sized chunks back to back, so caching
        the two batch work buffers (delta and the Horner power chain)
        eliminates the per-chunk multi-megabyte allocations — and their
        page-fault cost — from the streaming hot path.  Buffers are
        private to this accumulator: sharded workers each own their
        accumulators, so no cross-thread aliasing is possible.
        """
        cached = self._batch_scratch[slot]
        contiguous = "F_CONTIGUOUS" if order == "F" else "C_CONTIGUOUS"
        if cached is None or cached.shape != shape \
                or not cached.flags[contiguous]:
            cached = np.empty(shape, dtype=np.float64, order=order)
            self._batch_scratch[slot] = cached
        return cached

    def _combine(self, n_b: int, mean_b: np.ndarray,
                 sums_b: Sequence[np.ndarray]) -> None:
        """Merge a partial stream's (count, mean, central sums) in place.

        Implements Pébay's arbitrary-order pairwise formula::

            M_p = M_p^A + M_p^B
                  + sum_{k=1}^{p-2} C(p,k) [ (-n_B d/n)^k M_{p-k}^A
                                             + (n_A d/n)^k M_{p-k}^B ]
                  + (n_A n_B d / n)^p [ 1/n_B^{p-1} - (-1/n_A)^{p-1} ]

        with ``d = mean_B - mean_A``; at p = 2, 3, 4 this reduces to the
        familiar Chan et al. merge used by streaming variance computations.
        """
        n_a = self.count
        if n_b == 0:
            return
        n = n_a + n_b
        if n_a == 0:
            self.count = n_b
            self._mean = np.array(mean_b, dtype=float)
            self._sums = [np.array(s, dtype=float) for s in sums_b]
            return
        if self.max_order == 2:
            # Specialised order-2 path (the order-1 TVLA hot path, and the
            # bulk of every cognition campaign): no odd-order central sums
            # exist, so the general Pébay machinery (per-order list builds,
            # binomial coefficients, power chains) collapses to the classic
            # Chan et al. variance merge.  The arithmetic mirrors
            # :meth:`_combine_general` at p = 2 operation for operation, so
            # both paths are bit-identical (pinned by
            # tests/test_campaign.py).
            self._combine_order2(n_a, n_b, n, mean_b, sums_b[0])
            return
        self._combine_general(n_a, n_b, n, mean_b, sums_b)

    def _combine_general(self, n_a: int, n_b: int, n: int,
                         mean_b: np.ndarray,
                         sums_b: Sequence[np.ndarray]) -> None:
        """Arbitrary-order Pébay merge (the general path of :meth:`_combine`)."""
        delta = mean_b - self._mean
        sums_a = self._sums
        step_a = -n_b * delta / n
        step_b = n_a * delta / n
        cross = n_a * n_b * delta / n
        new_sums: List[np.ndarray] = []
        for p in range(2, self.max_order + 1):
            index = p - 2
            value = sums_a[index] + sums_b[index]
            for k in range(1, p - 1):
                lower = p - k - 2  # index of M_{p-k}; p - k >= 2 here
                value = value + comb(p, k) * (step_a ** k * sums_a[lower]
                                              + step_b ** k * sums_b[lower])
            value = value + cross ** p * (1.0 / n_b ** (p - 1)
                                          - (-1.0 / n_a) ** (p - 1))
            new_sums.append(value)
        self._sums = new_sums
        self._mean = self._mean + delta * (n_b / n)
        self.count = n

    def _combine_order2(self, n_a: int, n_b: int, n: int,
                        mean_b: np.ndarray, m2_b: np.ndarray) -> None:
        """Order-2-only merge: the Chan et al. update, nothing else.

        Closes the ROADMAP follow-up on skipping odd-order central sums:
        the *exact* pairwise merge of an order-``p`` central sum needs the
        order-``p - 1`` (odd) sums of both parts, so accumulators tracking
        order 4 or 6 cannot soundly drop their odd orders — but the
        campaigns that only need order 2 (first-order TVLA, i.e. the
        default everywhere) never allocate or touch them at all on this
        path.  Expressions match the general loop at ``p = 2`` exactly
        (``cross ** 2 * (1/n_b - (-1/n_a))``) so results are bit-identical.
        """
        delta = mean_b - self._mean
        cross = n_a * n_b * delta / n
        self._sums[0] = (self._sums[0] + m2_b
                         + cross ** 2 * (1.0 / n_b - (-1.0 / n_a)))
        self._mean = self._mean + delta * (n_b / n)
        self.count = n

    # ------------------------------------------------------------------
    @property
    def mean(self) -> np.ndarray:
        """First raw moment (sample mean)."""
        return self._mean.copy()

    def central_moment(self, order: int) -> np.ndarray:
        """Biased central moment ``CM_order`` (central sum / n)."""
        if order != 1 and not 2 <= order <= self.max_order:
            raise ValueError(f"order {order} not tracked (max {self.max_order})")
        if self.count == 0 or order == 1:
            return np.zeros(self.shape, dtype=float)
        return self._sums[order - 2] / self.count

    @property
    def variance(self) -> np.ndarray:
        """Unbiased sample variance (``n - 1`` denominator)."""
        if self.count < 2:
            return np.zeros(self.shape, dtype=float)
        return self._sums[0] / (self.count - 1)

    @property
    def standard_deviation(self) -> np.ndarray:
        """Unbiased sample standard deviation."""
        return np.sqrt(self.variance)

    def skewness(self) -> np.ndarray:
        """Standardised third central moment (0 where variance is 0)."""
        if self.max_order < 3:
            raise ValueError("accumulator was not configured for order 3")
        cm2 = self.central_moment(2)
        cm3 = self.central_moment(3)
        with np.errstate(divide="ignore", invalid="ignore"):
            result = np.where(cm2 > 0, cm3 / np.power(np.maximum(cm2, 1e-300), 1.5),
                              0.0)
        return result

    def kurtosis(self) -> np.ndarray:
        """Standardised fourth central moment (0 where variance is 0)."""
        if self.max_order < 4:
            raise ValueError("accumulator was not configured for order 4")
        cm2 = self.central_moment(2)
        cm4 = self.central_moment(4)
        with np.errstate(divide="ignore", invalid="ignore"):
            result = np.where(cm2 > 0, cm4 / np.power(np.maximum(cm2, 1e-300), 2.0),
                              0.0)
        return result

    def merge(self, other: "OnePassMoments") -> "OnePassMoments":
        """Return an accumulator equivalent to having seen both streams.

        Mean and all tracked central sums are combined with the exact
        pairwise (Chan et al. / Pébay) formulas, so merging partial TVLA
        acquisitions — e.g. the per-shard accumulators of
        :mod:`repro.tvla.sharding` — is lossless.
        """
        if self.shape != other.shape or self.max_order != other.max_order:
            raise ValueError("cannot merge accumulators with different config")
        merged = OnePassMoments(self.max_order, self.shape)
        merged.count = self.count
        merged._mean = self._mean.copy()
        merged._sums = [s.copy() for s in self._sums]
        merged._combine(other.count, other._mean, other._sums)
        return merged

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialise the accumulator to a compact, lossless byte string.

        The format is ``b"OPM1"`` + a length-prefixed JSON header
        ``{max_order, shape, count}`` + the mean and every central sum as
        raw little-endian float64 buffers.  Raw buffers (not decimal text)
        make the round-trip bit-identical, which is what lets
        :mod:`repro.campaign` checkpoint shard partials to disk, ship them
        between worker processes and still merge them losslessly.
        """
        header = json.dumps({
            "max_order": self.max_order,
            "shape": list(self.shape),
            "count": self.count,
        }).encode("ascii")
        chunks = [_WIRE_MAGIC, struct.pack("<I", len(header)), header,
                  np.ascontiguousarray(self._mean, dtype=_WIRE_DTYPE).tobytes()]
        chunks.extend(np.ascontiguousarray(s, dtype=_WIRE_DTYPE).tobytes()
                      for s in self._sums)
        return b"".join(chunks)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "OnePassMoments":
        """Rebuild an accumulator serialised by :meth:`to_bytes`.

        Raises:
            ValueError: for truncated, corrupt or foreign payloads.
        """
        if len(payload) < len(_WIRE_MAGIC) + 4 or \
                not payload.startswith(_WIRE_MAGIC):
            raise ValueError("not an OnePassMoments payload")
        offset = len(_WIRE_MAGIC)
        (header_len,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        try:
            header = json.loads(payload[offset:offset + header_len])
            max_order = header["max_order"]
            shape = tuple(header["shape"])
            count = header["count"]
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise ValueError(f"corrupt OnePassMoments header: {exc}") from exc
        offset += header_len
        acc = cls(max_order=max_order, shape=shape)
        n_arrays = 1 + len(acc._sums)
        n_values = int(np.prod(shape, dtype=np.int64)) if shape else 1
        expected = offset + n_arrays * n_values * 8
        if len(payload) != expected:
            raise ValueError(
                f"truncated OnePassMoments payload: expected {expected} "
                f"bytes, got {len(payload)}")

        def read_array() -> np.ndarray:
            nonlocal offset
            flat = np.frombuffer(payload, dtype=_WIRE_DTYPE, count=n_values,
                                 offset=offset)
            offset += n_values * 8
            # Copy out of the read-only buffer view and drop the explicit
            # byte order: in-memory accumulators use the native dtype.
            return flat.astype(float, copy=True).reshape(shape)

        acc.count = int(count)
        acc._mean = read_array()
        acc._sums = [read_array() for _ in acc._sums]
        return acc
