"""Welch's t-test as used by Test Vector Leakage Assessment (TVLA).

Implements Eq. (1) of the paper: for two trace groups ``Q0`` and ``Q1`` with
sample means ``mu0``/``mu1``, sample variances ``s0^2``/``s1^2`` and
cardinalities ``n0``/``n1``::

    t = (mu0 - mu1) / sqrt(s0^2/n0 + s1^2/n1)

    v = (s0^2/n0 + s1^2/n1)^2 /
        ( (s0^2/n0)^2/(n0-1) + (s1^2/n1)^2/(n1-1) )

A design point is regarded as leaking when ``|t| > 4.5`` (with ``v > 1000``
this corresponds to a p-value below 1e-5, i.e. > 99.999 % confidence against
the null hypothesis of equal means).  All functions are vectorised: the
inputs may be matrices whose columns are different gates/sample points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np
from scipy import stats

from .moments import OnePassMoments

#: TVLA distinguishability threshold on |t| (paper §II-A).
TVLA_THRESHOLD = 4.5


@dataclass(frozen=True)
class WelchResult:
    """Result of a (vectorised) Welch's t-test.

    Attributes:
        t_statistic: t value(s); same shape as the input columns.
        degrees_of_freedom: Welch–Satterthwaite degrees of freedom.
        p_value: Two-sided p-value(s) from the t distribution.
    """

    t_statistic: np.ndarray
    degrees_of_freedom: np.ndarray
    p_value: np.ndarray

    def exceeds_threshold(self, threshold: float = TVLA_THRESHOLD) -> np.ndarray:
        """Boolean mask of points whose ``|t|`` exceeds ``threshold``."""
        return np.abs(self.t_statistic) > threshold


def _column_stats(samples: np.ndarray) -> Tuple[np.ndarray, np.ndarray, int]:
    samples = np.asarray(samples, dtype=float)
    if samples.ndim == 1:
        samples = samples[:, np.newaxis]
    if samples.shape[0] < 2:
        raise ValueError("each group needs at least 2 traces")
    mean = samples.mean(axis=0)
    variance = samples.var(axis=0, ddof=1)
    return mean, variance, samples.shape[0]


def welch_t_test(group0: np.ndarray, group1: np.ndarray) -> WelchResult:
    """Run Welch's t-test column-wise on two trace matrices.

    Args:
        group0: Traces of the first group, shape ``(n0,)`` or ``(n0, k)``.
        group1: Traces of the second group, shape ``(n1,)`` or ``(n1, k)``.

    Returns:
        A :class:`WelchResult` with per-column statistics.  When both inputs
        are 1-D the result fields are scalars (0-d arrays).
    """
    scalar_inputs = (np.asarray(group0).ndim == 1 and np.asarray(group1).ndim == 1)
    mean0, var0, n0 = _column_stats(group0)
    mean1, var1, n1 = _column_stats(group1)
    result = welch_from_moments(mean0, var0, n0, mean1, var1, n1)
    if scalar_inputs:
        result = WelchResult(
            t_statistic=result.t_statistic.reshape(()),
            degrees_of_freedom=result.degrees_of_freedom.reshape(()),
            p_value=np.asarray(result.p_value).reshape(()),
        )
    return result


def welch_from_moments(
    mean0: Union[float, np.ndarray],
    var0: Union[float, np.ndarray],
    n0: int,
    mean1: Union[float, np.ndarray],
    var1: Union[float, np.ndarray],
    n1: int,
) -> WelchResult:
    """Welch's t-test from pre-computed means/variances (one-pass pipeline).

    This is the entry point used with :class:`OnePassMoments`, matching the
    acquisition-time moment computation of Schneider & Moradi.
    """
    mean0 = np.asarray(mean0, dtype=float)
    mean1 = np.asarray(mean1, dtype=float)
    var0 = np.asarray(var0, dtype=float)
    var1 = np.asarray(var1, dtype=float)
    if n0 < 2 or n1 < 2:
        raise ValueError("both groups need at least 2 traces")

    se0 = var0 / n0
    se1 = var1 / n1
    denominator = np.sqrt(se0 + se1)
    with np.errstate(divide="ignore", invalid="ignore"):
        t_statistic = np.where(denominator > 0,
                               (mean0 - mean1) / np.maximum(denominator, 1e-300),
                               0.0)
        dof_numerator = (se0 + se1) ** 2
        dof_denominator = (se0 ** 2) / (n0 - 1) + (se1 ** 2) / (n1 - 1)
        degrees = np.where(dof_denominator > 0,
                           dof_numerator / np.maximum(dof_denominator, 1e-300),
                           float(n0 + n1 - 2))
    p_value = 2.0 * stats.t.sf(np.abs(t_statistic), np.maximum(degrees, 1.0))
    return WelchResult(np.asarray(t_statistic, dtype=float),
                       np.asarray(degrees, dtype=float),
                       np.asarray(p_value, dtype=float))


def welch_from_accumulators(acc0: OnePassMoments,
                            acc1: OnePassMoments) -> WelchResult:
    """Welch's t-test from two :class:`OnePassMoments` accumulators."""
    if acc0.count < 2 or acc1.count < 2:
        raise ValueError("both accumulators need at least 2 samples")
    return welch_from_moments(acc0.mean, acc0.variance, acc0.count,
                              acc1.mean, acc1.variance, acc1.count)
