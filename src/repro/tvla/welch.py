"""Welch's t-test as used by Test Vector Leakage Assessment (TVLA).

Implements Eq. (1) of the paper: for two trace groups ``Q0`` and ``Q1`` with
sample means ``mu0``/``mu1``, sample variances ``s0^2``/``s1^2`` and
cardinalities ``n0``/``n1``::

    t = (mu0 - mu1) / sqrt(s0^2/n0 + s1^2/n1)

    v = (s0^2/n0 + s1^2/n1)^2 /
        ( (s0^2/n0)^2/(n0-1) + (s1^2/n1)^2/(n1-1) )

A design point is regarded as leaking when ``|t| > 4.5`` (with ``v > 1000``
this corresponds to a p-value below 1e-5, i.e. > 99.999 % confidence against
the null hypothesis of equal means).  All functions are vectorised: the
inputs may be matrices whose columns are different gates/sample points.

Higher-order TVLA (Schneider & Moradi) preprocesses each trace before the
t-test: order 2 compares the *centered squares* ``(y - mu)^2`` (i.e. the
variances) of the two groups, order 3 the *standardised cubes*
``((y - mu) / sigma)^3`` (the skewnesses).  Masked implementations that pass
first-order TVLA are evaluated against exactly these tests.  Because the
mean and variance of the preprocessed traces are polynomial in the central
moments of the raw traces, :func:`welch_higher_order` computes them directly
from :class:`OnePassMoments` accumulators — no second pass over the traces,
and sharded partial accumulators work unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np
from scipy import stats

from .moments import OnePassMoments

#: TVLA distinguishability threshold on |t| (paper §II-A).
TVLA_THRESHOLD = 4.5


@dataclass(frozen=True)
class WelchResult:
    """Result of a (vectorised) Welch's t-test.

    Attributes:
        t_statistic: t value(s); same shape as the input columns.
        degrees_of_freedom: Welch–Satterthwaite degrees of freedom.
        p_value: Two-sided p-value(s) from the t distribution.
    """

    t_statistic: np.ndarray
    degrees_of_freedom: np.ndarray
    p_value: np.ndarray

    def exceeds_threshold(self, threshold: float = TVLA_THRESHOLD) -> np.ndarray:
        """Boolean mask of points whose ``|t|`` exceeds ``threshold``."""
        return np.abs(self.t_statistic) > threshold


def _column_stats(samples: np.ndarray) -> Tuple[np.ndarray, np.ndarray, int]:
    samples = np.asarray(samples, dtype=float)
    if samples.ndim == 1:
        samples = samples[:, np.newaxis]
    if samples.shape[0] < 2:
        raise ValueError("each group needs at least 2 traces")
    mean = samples.mean(axis=0)
    variance = samples.var(axis=0, ddof=1)
    return mean, variance, samples.shape[0]


def welch_t_test(group0: np.ndarray, group1: np.ndarray) -> WelchResult:
    """Run Welch's t-test column-wise on two trace matrices.

    Args:
        group0: Traces of the first group, shape ``(n0,)`` or ``(n0, k)``.
        group1: Traces of the second group, shape ``(n1,)`` or ``(n1, k)``.

    Returns:
        A :class:`WelchResult` with per-column statistics.  When both inputs
        are 1-D the result fields are scalars (0-d arrays).
    """
    scalar_inputs = (np.asarray(group0).ndim == 1 and np.asarray(group1).ndim == 1)
    mean0, var0, n0 = _column_stats(group0)
    mean1, var1, n1 = _column_stats(group1)
    result = welch_from_moments(mean0, var0, n0, mean1, var1, n1)
    if scalar_inputs:
        result = WelchResult(
            t_statistic=result.t_statistic.reshape(()),
            degrees_of_freedom=result.degrees_of_freedom.reshape(()),
            p_value=np.asarray(result.p_value).reshape(()),
        )
    return result


def welch_from_moments(
    mean0: Union[float, np.ndarray],
    var0: Union[float, np.ndarray],
    n0: int,
    mean1: Union[float, np.ndarray],
    var1: Union[float, np.ndarray],
    n1: int,
) -> WelchResult:
    """Welch's t-test from pre-computed means/variances (one-pass pipeline).

    This is the entry point used with :class:`OnePassMoments`, matching the
    acquisition-time moment computation of Schneider & Moradi.
    """
    mean0 = np.asarray(mean0, dtype=float)
    mean1 = np.asarray(mean1, dtype=float)
    var0 = np.asarray(var0, dtype=float)
    var1 = np.asarray(var1, dtype=float)
    if n0 < 2 or n1 < 2:
        raise ValueError("both groups need at least 2 traces")

    se0 = var0 / n0
    se1 = var1 / n1
    denominator = np.sqrt(se0 + se1)
    with np.errstate(divide="ignore", invalid="ignore"):
        t_statistic = np.where(denominator > 0,
                               (mean0 - mean1) / np.maximum(denominator, 1e-300),
                               0.0)
        dof_numerator = (se0 + se1) ** 2
        dof_denominator = (se0 ** 2) / (n0 - 1) + (se1 ** 2) / (n1 - 1)
        degrees = np.where(dof_denominator > 0,
                           dof_numerator / np.maximum(dof_denominator, 1e-300),
                           float(n0 + n1 - 2))
    p_value = 2.0 * stats.t.sf(np.abs(t_statistic), np.maximum(degrees, 1.0))
    return WelchResult(np.asarray(t_statistic, dtype=float),
                       np.asarray(degrees, dtype=float),
                       np.asarray(p_value, dtype=float))


def welch_from_accumulators(acc0: OnePassMoments,
                            acc1: OnePassMoments) -> WelchResult:
    """Welch's t-test from two :class:`OnePassMoments` accumulators."""
    if acc0.count < 2 or acc1.count < 2:
        raise ValueError("both accumulators need at least 2 samples")
    return welch_from_moments(acc0.mean, acc0.variance, acc0.count,
                              acc1.mean, acc1.variance, acc1.count)


def moment_order_for_tvla(order: int) -> int:
    """Accumulator ``max_order`` needed for an order-``order`` t-test.

    The order-d preprocessed trace has mean and variance polynomial in the
    raw central moments up to order ``2 * d`` (order 1 only needs the
    variance, i.e. order 2).
    """
    if not isinstance(order, (int, np.integer)) or order < 1:
        raise ValueError("TVLA order must be an integer >= 1")
    return 2 if order == 1 else 2 * int(order)


def _preprocessed_moments(acc: OnePassMoments,
                          order: int) -> Tuple[np.ndarray, np.ndarray]:
    """Sample mean and unbiased variance of the order-d preprocessed traces.

    For ``Z = (y - mu)^2`` (order 2): ``E[Z] = CM2`` and
    ``Var[Z] = CM4 - CM2^2``; for ``Z = ((y - mu)/sigma)^3`` (order 3,
    standardised with the biased sigma): ``E[Z] = CM3 / CM2^1.5`` and
    ``Var[Z] = (CM6 - CM3^2) / CM2^3``.  The biased variances are rescaled
    by ``n / (n - 1)`` so the result matches a two-pass Welch t-test over
    the explicitly preprocessed traces.  Zero-variance points yield zeros
    (and therefore a zero t), never NaN/inf.
    """
    n = acc.count
    cm2 = acc.central_moment(2)
    if order == 2:
        mean_z = cm2
        var_z = acc.central_moment(4) - cm2 ** 2
    elif order == 3:
        cm3 = acc.central_moment(3)
        cm6 = acc.central_moment(6)
        with np.errstate(divide="ignore", invalid="ignore"):
            safe = np.maximum(cm2, 1e-300)
            mean_z = np.where(cm2 > 0, cm3 / safe ** 1.5, 0.0)
            var_z = np.where(cm2 > 0, (cm6 - cm3 ** 2) / safe ** 3, 0.0)
    else:
        raise ValueError(f"unsupported higher-order TVLA order {order}")
    # Clamp tiny negative values from catastrophic cancellation and undo
    # the bias so the variance matches ddof=1 on the preprocessed traces.
    var_z = np.maximum(var_z, 0.0) * (n / (n - 1.0))
    return np.asarray(mean_z, dtype=float), np.asarray(var_z, dtype=float)


def welch_higher_order(acc0: OnePassMoments, acc1: OnePassMoments,
                       order: int) -> WelchResult:
    """Order-``order`` TVLA t-test from two moment accumulators.

    Args:
        acc0: Accumulator of the first trace group, tracking central
            moments up to at least :func:`moment_order_for_tvla`.
        acc1: Same for the second group.
        order: 1 (plain Welch on the means), 2 (centered-variance test) or
            3 (standardised-skewness test).

    Returns:
        A :class:`WelchResult` equivalent to running :func:`welch_t_test`
        on the order-``order`` preprocessed traces of both groups.

    Raises:
        ValueError: for unsupported orders, accumulators that do not track
            enough moments, or fewer than 2 samples per group.
    """
    if order == 1:
        return welch_from_accumulators(acc0, acc1)
    required = moment_order_for_tvla(order)
    for acc in (acc0, acc1):
        if acc.max_order < required:
            raise ValueError(
                f"order-{order} TVLA needs central moments up to "
                f"{required}; accumulator tracks {acc.max_order}")
    if acc0.count < 2 or acc1.count < 2:
        raise ValueError("both accumulators need at least 2 samples")
    mean0, var0 = _preprocessed_moments(acc0, order)
    mean1, var1 = _preprocessed_moments(acc1, order)
    return welch_from_moments(mean0, var0, acc0.count, mean1, var1, acc1.count)
