"""Sharded parallel TVLA campaigns on the streaming moment engine.

PR 1 made :func:`repro.tvla.assessment.assess_leakage` stream chunked traces
into :class:`~repro.tvla.moments.OnePassMoments` accumulators that merge
losslessly.  This module exploits that: a campaign's trace range is split
into **chunk-aligned shards**, each shard folds its chunks into partial
accumulators on a worker, and the partials are merged back into the final
Welch verdict (all configured TVLA orders).

Three properties make the result trustworthy:

* **Shard-layout invariance** — every chunk's mask/noise randomness is a
  pure function of its ``(seed, class, group, chunk)`` coordinates: Philox
  counter blocks under ``TvlaConfig.sampler="counter"`` (the default; see
  :mod:`repro.power.ctrsample`), spawned ``numpy.random.SeedSequence``
  streams under ``sampler="sequence"`` (see
  :func:`repro.tvla.assessment.chunk_seed_streams`).  Shards therefore
  generate exactly the traces the serial run would.
* **Lossless merge** — partial accumulators combine with the exact pairwise
  Chan/Pébay formulas (:meth:`OnePassMoments.merge`), in deterministic
  shard order.  Under the sequence sampler each shard folds its chunks
  into one running accumulator pair and t-values agree with the unsharded
  streaming path to floating-point merge error (~1e-12).  Under the
  counter sampler shards return **per-chunk** accumulators unmerged and
  the merge left-folds them in global chunk order — the serial run's exact
  association — so sharded t-values are **bitwise equal** to serial ones
  for any shard count and executor.
* **Pluggable executors** — ``"serial"`` (inline), ``"thread"``
  (:class:`~concurrent.futures.ThreadPoolExecutor`; workers share one
  read-only trace generator per design, or rebuild private ones when the
  reference loop engine is selected) or ``"process"``
  (:class:`~concurrent.futures.ProcessPoolExecutor`, platform-default
  start method; workers rebuild the generator from the pickled netlist).
  An existing :class:`~concurrent.futures.Executor` instance can be
  passed directly.

:func:`assess_many` extends the same machinery to fan out *multiple
designs* in one call: all (design, shard) tasks are submitted to a single
pool, so small designs do not serialise behind large ones.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..netlist.netlist import Netlist
from ..power.traces import PowerTraceGenerator
from .assessment import (
    CampaignPair,
    LeakageAssessment,
    TvlaConfig,
    accumulate_campaign_chunks,
    accumulate_campaign_slice,
    aggregate_class_results,
    campaign_schedule,
    resolve_generator,
    resolve_sampler,
    results_from_accumulators,
    validate_campaigns,
)
from .moments import OnePassMoments
from .welch import WelchResult

#: Executor selectors accepted by the sharded drivers.
EXECUTORS = ("serial", "thread", "process")

ExecutorLike = Union[str, Executor]

#: One shard's partial accumulators: per fixed class, a (group0, group1)
#: pair of :class:`OnePassMoments` (sequence-sampler shards).
ShardMoments = List[Tuple[OnePassMoments, OnePassMoments]]

#: One counter-sampler shard's partials: per fixed class, a (group0,
#: group1) pair of **per-chunk accumulator lists** in local chunk order,
#: returned unmerged so the campaign merge can left-fold all chunks in
#: global chunk order (the serial association — bitwise-equal results).
ShardChunkMoments = List[Tuple[List[OnePassMoments], List[OnePassMoments]]]

#: Either partial form; :func:`merge_shard_partials` dispatches on shape.
ShardPartials = Union[ShardMoments, ShardChunkMoments]


def shard_trace_ranges(n_traces: int, n_shards: int,
                       chunk_traces: int) -> Tuple[Tuple[int, int], ...]:
    """Split ``[0, n_traces)`` into contiguous chunk-aligned shard ranges.

    Shard boundaries always fall on ``chunk_traces`` multiples so every
    shard consumes whole chunks (and therefore whole per-chunk RNG
    streams).  Chunks are distributed as evenly as possible; when there are
    fewer chunks than requested shards the surplus shards are dropped, so
    the returned tuple may be shorter than ``n_shards`` but never contains
    an empty range.

    Raises:
        ValueError: for non-positive ``n_traces``/``n_shards``/
            ``chunk_traces``.
    """
    if n_traces < 1:
        raise ValueError("n_traces must be >= 1")
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if chunk_traces < 1:
        raise ValueError("chunk_traces must be >= 1")
    n_chunks = (n_traces + chunk_traces - 1) // chunk_traces
    n_shards = min(n_shards, n_chunks)
    base, extra = divmod(n_chunks, n_shards)
    ranges: List[Tuple[int, int]] = []
    chunk = 0
    for shard in range(n_shards):
        take = base + (1 if shard < extra else 0)
        start = chunk * chunk_traces
        chunk += take
        stop = min(chunk * chunk_traces, n_traces)
        ranges.append((start, stop))
    return tuple(ranges)


def _shard_moments(generator: PowerTraceGenerator,
                   campaigns: Sequence[CampaignPair], config: TvlaConfig,
                   start: int, stop: int) -> ShardPartials:
    """Fold traces ``[start, stop)`` of every class into fresh accumulators.

    Counter-sampler shards keep one accumulator **per chunk** (unmerged);
    sequence-sampler shards fold their chunks into one running pair —
    see :func:`merge_shard_partials` for why the forms differ.
    """
    first_chunk = start // config.chunk_traces
    accumulate = (accumulate_campaign_chunks
                  if resolve_sampler(config, generator) == "counter"
                  else accumulate_campaign_slice)
    partials: ShardPartials = []
    for class_index, pair in enumerate(campaigns):
        sliced = (pair[0].slice(start, stop), pair[1].slice(start, stop))
        partials.append(accumulate(
            generator, sliced, config, class_index, first_chunk=first_chunk))
    return partials


def _shard_moments_rebuilt(netlist: Netlist,
                           sliced_campaigns: Sequence[CampaignPair],
                           config: TvlaConfig, first_chunk: int,
                           vectorised: bool = True) -> ShardPartials:
    """Worker entry point that builds its own generator, then folds a shard.

    Module-level (picklable) and self-contained: the worker receives the
    netlist plus already-sliced campaigns, so only the shard's stimulus
    crosses a process boundary; ``first_chunk`` anchors the slices to
    their global RNG streams (each chunk consumes the
    :func:`repro.tvla.assessment.chunk_seed_streams` stream of its global
    ``(seed, class, group, chunk)`` coordinates, which is what makes the
    result shard-layout invariant).  Also used by the thread pool when the
    reference loop engine is selected (``vectorised=False``): the loop
    path mutates per-generator model state, so each task gets a private
    generator instead of sharing one.  The simulation and power backends
    follow ``config.sim_backend``/``config.power_backend``, so a campaign
    runs the same extraction pipeline no matter which worker rebuilt the
    generator.
    """
    generator = PowerTraceGenerator(netlist, config=config.power,
                                    seed=config.seed, vectorised=vectorised,
                                    sim_backend=config.sim_backend,
                                    power_backend=config.power_backend)
    accumulate = (accumulate_campaign_chunks
                  if resolve_sampler(config, generator) == "counter"
                  else accumulate_campaign_slice)
    return [
        accumulate(generator, pair, config, class_index,
                   first_chunk=first_chunk)
        for class_index, pair in enumerate(sliced_campaigns)
    ]


@dataclass
class _ShardedDesign:
    """Bookkeeping for one design's in-flight shard tasks."""

    netlist: Netlist
    config: TvlaConfig
    gate_names: Tuple[str, ...]
    started_at: float
    futures: List["Future[ShardPartials]"]


def _make_executor(executor: ExecutorLike,
                   max_workers: Optional[int]) -> Tuple[Optional[Executor], bool, bool]:
    """Resolve an executor selector to ``(pool, ship_netlist, owned)``.

    ``pool`` is ``None`` for the serial driver.  ``ship_netlist`` selects
    the process entry point (workers rebuild their own generator from the
    pickled netlist) instead of sharing the parent's generator.  Besides
    :class:`~concurrent.futures.ProcessPoolExecutor`, any executor
    instance exposing a truthy ``cross_process`` attribute (e.g.
    :class:`repro.campaign.queue.QueueExecutor`, whose tasks may be picked
    up by workers on other machines) gets the shipped entry point too.
    """
    if isinstance(executor, Executor):
        ship_netlist = (isinstance(executor, ProcessPoolExecutor)
                        or bool(getattr(executor, "cross_process", False)))
        return executor, ship_netlist, False
    if executor == "serial":
        return None, False, False
    if executor == "thread":
        return ThreadPoolExecutor(max_workers=max_workers), False, True
    if executor == "process":
        # Platform-default start method: forcing fork would deadlock
        # callers that already have live threads (a forked child inherits
        # mutexes held by threads that do not exist in it — the reason
        # CPython moved the Linux default off fork).  The worker entry
        # point is module-level and picklable, so spawn/forkserver work
        # wherever ``repro`` is importable by a fresh interpreter.
        return ProcessPoolExecutor(max_workers=max_workers), True, True
    raise ValueError(
        f"executor must be one of {EXECUTORS} or an Executor instance, "
        f"got {executor!r}")


@contextmanager
def _pool_lifecycle(pool: Optional[Executor], owned: bool):
    """Guarantee owned pools are torn down, even when a shard worker raises.

    On the failure path the pool is shut down with ``cancel_futures=True``
    first: a raising shard must not leave the remaining shards burning CPU
    (or, for process pools, leak live worker processes) while the caller
    unwinds — the campaign's pending futures are cancelled and only the
    already-running tasks are drained.  Caller-supplied executors are never
    shut down; their lifecycle belongs to the caller.
    """
    try:
        yield
    except BaseException:
        if owned and pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        raise
    finally:
        if owned and pool is not None:
            pool.shutdown(wait=True)


def _submit_design(netlist: Netlist, config: TvlaConfig, n_shards: int,
                   pool: Optional[Executor], ship_netlist: bool,
                   generator: Optional[PowerTraceGenerator],
                   campaigns: Optional[Sequence[CampaignPair]]) -> _ShardedDesign:
    """Build the schedule and submit one design's shard tasks."""
    started_at = time.perf_counter()
    if campaigns is None:
        campaigns = campaign_schedule(netlist, config)
    else:
        validate_campaigns(netlist, config, campaigns)
    ranges = shard_trace_ranges(config.n_traces, n_shards,
                                config.chunk_traces)
    # Resolved in every branch: process workers rebuild their generator,
    # but the gate order (and the vectorised flag to preserve) is a pure
    # function of the netlist + power plan, so derive both locally once.
    generator = resolve_generator(netlist, config, generator)
    futures: List["Future[ShardPartials]"] = []
    if pool is None:
        for start, stop in ranges:
            future: "Future[ShardPartials]" = Future()
            future.set_result(
                _shard_moments(generator, campaigns, config, start, stop))
            futures.append(future)
    elif ship_netlist or not generator.vectorised:
        # Process pools always rebuild per worker; thread pools do too when
        # the reference loop engine is selected, because generate_loop
        # mutates per-generator model state and must not be shared across
        # concurrent tasks.
        for start, stop in ranges:
            sliced = tuple(
                (pair[0].slice(start, stop), pair[1].slice(start, stop))
                for pair in campaigns)
            futures.append(pool.submit(_shard_moments_rebuilt, netlist,
                                       sliced, config,
                                       start // config.chunk_traces,
                                       generator.vectorised))
    else:
        for start, stop in ranges:
            futures.append(pool.submit(_shard_moments, generator, campaigns,
                                       config, start, stop))
    gate_names = generator.gate_names
    return _ShardedDesign(netlist=netlist, config=config,
                          gate_names=gate_names, started_at=started_at,
                          futures=futures)


def merge_shard_partials(shard_results: Sequence[ShardPartials],
                         config: TvlaConfig) -> List[Dict[int, WelchResult]]:
    """Merge per-shard accumulator sets into per-class Welch results.

    The single definition of the campaign merge, shared by the in-process
    driver and the durable runner (:mod:`repro.campaign.runner`): partials
    merge **in shard order** — deterministic association, so reruns,
    resumed campaigns and store-cached results with the same shard layout
    are all bit-identical.

    Counter-sampler shards (:data:`ShardChunkMoments`, detected by shape)
    carry per-chunk accumulators; since shard ranges are contiguous and
    ascending, concatenating them in shard order lists every chunk in
    global chunk order, and the left-fold below reproduces the serial
    run's association exactly — ``update_batch`` on an empty accumulator
    stores the batch moments directly and ``merge`` replays the very same
    pairwise combine, so the merged accumulator (and every t-value) is
    **bitwise equal** to the serial run's, independent of shard layout.
    """
    n_classes = len(shard_results[0])
    per_chunk = isinstance(shard_results[0][0][0], list)
    class_results = []
    for class_index in range(n_classes):
        merged0: Optional[OnePassMoments] = None
        merged1: Optional[OnePassMoments] = None
        for partials in shard_results:
            group0, group1 = partials[class_index]
            chunks0 = group0 if per_chunk else [group0]
            chunks1 = group1 if per_chunk else [group1]
            for acc0 in chunks0:
                merged0 = acc0 if merged0 is None else merged0.merge(acc0)
            for acc1 in chunks1:
                merged1 = acc1 if merged1 is None else merged1.merge(acc1)
        class_results.append(results_from_accumulators(merged0, merged1,
                                                       config))
    return class_results


def _collect_design(design: _ShardedDesign) -> LeakageAssessment:
    """Merge one design's shard results into the final assessment."""
    config = design.config
    shard_results = [future.result() for future in design.futures]
    class_results = merge_shard_partials(shard_results, config)
    elapsed = time.perf_counter() - design.started_at
    return aggregate_class_results(class_results, design.netlist.name,
                                   design.gate_names, config, elapsed,
                                   streamed=True,
                                   n_shards=len(design.futures))


def assess_leakage_sharded(
    netlist: Netlist,
    config: Optional[TvlaConfig] = None,
    n_shards: int = 2,
    executor: ExecutorLike = "thread",
    max_workers: Optional[int] = None,
    generator: Optional[PowerTraceGenerator] = None,
    campaigns: Optional[Sequence[CampaignPair]] = None,
) -> LeakageAssessment:
    """Run one TVLA campaign split into ``n_shards`` parallel shards.

    Produces the same verdict as the unsharded streaming
    :func:`~repro.tvla.assessment.assess_leakage` for any shard count,
    because trace randomness is keyed to global chunk indices rather than
    to a shared sequential stream: bitwise-equal t-values under the
    counter sampler (per-chunk partials folded in the serial order),
    floating-point merge error (~1e-12) under the sequence sampler; see
    the module docstring.

    Args:
        netlist: The design to assess.
        config: Campaign configuration; defaults to :class:`TvlaConfig`.
        n_shards: Number of chunk-aligned trace shards (capped at the
            number of chunks).
        executor: ``"serial"``, ``"thread"``, ``"process"`` or an existing
            :class:`~concurrent.futures.Executor` instance.
        max_workers: Worker count for the string selectors (defaults to the
            executor's own default).
        generator: Optional pre-built trace generator (serial/thread only
            benefit; process workers rebuild their own).
        campaigns: Optional pre-built stimulus schedule.

    Returns:
        A :class:`LeakageAssessment` with ``n_shards`` recorded.

    Raises:
        ValueError: for invalid shard counts or executor selectors, and
            for schedule/configuration mismatches.
    """
    config = config if config is not None else TvlaConfig()
    pool, ship_netlist, owned = _make_executor(executor, max_workers)
    with _pool_lifecycle(pool, owned):
        design = _submit_design(netlist, config, n_shards, pool, ship_netlist,
                                generator, campaigns)
        return _collect_design(design)


def assess_many(
    netlists: Sequence[Netlist],
    config: Optional[TvlaConfig] = None,
    n_shards: int = 1,
    executor: ExecutorLike = "thread",
    max_workers: Optional[int] = None,
    store: Optional[object] = None,
) -> Dict[str, LeakageAssessment]:
    """Assess several designs in one sharded campaign fan-out.

    Every (design, shard) task is submitted to a single pool up front, so
    the pool stays saturated across designs of different sizes; each
    design's shard partials are then merged exactly as in
    :func:`assess_leakage_sharded`.

    Args:
        netlists: Designs to assess (names must be unique).
        config: Shared campaign configuration.
        n_shards: Trace shards per design.
        executor: ``"serial"``, ``"thread"``, ``"process"`` or an existing
            :class:`~concurrent.futures.Executor` instance (including
            :class:`repro.campaign.queue.QueueExecutor` for cross-process
            workers).
        max_workers: Worker count for the string selectors.
        store: Optional :class:`repro.campaign.store.ResultStore` (or its
            root path).  Designs whose
            :class:`~repro.campaign.spec.CampaignSpec` content hash is
            already stored are served from the cache **bit-identically**
            without simulating a single trace; fresh results are stored on
            the way out.

    Returns:
        Mapping design name -> :class:`LeakageAssessment`, in input order.

    Raises:
        ValueError: for duplicate design names or invalid selectors.
    """
    config = config if config is not None else TvlaConfig()
    names = [netlist.name for netlist in netlists]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate design names in assess_many: {names}")
    hashes: Dict[str, str] = {}
    cached: Dict[str, LeakageAssessment] = {}
    to_run = list(netlists)
    if store is not None:
        # Function-level import: repro.campaign sits on top of this module,
        # so the dependency must stay call-time only.
        from ..campaign.spec import CampaignSpec
        from ..campaign.store import as_result_store
        store = as_result_store(store)
        to_run = []
        for netlist in netlists:
            spec = CampaignSpec.from_netlist(netlist, config,
                                             n_shards=n_shards,
                                             force_streaming=True)
            hashes[netlist.name] = spec.content_hash
            hit = store.get(spec.content_hash)
            if hit is not None:
                cached[netlist.name] = hit
            else:
                to_run.append(netlist)
    pool, ship_netlist, owned = _make_executor(executor, max_workers)
    with _pool_lifecycle(pool, owned):
        submitted = [
            _submit_design(netlist, config, n_shards, pool, ship_netlist,
                           generator=None, campaigns=None)
            for netlist in to_run
        ]
        fresh = {design.netlist.name: _collect_design(design)
                 for design in submitted}
    if store is not None:
        for name, assessment in fresh.items():
            store.put(hashes[name], assessment)
    return {name: cached[name] if name in cached else fresh[name]
            for name in names}
