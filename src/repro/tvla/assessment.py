"""Per-gate TVLA leakage assessment of a netlist.

This is the ``leak_estimate(D)`` primitive of the paper's Algorithms 1 and 2:
it simulates a fixed-vs-random (or fixed-vs-fixed) trace campaign, generates
per-gate power traces, and computes Welch's t statistic for every gate.  The
result exposes both raw t-values and the normalised "leakage value per gate"
(|t| / 4.5) that the paper's Table II aggregates per design.

The campaign driver is **chunked**: traces are generated in blocks of
``TvlaConfig.chunk_traces`` and either folded into
:class:`~repro.tvla.moments.OnePassMoments` accumulators (streaming mode,
the paper's §II-A acquisition-time moment computation after Schneider &
Moradi — memory stays ``O(chunk_traces × n_gates)`` regardless of the trace
count) or stacked into full matrices for the classic two-pass Welch test.
Both modes consume identical traces, so their t-values agree to floating-
point merge error (~1e-12); streaming is selected automatically for
paper-scale campaigns.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..netlist.netlist import Netlist
from ..power.model import PowerModelConfig
from ..power.traces import PowerTraceGenerator
from ..simulation.vectors import (
    TraceCampaign,
    fixed_vs_fixed_campaigns,
    fixed_vs_random_campaigns,
)
from .moments import OnePassMoments
from .welch import (
    TVLA_THRESHOLD,
    WelchResult,
    welch_from_accumulators,
    welch_t_test,
)

#: A (group0, group1) campaign pair, one per fixed class.
CampaignPair = Tuple[TraceCampaign, TraceCampaign]


@dataclass(frozen=True)
class TvlaConfig:
    """Parameters of one TVLA campaign.

    Attributes:
        n_traces: Traces per group (the paper uses 10,000; the default here
            is smaller so the full benchmark suite runs quickly, and the
            benches expose it as a knob).
        mode: ``"fixed_vs_random"`` (default) or ``"fixed_vs_fixed"``.
        n_fixed_classes: Number of distinct fixed input classes evaluated
            per assessment.  Standard TVLA practice runs the fixed-vs-random
            test for several fixed values to avoid blind spots; the reported
            per-gate leakage value averages |t| over the classes, and a gate
            is "leaky" if any class exceeds the threshold.
        threshold: |t| distinguishability threshold.
        seed: RNG seed for stimulus and noise.
        power: Power-model configuration.
        chunk_traces: Trace-block size of the chunked campaign driver; each
            group is simulated and folded/stacked ``chunk_traces`` rows at a
            time.  Bounds peak trace memory in streaming mode and keeps the
            matrix pipeline cache-resident.
        streaming: ``True`` forces one-pass streaming accumulation,
            ``False`` forces the two-pass matrix test, ``None`` (default)
            streams automatically whenever a group exceeds one chunk (i.e.
            for paper-scale campaigns).
    """

    n_traces: int = 1000
    mode: str = "fixed_vs_random"
    n_fixed_classes: int = 4
    threshold: float = TVLA_THRESHOLD
    seed: int = 0
    power: PowerModelConfig = field(default_factory=PowerModelConfig)
    chunk_traces: int = 2048
    streaming: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.chunk_traces < 1:
            raise ValueError("chunk_traces must be >= 1")

    def resolved_streaming(self) -> bool:
        """Whether assessments with this config stream their moments."""
        if self.streaming is not None:
            return self.streaming
        return self.n_traces > self.chunk_traces


@dataclass
class LeakageAssessment:
    """Per-gate TVLA outcome for one netlist.

    Attributes:
        design_name: Name of the assessed netlist.
        gate_names: Gate order of the arrays below.
        t_values: Welch t statistic per gate.
        degrees_of_freedom: Welch degrees of freedom per gate.
        threshold: |t| threshold used to call a gate leaky.
        n_traces: Traces per group used for the assessment.
        elapsed_seconds: Wall-clock time of the assessment.
        mean_abs_t: Mean |t| across the fixed classes (None for one class).
        streamed: Whether the one-pass streaming accumulator path was used.
    """

    design_name: str
    gate_names: Tuple[str, ...]
    t_values: np.ndarray
    degrees_of_freedom: np.ndarray
    threshold: float
    n_traces: int
    elapsed_seconds: float
    mean_abs_t: Optional[np.ndarray] = None
    streamed: bool = False

    @cached_property
    def _name_index(self) -> Dict[str, int]:
        # Cached name -> position dict so per-gate lookups are O(1); the
        # masking flow queries every gate of a design when ranking.
        return {name: i for i, name in enumerate(self.gate_names)}

    # ------------------------------------------------------------------
    @property
    def leakage_values(self) -> np.ndarray:
        """Normalised per-gate leakage value.

        Defined as the mean |t| across the fixed classes divided by the
        threshold (falling back to the worst-case |t| when only one class
        was evaluated).  A value above 1.0 means the gate fails TVLA.  The
        paper's "Leakage Value (Per Gate)" column corresponds to the
        per-design mean of this quantity.
        """
        magnitude = (self.mean_abs_t if self.mean_abs_t is not None
                     else np.abs(self.t_values))
        return magnitude / self.threshold

    @property
    def mean_leakage(self) -> float:
        """Design-level leakage value (mean over gates)."""
        if self.t_values.size == 0:
            return 0.0
        return float(self.leakage_values.mean())

    @property
    def leaky_mask(self) -> np.ndarray:
        """Boolean mask of gates with ``|t|`` above the threshold."""
        return np.abs(self.t_values) > self.threshold

    @property
    def leaky_gates(self) -> Tuple[str, ...]:
        """Names of the gates that fail TVLA, sorted by decreasing |t|."""
        order = np.argsort(-np.abs(self.t_values))
        return tuple(self.gate_names[i] for i in order if self.leaky_mask[i])

    @property
    def n_leaky(self) -> int:
        """Number of leaky gates."""
        return int(self.leaky_mask.sum())

    def gate_leakage(self, gate_name: str) -> float:
        """Normalised leakage value of one gate.

        Raises:
            KeyError: if the gate was not assessed.
        """
        index = self._name_index.get(gate_name)
        if index is None:
            raise KeyError(f"gate {gate_name!r} was not assessed")
        return float(self.leakage_values[index])

    def gate_t_value(self, gate_name: str) -> float:
        """Raw Welch t statistic of one gate."""
        index = self._name_index.get(gate_name)
        if index is None:
            raise KeyError(f"gate {gate_name!r} was not assessed")
        return float(self.t_values[index])

    def as_dict(self) -> Dict[str, float]:
        """Mapping gate name -> normalised leakage value."""
        return {name: float(value)
                for name, value in zip(self.gate_names, self.leakage_values)}

    def summary(self) -> Dict[str, float]:
        """Aggregate statistics used by reports and benches."""
        return {
            "design": self.design_name,
            "gates": len(self.gate_names),
            "leaky_gates": self.n_leaky,
            "mean_leakage": self.mean_leakage,
            "max_abs_t": float(np.abs(self.t_values).max()) if self.t_values.size else 0.0,
            "n_traces": self.n_traces,
            "elapsed_seconds": self.elapsed_seconds,
            "streamed": self.streamed,
        }


def campaign_schedule(netlist: Netlist,
                      config: TvlaConfig) -> Tuple[CampaignPair, ...]:
    """Build the per-fixed-class stimulus campaigns of one assessment.

    The schedule depends only on the netlist's primary inputs and the TVLA
    configuration, so :func:`repro.core.pipeline.protect_design` builds it
    once and reuses it for the before and after assessments (masking
    preserves the primary inputs).

    Raises:
        ValueError: for unknown campaign modes.
    """
    if config.mode not in ("fixed_vs_random", "fixed_vs_fixed"):
        raise ValueError(f"unknown TVLA mode {config.mode!r}")
    schedule = []
    for class_index in range(max(1, config.n_fixed_classes)):
        class_seed = config.seed + 613 * class_index
        if config.mode == "fixed_vs_random":
            schedule.append(fixed_vs_random_campaigns(
                netlist, config.n_traces, seed=class_seed,
                fixed_seed=1 + class_index))
        else:
            schedule.append(fixed_vs_fixed_campaigns(
                netlist, config.n_traces, seed=class_seed,
                fixed_seed_a=1 + 2 * class_index,
                fixed_seed_b=2 + 2 * class_index))
    return tuple(schedule)


def _class_welch(generator: PowerTraceGenerator, pair: CampaignPair,
                 config: TvlaConfig, streamed: bool) -> WelchResult:
    """Welch's t-test for one fixed class via the chunked trace driver.

    Both modes pull traces through the same chunk iteration (same generator
    RNG consumption), so the streaming result equals the two-pass result up
    to the floating-point error of the moment merge.
    """
    group0, group1 = pair
    chunk = min(group0.n_traces, config.chunk_traces)
    # zip pulls group0's chunk before group1's each round, fixing one
    # generator-RNG consumption order shared by both modes.
    chunk_pairs = zip(generator.generate_stream(group0, chunk),
                      generator.generate_stream(group1, chunk))
    if streamed:
        shape = (generator.n_gates,)
        acc0 = OnePassMoments(max_order=2, shape=shape)
        acc1 = OnePassMoments(max_order=2, shape=shape)
        for traces0, traces1 in chunk_pairs:
            acc0.update_batch(traces0.per_gate)
            acc1.update_batch(traces1.per_gate)
        return welch_from_accumulators(acc0, acc1)
    blocks0 = []
    blocks1 = []
    for traces0, traces1 in chunk_pairs:
        blocks0.append(traces0.per_gate)
        blocks1.append(traces1.per_gate)
    return welch_t_test(np.concatenate(blocks0), np.concatenate(blocks1))


def assess_leakage(netlist: Netlist,
                   config: Optional[TvlaConfig] = None,
                   generator: Optional[PowerTraceGenerator] = None,
                   campaigns: Optional[Sequence[CampaignPair]] = None,
                   ) -> LeakageAssessment:
    """Run a full per-gate TVLA campaign on ``netlist``.

    Args:
        netlist: The design to assess.
        config: Campaign configuration; defaults to :class:`TvlaConfig`.
        generator: Optional pre-built trace generator for ``netlist``;
            passing one lets callers (e.g. the POLARIS pipeline) reuse the
            levelised simulator and power plan across assessments.
        campaigns: Optional pre-built stimulus schedule (one campaign pair
            per fixed class, as returned by :func:`campaign_schedule`);
            reused by the pipeline across before/after assessments.

    Returns:
        A :class:`LeakageAssessment` with one t value per non-port gate.

    Raises:
        ValueError: for unknown campaign modes or a schedule that does not
            match the configuration.
    """
    config = config if config is not None else TvlaConfig()
    start = time.perf_counter()
    if campaigns is None:
        campaigns = campaign_schedule(netlist, config)
    else:
        if config.mode not in ("fixed_vs_random", "fixed_vs_fixed"):
            raise ValueError(f"unknown TVLA mode {config.mode!r}")
        n_classes = max(1, config.n_fixed_classes)
        if len(campaigns) != n_classes:
            raise ValueError(
                f"campaign schedule has {len(campaigns)} classes; the "
                f"configuration expects {n_classes}")
        for pair in campaigns:
            for campaign in pair:
                if tuple(campaign.input_names) != tuple(netlist.primary_inputs):
                    raise ValueError(
                        "campaign schedule inputs do not match the "
                        f"netlist's primary inputs for {netlist.name!r}")
                if campaign.n_traces != config.n_traces:
                    raise ValueError(
                        f"campaign has {campaign.n_traces} traces; the "
                        f"configuration expects {config.n_traces}")
    if generator is None:
        generator = PowerTraceGenerator(netlist, config=config.power,
                                        seed=config.seed)
    elif generator.netlist is not netlist:
        raise ValueError(
            f"generator was built for netlist {generator.netlist.name!r}, "
            f"not {netlist.name!r}")
    streamed = config.resolved_streaming()

    worst_t: Optional[np.ndarray] = None
    worst_dof: Optional[np.ndarray] = None
    abs_sum: Optional[np.ndarray] = None
    for pair in campaigns:
        result = _class_welch(generator, pair, config, streamed)
        magnitude = np.abs(result.t_statistic)
        if worst_t is None:
            worst_t = result.t_statistic.copy()
            worst_dof = result.degrees_of_freedom.copy()
            abs_sum = magnitude.copy()
        else:
            replace_mask = magnitude > np.abs(worst_t)
            worst_t = np.where(replace_mask, result.t_statistic, worst_t)
            worst_dof = np.where(replace_mask, result.degrees_of_freedom, worst_dof)
            abs_sum = abs_sum + magnitude

    elapsed = time.perf_counter() - start
    return LeakageAssessment(
        design_name=netlist.name,
        gate_names=generator.gate_names,
        t_values=worst_t,
        degrees_of_freedom=worst_dof,
        threshold=config.threshold,
        n_traces=config.n_traces,
        elapsed_seconds=elapsed,
        mean_abs_t=abs_sum / len(campaigns),
        streamed=streamed,
    )


def compare_assessments(before: LeakageAssessment,
                        after: LeakageAssessment) -> Dict[str, float]:
    """Summarise the leakage reduction between two assessments.

    Returns a dictionary with the before/after mean leakage values, the
    total leakage reduction percentage (the paper's Table II metric) and the
    reduction in the number of leaky gates.
    """
    before_mean = before.mean_leakage
    after_mean = after.mean_leakage
    reduction_pct = 0.0
    if before_mean > 0:
        reduction_pct = (before_mean - after_mean) / before_mean * 100.0
    return {
        "before_mean_leakage": before_mean,
        "after_mean_leakage": after_mean,
        "leakage_reduction_pct": reduction_pct,
        "before_leaky_gates": before.n_leaky,
        "after_leaky_gates": after.n_leaky,
        "leaky_gate_reduction": before.n_leaky - after.n_leaky,
    }
