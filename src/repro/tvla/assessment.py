"""Per-gate TVLA leakage assessment of a netlist.

This is the ``leak_estimate(D)`` primitive of the paper's Algorithms 1 and 2:
it simulates a fixed-vs-random (or fixed-vs-fixed) trace campaign, generates
per-gate power traces, and computes Welch's t statistic for every gate.  The
result exposes both raw t-values and the normalised "leakage value per gate"
(|t| / 4.5) that the paper's Table II aggregates per design.

The campaign driver is **chunked**: traces are generated in blocks of
``TvlaConfig.chunk_traces`` and either folded into
:class:`~repro.tvla.moments.OnePassMoments` accumulators (streaming mode,
the paper's §II-A acquisition-time moment computation after Schneider &
Moradi — memory stays ``O(chunk_traces × n_gates)`` regardless of the trace
count) or stacked into full matrices for the classic two-pass Welch test.
Both modes consume identical traces, so their t-values agree to floating-
point merge error (~1e-12); streaming is selected automatically for
paper-scale campaigns.

Every chunk's mask/noise randomness is a pure function of its ``(seed,
class, group, chunk)`` coordinates, so for a given ``TvlaConfig.seed`` and
``chunk_traces`` the generated traces — and therefore the t-values — are
identical no matter how the campaign is chunked across workers.  That is
the property :mod:`repro.tvla.sharding` builds on to split campaigns over
thread/process pools and merge the partial accumulators losslessly.  Two
sampler disciplines realise it (``TvlaConfig.sampler``): ``"counter"``
(default) reads Philox counter blocks addressed by those coordinates
(:mod:`repro.power.ctrsample` — stateless, layout-invariant by
construction), while ``"sequence"`` walks a dedicated
``numpy.random.SeedSequence`` spawned per coordinate
(:func:`chunk_seed_streams`) and is retained as the frozen oracle of the
stateless contract.

With ``TvlaConfig.tvla_order > 1`` the driver additionally evaluates the
higher-order (centered-variance / standardised-skewness) t-tests from the
same accumulators; see :func:`repro.tvla.welch.welch_higher_order`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..netlist.netlist import Netlist
from ..power.ctrsample import SAMPLERS, CounterStream
from ..power.model import PowerModelConfig
from ..power.traces import POWER_BACKENDS, PowerTraceGenerator
from ..simulation.simulator import SIM_BACKENDS
from ..simulation.vectors import (
    TraceCampaign,
    fixed_vs_fixed_campaigns,
    fixed_vs_random_campaigns,
)
from .moments import OnePassMoments
from .welch import (
    TVLA_THRESHOLD,
    WelchResult,
    moment_order_for_tvla,
    welch_from_accumulators,
    welch_higher_order,
    welch_t_test,
)

#: A (group0, group1) campaign pair, one per fixed class.
CampaignPair = Tuple[TraceCampaign, TraceCampaign]

#: TVLA orders the engine knows how to evaluate (paper order 1 plus the
#: Schneider & Moradi order-2/3 extensions backed by the moment engine).
SUPPORTED_TVLA_ORDERS = (1, 2, 3)


@dataclass(frozen=True)
class TvlaConfig:
    """Parameters of one TVLA campaign.

    Attributes:
        n_traces: Traces per group (the paper uses 10,000; the default here
            is smaller so the full benchmark suite runs quickly, and the
            benches expose it as a knob).
        mode: ``"fixed_vs_random"`` (default) or ``"fixed_vs_fixed"``.
        n_fixed_classes: Number of distinct fixed input classes evaluated
            per assessment.  Standard TVLA practice runs the fixed-vs-random
            test for several fixed values to avoid blind spots; the reported
            per-gate leakage value averages |t| over the classes, and a gate
            is "leaky" if any class exceeds the threshold.
        threshold: |t| distinguishability threshold.
        seed: RNG seed for stimulus and noise.
        power: Power-model configuration.
        chunk_traces: Trace-block size of the chunked campaign driver; each
            group is simulated and folded/stacked ``chunk_traces`` rows at a
            time.  Bounds peak trace memory in streaming mode and keeps the
            matrix pipeline cache-resident.  Also the granularity of shard
            boundaries and of the per-chunk spawned RNG streams, so results
            depend on ``chunk_traces`` but **not** on the shard layout.
        streaming: ``True`` forces one-pass streaming accumulation,
            ``False`` forces the two-pass matrix test, ``None`` (default)
            streams automatically whenever a group exceeds one chunk (i.e.
            for paper-scale campaigns).
        tvla_order: Highest TVLA order to evaluate (1, 2 or 3).  Orders
            above 1 are computed from the moment accumulators (the engine
            tracks central moments up to ``2 * tvla_order``), so they force
            the streaming path regardless of ``streaming``.
        sim_backend: Logic-simulation backend driving trace generation:
            ``"compiled"`` (default) runs the fused levelised kernel of
            :mod:`repro.simulation.compiled`, which releases the GIL for
            the bulk of each chunk and lets thread-pool shards scale;
            ``"loop"`` keeps the per-gate reference sweep (the regression
            oracle).  Both backends generate bit-identical traces, so
            t-values agree exactly for a given seed.
        power_backend: Toggle-extraction backend of the power engine:
            ``"packed"`` (default) consumes the simulator's bit-packed
            state matrix directly — the boolean state matrix is never
            materialised between simulation and power extraction;
            ``"unpacked"`` keeps the bool-matrix path as the bit-identical
            oracle.  Traces — and therefore t-values — are exactly equal
            either way (pinned by ``tests/test_packed_power.py``); with
            ``sim_backend="loop"`` there is no packed matrix and
            ``"packed"`` silently degrades to ``"unpacked"``.
        sampler: Mask/noise sampling discipline: ``"counter"`` (default)
            draws every chunk's randomness straight off Philox counter
            blocks addressed by ``(seed, class, group, chunk, lane)``
            (:mod:`repro.power.ctrsample`), making draws stateless and
            shard-layout invariance hold by construction; ``"sequence"``
            keeps the nested ``SeedSequence.spawn`` streams
            (:func:`chunk_seed_streams`) as the frozen stateless-contract
            oracle, bit-identical to the pre-counter implementation.  The
            two samplers draw from different streams, so their t-values
            differ numerically (both are valid TVLA campaigns); within a
            sampler, results are exactly equal across any chunking,
            sharding or executor layout.  ``"counter"`` requires the
            vectorised trace engine and degrades to ``"sequence"`` for
            loop-engine generators, mirroring the packed->unpacked
            fallback.
    """

    n_traces: int = 1000
    mode: str = "fixed_vs_random"
    n_fixed_classes: int = 4
    threshold: float = TVLA_THRESHOLD
    seed: int = 0
    power: PowerModelConfig = field(default_factory=PowerModelConfig)
    chunk_traces: int = 2048
    streaming: Optional[bool] = None
    tvla_order: int = 1
    sim_backend: str = "compiled"
    power_backend: str = "packed"
    sampler: str = "counter"

    def __post_init__(self) -> None:
        if self.chunk_traces < 1:
            raise ValueError("chunk_traces must be >= 1")
        if self.sampler not in SAMPLERS:
            raise ValueError(
                f"sampler must be one of {SAMPLERS}, got {self.sampler!r}")
        if self.tvla_order not in SUPPORTED_TVLA_ORDERS:
            raise ValueError(
                f"tvla_order must be one of {SUPPORTED_TVLA_ORDERS}, "
                f"got {self.tvla_order!r}")
        if self.sim_backend not in SIM_BACKENDS:
            raise ValueError(
                f"sim_backend must be one of {SIM_BACKENDS}, "
                f"got {self.sim_backend!r}")
        if self.power_backend not in POWER_BACKENDS:
            raise ValueError(
                f"power_backend must be one of {POWER_BACKENDS}, "
                f"got {self.power_backend!r}")

    def resolved_streaming(self) -> bool:
        """Whether assessments with this config stream their moments.

        Higher-order testing always streams: the order-2/3 statistics are
        functions of the central-moment accumulators.
        """
        if self.tvla_order > 1:
            return True
        if self.streaming is not None:
            return self.streaming
        return self.n_traces > self.chunk_traces

    def moment_order(self) -> int:
        """Accumulator ``max_order`` required by ``tvla_order``."""
        return moment_order_for_tvla(self.tvla_order)

    def n_chunks(self) -> int:
        """Number of trace chunks per campaign group."""
        return (self.n_traces + self.chunk_traces - 1) // self.chunk_traces


@dataclass
class LeakageAssessment:
    """Per-gate TVLA outcome for one netlist.

    Attributes:
        design_name: Name of the assessed netlist.
        gate_names: Gate order of the arrays below.
        t_values: Order-1 Welch t statistic per gate (worst fixed class).
        degrees_of_freedom: Welch degrees of freedom per gate.
        threshold: |t| threshold used to call a gate leaky.
        n_traces: Traces per group used for the assessment.
        elapsed_seconds: Wall-clock time of the assessment.
        mean_abs_t: Mean |t| across the fixed classes (None for one class).
        streamed: Whether the one-pass streaming accumulator path was used.
        tvla_order: Highest TVLA order evaluated.
        order_t_values: Per-gate worst-class t statistic of each evaluated
            higher order (keys 2, 3, ...; empty when ``tvla_order == 1``).
        n_shards: Number of shards the campaign was split into (1 for the
            serial driver).
        failed_shards: Shard indices excluded from a *degraded* campaign
            result (``collect_result(allow_partial=True)`` after those
            shards exhausted their retries).  Empty for every complete
            assessment; degraded results are never cached in the store.
    """

    design_name: str
    gate_names: Tuple[str, ...]
    t_values: np.ndarray
    degrees_of_freedom: np.ndarray
    threshold: float
    n_traces: int
    elapsed_seconds: float
    mean_abs_t: Optional[np.ndarray] = None
    streamed: bool = False
    tvla_order: int = 1
    order_t_values: Dict[int, np.ndarray] = field(default_factory=dict)
    n_shards: int = 1
    failed_shards: Tuple[int, ...] = ()

    @cached_property
    def _name_index(self) -> Dict[str, int]:
        # Cached name -> position dict so per-gate lookups are O(1); the
        # masking flow queries every gate of a design when ranking.
        return {name: i for i, name in enumerate(self.gate_names)}

    # ------------------------------------------------------------------
    @property
    def leakage_values(self) -> np.ndarray:
        """Normalised per-gate leakage value.

        Defined as the mean |t| across the fixed classes divided by the
        threshold (falling back to the worst-case |t| when only one class
        was evaluated).  A value above 1.0 means the gate fails TVLA.  The
        paper's "Leakage Value (Per Gate)" column corresponds to the
        per-design mean of this quantity.
        """
        magnitude = (self.mean_abs_t if self.mean_abs_t is not None
                     else np.abs(self.t_values))
        return magnitude / self.threshold

    @property
    def mean_leakage(self) -> float:
        """Design-level leakage value (mean over gates)."""
        if self.t_values.size == 0:
            return 0.0
        return float(self.leakage_values.mean())

    @property
    def leaky_mask(self) -> np.ndarray:
        """Boolean mask of gates with ``|t|`` above the threshold."""
        return np.abs(self.t_values) > self.threshold

    @property
    def leaky_gates(self) -> Tuple[str, ...]:
        """Names of the gates that fail TVLA, sorted by decreasing |t|."""
        order = np.argsort(-np.abs(self.t_values))
        return tuple(self.gate_names[i] for i in order if self.leaky_mask[i])

    @property
    def n_leaky(self) -> int:
        """Number of leaky gates."""
        return int(self.leaky_mask.sum())

    # ------------------------------------------------------------------
    def t_values_for_order(self, order: int) -> np.ndarray:
        """Per-gate worst-class t statistic of one evaluated TVLA order.

        Raises:
            KeyError: if that order was not evaluated.
        """
        if order == 1:
            return self.t_values
        values = self.order_t_values.get(order)
        if values is None:
            raise KeyError(
                f"order-{order} TVLA was not evaluated "
                f"(tvla_order={self.tvla_order})")
        return values

    def leaky_mask_for_order(self, order: int) -> np.ndarray:
        """Boolean leaky mask of one evaluated TVLA order."""
        return np.abs(self.t_values_for_order(order)) > self.threshold

    def n_leaky_for_order(self, order: int) -> int:
        """Number of gates failing TVLA at ``order``."""
        return int(self.leaky_mask_for_order(order).sum())

    def gate_leakage(self, gate_name: str) -> float:
        """Normalised leakage value of one gate.

        Raises:
            KeyError: if the gate was not assessed.
        """
        index = self._name_index.get(gate_name)
        if index is None:
            raise KeyError(f"gate {gate_name!r} was not assessed")
        return float(self.leakage_values[index])

    def gate_t_value(self, gate_name: str) -> float:
        """Raw Welch t statistic of one gate."""
        index = self._name_index.get(gate_name)
        if index is None:
            raise KeyError(f"gate {gate_name!r} was not assessed")
        return float(self.t_values[index])

    def as_dict(self) -> Dict[str, float]:
        """Mapping gate name -> normalised leakage value."""
        return {name: float(value)
                for name, value in zip(self.gate_names, self.leakage_values)}

    def summary(self) -> Dict[str, float]:
        """Aggregate statistics used by reports and benches."""
        summary = {
            "design": self.design_name,
            "gates": len(self.gate_names),
            "leaky_gates": self.n_leaky,
            "mean_leakage": self.mean_leakage,
            "max_abs_t": float(np.abs(self.t_values).max()) if self.t_values.size else 0.0,
            "n_traces": self.n_traces,
            "elapsed_seconds": self.elapsed_seconds,
            "streamed": self.streamed,
            "tvla_order": self.tvla_order,
            "n_shards": self.n_shards,
        }
        for order in sorted(self.order_t_values):
            summary[f"leaky_gates_order{order}"] = self.n_leaky_for_order(order)
        return summary


def campaign_schedule(netlist: Netlist,
                      config: TvlaConfig) -> Tuple[CampaignPair, ...]:
    """Build the per-fixed-class stimulus campaigns of one assessment.

    The schedule depends only on the netlist's primary inputs and the TVLA
    configuration, so :func:`repro.core.pipeline.protect_design` builds it
    once and reuses it for the before and after assessments (masking
    preserves the primary inputs).

    Raises:
        ValueError: for unknown campaign modes.
    """
    if config.mode not in ("fixed_vs_random", "fixed_vs_fixed"):
        raise ValueError(f"unknown TVLA mode {config.mode!r}")
    schedule = []
    for class_index in range(max(1, config.n_fixed_classes)):
        class_seed = config.seed + 613 * class_index
        if config.mode == "fixed_vs_random":
            schedule.append(fixed_vs_random_campaigns(
                netlist, config.n_traces, seed=class_seed,
                fixed_seed=1 + class_index))
        else:
            schedule.append(fixed_vs_fixed_campaigns(
                netlist, config.n_traces, seed=class_seed,
                fixed_seed_a=1 + 2 * class_index,
                fixed_seed_b=2 + 2 * class_index))
    return tuple(schedule)


# ----------------------------------------------------------------------
# Per-chunk RNG streams and accumulation (shared with repro.tvla.sharding)
# ----------------------------------------------------------------------
def chunk_seed_streams(seed: int, class_index: int, group_index: int,
                       n_chunks: int) -> List[np.random.SeedSequence]:
    """Per-chunk mask/noise seed streams of one campaign group.

    Derived by nested ``numpy.random.SeedSequence.spawn``: the campaign
    root spawns one child per fixed class, each class one child per group
    and each group one child per trace chunk.  A chunk's stream is
    therefore a pure function of ``(seed, class, group, chunk index)`` —
    independent streams that are reproducible regardless of which worker
    or shard processes the chunk.
    """
    root = np.random.SeedSequence(seed)
    class_seq = root.spawn(class_index + 1)[class_index]
    group_seq = class_seq.spawn(group_index + 1)[group_index]
    return group_seq.spawn(n_chunks)


def resolve_sampler(config: TvlaConfig,
                    generator: PowerTraceGenerator) -> str:
    """The sampler discipline that will actually run.

    ``"counter"`` needs the vectorised trace engine (its draws feed the
    matrix pipeline's table gathers directly); a loop-engine generator
    degrades it to ``"sequence"``, mirroring the packed->unpacked
    power-backend fallback.
    """
    if config.sampler == "counter" and not generator.vectorised:
        return "sequence"
    return config.sampler


def _group_stream_kwargs(config: TvlaConfig, sampler: str, class_index: int,
                         group_index: int, first_chunk: int,
                         n_local: int) -> dict:
    """``generate_stream`` randomness arguments for one campaign group.

    Counter sampler: one stateless :class:`CounterStream` plus the global
    chunk offset.  Sequence sampler: the slice of spawned per-chunk seed
    streams matching the same global chunk range.
    """
    if sampler == "counter":
        return {"counter_stream": CounterStream(config.seed, class_index,
                                                group_index),
                "first_chunk": first_chunk}
    seeds = chunk_seed_streams(config.seed, class_index, group_index,
                               config.n_chunks())
    return {"seeds": seeds[first_chunk:first_chunk + n_local]}


def accumulate_campaign_slice(
    generator: PowerTraceGenerator,
    pair: CampaignPair,
    config: TvlaConfig,
    class_index: int,
    first_chunk: int = 0,
) -> Tuple[OnePassMoments, OnePassMoments]:
    """Fold one class's (sliced) campaign pair into fresh moment accumulators.

    Args:
        generator: Trace generator of the assessed netlist.
        pair: The class's ``(group0, group1)`` campaigns — either the full
            campaigns or a chunk-aligned shard slice of both.
        config: Campaign configuration (defines chunk size and seeds).
        class_index: Index of the fixed class (selects the seed stream).
        first_chunk: Global index of the slice's first chunk; shards pass
            their offset so every chunk consumes the same spawned RNG
            stream it would consume in the serial run.

    Returns:
        ``(acc0, acc1)`` accumulators tracking central moments up to
        ``config.moment_order()``.
    """
    shape = (generator.n_gates,)
    max_order = config.moment_order()
    accumulators = (OnePassMoments(max_order=max_order, shape=shape),
                    OnePassMoments(max_order=max_order, shape=shape))
    sampler = resolve_sampler(config, generator)
    for group_index, campaign in enumerate(pair):
        n_local = (campaign.n_traces + config.chunk_traces - 1) // config.chunk_traces
        kwargs = _group_stream_kwargs(config, sampler, class_index,
                                      group_index, first_chunk, n_local)
        for traces in generator.generate_stream(campaign, config.chunk_traces,
                                                **kwargs):
            accumulators[group_index].update_batch(traces.per_gate)
    return accumulators


def accumulate_campaign_chunks(
    generator: PowerTraceGenerator,
    pair: CampaignPair,
    config: TvlaConfig,
    class_index: int,
    first_chunk: int = 0,
) -> Tuple[List[OnePassMoments], List[OnePassMoments]]:
    """Fold one class's (sliced) campaign pair into per-chunk accumulators.

    Same traces as :func:`accumulate_campaign_slice`, but every chunk gets
    its **own** fresh accumulator pair instead of being folded into one
    running pair.  Sharded counter campaigns return these unmerged so the
    merge step can left-fold all chunks in global chunk order — the exact
    associativity order of the serial run — which is what makes sharded
    t-values bitwise equal to serial ones (not merely ~1e-12 close).
    ``update_batch`` on an empty accumulator stores the batch moments
    directly, so a chunk's single-update accumulator is itself bit-exact.

    Returns:
        ``(chunks0, chunks1)`` — one accumulator per chunk per group, in
        local chunk order.
    """
    shape = (generator.n_gates,)
    max_order = config.moment_order()
    per_chunk: Tuple[List[OnePassMoments], List[OnePassMoments]] = ([], [])
    sampler = resolve_sampler(config, generator)
    for group_index, campaign in enumerate(pair):
        n_local = (campaign.n_traces + config.chunk_traces - 1) // config.chunk_traces
        kwargs = _group_stream_kwargs(config, sampler, class_index,
                                      group_index, first_chunk, n_local)
        for traces in generator.generate_stream(campaign, config.chunk_traces,
                                                **kwargs):
            accumulator = OnePassMoments(max_order=max_order, shape=shape)
            accumulator.update_batch(traces.per_gate)
            per_chunk[group_index].append(accumulator)
    return per_chunk


def results_from_accumulators(acc0: OnePassMoments, acc1: OnePassMoments,
                              config: TvlaConfig) -> Dict[int, WelchResult]:
    """Welch results for every configured TVLA order from merged moments."""
    results = {1: welch_from_accumulators(acc0, acc1)}
    for order in range(2, config.tvla_order + 1):
        results[order] = welch_higher_order(acc0, acc1, order)
    return results


def _class_results(generator: PowerTraceGenerator, pair: CampaignPair,
                   config: TvlaConfig, class_index: int,
                   streamed: bool) -> Dict[int, WelchResult]:
    """Per-order Welch's t-tests for one fixed class via the chunked driver.

    Both modes pull identical traces (same per-chunk spawned RNG streams),
    so the streaming result equals the two-pass result up to the
    floating-point error of the moment merge.
    """
    if streamed:
        acc0, acc1 = accumulate_campaign_slice(generator, pair, config,
                                               class_index)
        return results_from_accumulators(acc0, acc1, config)
    blocks: Tuple[List[np.ndarray], List[np.ndarray]] = ([], [])
    sampler = resolve_sampler(config, generator)
    for group_index, campaign in enumerate(pair):
        kwargs = _group_stream_kwargs(config, sampler, class_index,
                                      group_index, 0, config.n_chunks())
        for traces in generator.generate_stream(campaign, config.chunk_traces,
                                                **kwargs):
            blocks[group_index].append(traces.per_gate)
    return {1: welch_t_test(np.concatenate(blocks[0]),
                            np.concatenate(blocks[1]))}


def aggregate_class_results(
    class_results: Sequence[Dict[int, WelchResult]],
    netlist_name: str,
    gate_names: Tuple[str, ...],
    config: TvlaConfig,
    elapsed_seconds: float,
    streamed: bool,
    n_shards: int = 1,
) -> LeakageAssessment:
    """Combine per-class per-order Welch results into one assessment.

    For every order the reported per-gate statistic is the worst-case
    (largest |t|) class; the order-1 mean |t| across classes additionally
    feeds the normalised leakage value.  Shared by the serial driver and
    :mod:`repro.tvla.sharding`, so both produce identical aggregation.
    """
    worst_t: Dict[int, np.ndarray] = {}
    worst_dof: Optional[np.ndarray] = None
    abs_sum: Optional[np.ndarray] = None
    for results in class_results:
        order1 = results[1]
        magnitude = np.abs(order1.t_statistic)
        if abs_sum is None:
            abs_sum = magnitude.copy()
            worst_dof = order1.degrees_of_freedom.copy()
        else:
            replace = magnitude > np.abs(worst_t[1])
            worst_dof = np.where(replace, order1.degrees_of_freedom, worst_dof)
            abs_sum = abs_sum + magnitude
        for order, result in results.items():
            current = worst_t.get(order)
            if current is None:
                worst_t[order] = result.t_statistic.copy()
            else:
                worst_t[order] = np.where(
                    np.abs(result.t_statistic) > np.abs(current),
                    result.t_statistic, current)
    return LeakageAssessment(
        design_name=netlist_name,
        gate_names=gate_names,
        t_values=worst_t[1],
        degrees_of_freedom=worst_dof,
        threshold=config.threshold,
        n_traces=config.n_traces,
        elapsed_seconds=elapsed_seconds,
        mean_abs_t=abs_sum / len(class_results),
        streamed=streamed,
        tvla_order=config.tvla_order,
        order_t_values={order: values for order, values in worst_t.items()
                        if order > 1},
        n_shards=n_shards,
    )


def validate_campaigns(netlist: Netlist, config: TvlaConfig,
                       campaigns: Sequence[CampaignPair]) -> None:
    """Check a pre-built schedule against a configuration and netlist.

    Raises:
        ValueError: for unknown campaign modes or a schedule that does not
            match the configuration.
    """
    if config.mode not in ("fixed_vs_random", "fixed_vs_fixed"):
        raise ValueError(f"unknown TVLA mode {config.mode!r}")
    n_classes = max(1, config.n_fixed_classes)
    if len(campaigns) != n_classes:
        raise ValueError(
            f"campaign schedule has {len(campaigns)} classes; the "
            f"configuration expects {n_classes}")
    for pair in campaigns:
        for campaign in pair:
            if tuple(campaign.input_names) != tuple(netlist.primary_inputs):
                raise ValueError(
                    "campaign schedule inputs do not match the "
                    f"netlist's primary inputs for {netlist.name!r}")
            if campaign.n_traces != config.n_traces:
                raise ValueError(
                    f"campaign has {campaign.n_traces} traces; the "
                    f"configuration expects {config.n_traces}")


def resolve_generator(netlist: Netlist, config: TvlaConfig,
                      generator: Optional[PowerTraceGenerator]
                      ) -> PowerTraceGenerator:
    """Return a generator for ``netlist``, validating a caller-supplied one."""
    if generator is None:
        return PowerTraceGenerator(netlist, config=config.power,
                                   seed=config.seed,
                                   sim_backend=config.sim_backend,
                                   power_backend=config.power_backend)
    if generator.netlist is not netlist:
        raise ValueError(
            f"generator was built for netlist {generator.netlist.name!r}, "
            f"not {netlist.name!r}")
    return generator


def assess_leakage(netlist: Netlist,
                   config: Optional[TvlaConfig] = None,
                   generator: Optional[PowerTraceGenerator] = None,
                   campaigns: Optional[Sequence[CampaignPair]] = None,
                   ) -> LeakageAssessment:
    """Run a full per-gate TVLA campaign on ``netlist``.

    Args:
        netlist: The design to assess.
        config: Campaign configuration; defaults to :class:`TvlaConfig`.
        generator: Optional pre-built trace generator for ``netlist``;
            passing one lets callers (e.g. the POLARIS pipeline) reuse the
            levelised simulator and power plan across assessments.
        campaigns: Optional pre-built stimulus schedule (one campaign pair
            per fixed class, as returned by :func:`campaign_schedule`);
            reused by the pipeline across before/after assessments.

    Returns:
        A :class:`LeakageAssessment` with one t value per non-port gate
        (per configured TVLA order).

    Raises:
        ValueError: for unknown campaign modes or a schedule that does not
            match the configuration.
    """
    config = config if config is not None else TvlaConfig()
    start = time.perf_counter()
    if campaigns is None:
        campaigns = campaign_schedule(netlist, config)
    else:
        validate_campaigns(netlist, config, campaigns)
    generator = resolve_generator(netlist, config, generator)
    streamed = config.resolved_streaming()

    class_results = [
        _class_results(generator, pair, config, class_index, streamed)
        for class_index, pair in enumerate(campaigns)
    ]
    elapsed = time.perf_counter() - start
    return aggregate_class_results(class_results, netlist.name,
                                   generator.gate_names, config, elapsed,
                                   streamed)


def compare_assessments(before: LeakageAssessment,
                        after: LeakageAssessment) -> Dict[str, float]:
    """Summarise the leakage reduction between two assessments.

    Returns a dictionary with the before/after mean leakage values, the
    total leakage reduction percentage (the paper's Table II metric) and the
    reduction in the number of leaky gates.  Higher-order results present in
    *both* assessments are surfaced as ``order{k}_before_leaky`` /
    ``order{k}_after_leaky`` / ``order{k}_mean_abs_t_reduction_pct``.
    """
    before_mean = before.mean_leakage
    after_mean = after.mean_leakage
    reduction_pct = 0.0
    if before_mean > 0:
        reduction_pct = (before_mean - after_mean) / before_mean * 100.0
    report = {
        "before_mean_leakage": before_mean,
        "after_mean_leakage": after_mean,
        "leakage_reduction_pct": reduction_pct,
        "before_leaky_gates": before.n_leaky,
        "after_leaky_gates": after.n_leaky,
        "leaky_gate_reduction": before.n_leaky - after.n_leaky,
    }
    for order in sorted(set(before.order_t_values) & set(after.order_t_values)):
        before_abs = float(np.abs(before.t_values_for_order(order)).mean())
        after_abs = float(np.abs(after.t_values_for_order(order)).mean())
        report[f"order{order}_before_leaky"] = before.n_leaky_for_order(order)
        report[f"order{order}_after_leaky"] = after.n_leaky_for_order(order)
        report[f"order{order}_mean_abs_t_reduction_pct"] = (
            (before_abs - after_abs) / before_abs * 100.0 if before_abs > 0
            else 0.0)
    return report
