"""Per-gate TVLA leakage assessment of a netlist.

This is the ``leak_estimate(D)`` primitive of the paper's Algorithms 1 and 2:
it simulates a fixed-vs-random (or fixed-vs-fixed) trace campaign, generates
per-gate power traces, and computes Welch's t statistic for every gate.  The
result exposes both raw t-values and the normalised "leakage value per gate"
(|t| / 4.5) that the paper's Table II aggregates per design.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..netlist.netlist import Netlist
from ..power.model import PowerModelConfig
from ..power.traces import PowerTraceGenerator
from ..simulation.vectors import (
    fixed_vs_fixed_campaigns,
    fixed_vs_random_campaigns,
)
from .welch import TVLA_THRESHOLD, WelchResult, welch_t_test


@dataclass(frozen=True)
class TvlaConfig:
    """Parameters of one TVLA campaign.

    Attributes:
        n_traces: Traces per group (the paper uses 10,000; the default here
            is smaller so the full benchmark suite runs quickly, and the
            benches expose it as a knob).
        mode: ``"fixed_vs_random"`` (default) or ``"fixed_vs_fixed"``.
        n_fixed_classes: Number of distinct fixed input classes evaluated
            per assessment.  Standard TVLA practice runs the fixed-vs-random
            test for several fixed values to avoid blind spots; the reported
            per-gate leakage value averages |t| over the classes, and a gate
            is "leaky" if any class exceeds the threshold.
        threshold: |t| distinguishability threshold.
        seed: RNG seed for stimulus and noise.
        power: Power-model configuration.
    """

    n_traces: int = 1000
    mode: str = "fixed_vs_random"
    n_fixed_classes: int = 4
    threshold: float = TVLA_THRESHOLD
    seed: int = 0
    power: PowerModelConfig = field(default_factory=PowerModelConfig)


@dataclass
class LeakageAssessment:
    """Per-gate TVLA outcome for one netlist.

    Attributes:
        design_name: Name of the assessed netlist.
        gate_names: Gate order of the arrays below.
        t_values: Welch t statistic per gate.
        degrees_of_freedom: Welch degrees of freedom per gate.
        threshold: |t| threshold used to call a gate leaky.
        n_traces: Traces per group used for the assessment.
        elapsed_seconds: Wall-clock time of the assessment.
    """

    design_name: str
    gate_names: Tuple[str, ...]
    t_values: np.ndarray
    degrees_of_freedom: np.ndarray
    threshold: float
    n_traces: int
    elapsed_seconds: float
    mean_abs_t: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def leakage_values(self) -> np.ndarray:
        """Normalised per-gate leakage value.

        Defined as the mean |t| across the fixed classes divided by the
        threshold (falling back to the worst-case |t| when only one class
        was evaluated).  A value above 1.0 means the gate fails TVLA.  The
        paper's "Leakage Value (Per Gate)" column corresponds to the
        per-design mean of this quantity.
        """
        magnitude = (self.mean_abs_t if self.mean_abs_t is not None
                     else np.abs(self.t_values))
        return magnitude / self.threshold

    @property
    def mean_leakage(self) -> float:
        """Design-level leakage value (mean over gates)."""
        if self.t_values.size == 0:
            return 0.0
        return float(self.leakage_values.mean())

    @property
    def leaky_mask(self) -> np.ndarray:
        """Boolean mask of gates with ``|t|`` above the threshold."""
        return np.abs(self.t_values) > self.threshold

    @property
    def leaky_gates(self) -> Tuple[str, ...]:
        """Names of the gates that fail TVLA, sorted by decreasing |t|."""
        order = np.argsort(-np.abs(self.t_values))
        return tuple(self.gate_names[i] for i in order if self.leaky_mask[i])

    @property
    def n_leaky(self) -> int:
        """Number of leaky gates."""
        return int(self.leaky_mask.sum())

    def gate_leakage(self, gate_name: str) -> float:
        """Normalised leakage value of one gate.

        Raises:
            KeyError: if the gate was not assessed.
        """
        try:
            index = self.gate_names.index(gate_name)
        except ValueError as exc:
            raise KeyError(f"gate {gate_name!r} was not assessed") from exc
        return float(self.leakage_values[index])

    def gate_t_value(self, gate_name: str) -> float:
        """Raw Welch t statistic of one gate."""
        try:
            index = self.gate_names.index(gate_name)
        except ValueError as exc:
            raise KeyError(f"gate {gate_name!r} was not assessed") from exc
        return float(self.t_values[index])

    def as_dict(self) -> Dict[str, float]:
        """Mapping gate name -> normalised leakage value."""
        return {name: float(value)
                for name, value in zip(self.gate_names, self.leakage_values)}

    def summary(self) -> Dict[str, float]:
        """Aggregate statistics used by reports and benches."""
        return {
            "design": self.design_name,
            "gates": len(self.gate_names),
            "leaky_gates": self.n_leaky,
            "mean_leakage": self.mean_leakage,
            "max_abs_t": float(np.abs(self.t_values).max()) if self.t_values.size else 0.0,
            "n_traces": self.n_traces,
            "elapsed_seconds": self.elapsed_seconds,
        }


def assess_leakage(netlist: Netlist,
                   config: Optional[TvlaConfig] = None) -> LeakageAssessment:
    """Run a full per-gate TVLA campaign on ``netlist``.

    Args:
        netlist: The design to assess.
        config: Campaign configuration; defaults to :class:`TvlaConfig`.

    Returns:
        A :class:`LeakageAssessment` with one t value per non-port gate.

    Raises:
        ValueError: for unknown campaign modes.
    """
    config = config if config is not None else TvlaConfig()
    if config.mode not in ("fixed_vs_random", "fixed_vs_fixed"):
        raise ValueError(f"unknown TVLA mode {config.mode!r}")
    start = time.perf_counter()
    generator = PowerTraceGenerator(netlist, config=config.power,
                                    seed=config.seed)

    n_classes = max(1, config.n_fixed_classes)
    worst_t: Optional[np.ndarray] = None
    worst_dof: Optional[np.ndarray] = None
    abs_sum: Optional[np.ndarray] = None
    for class_index in range(n_classes):
        class_seed = config.seed + 613 * class_index
        if config.mode == "fixed_vs_random":
            campaigns = fixed_vs_random_campaigns(
                netlist, config.n_traces, seed=class_seed,
                fixed_seed=1 + class_index)
        else:
            campaigns = fixed_vs_fixed_campaigns(
                netlist, config.n_traces, seed=class_seed,
                fixed_seed_a=1 + 2 * class_index,
                fixed_seed_b=2 + 2 * class_index)
        traces0, traces1 = generator.generate_pair(campaigns)
        result: WelchResult = welch_t_test(traces0.per_gate, traces1.per_gate)
        magnitude = np.abs(result.t_statistic)
        if worst_t is None:
            worst_t = result.t_statistic.copy()
            worst_dof = result.degrees_of_freedom.copy()
            abs_sum = magnitude.copy()
        else:
            replace_mask = magnitude > np.abs(worst_t)
            worst_t = np.where(replace_mask, result.t_statistic, worst_t)
            worst_dof = np.where(replace_mask, result.degrees_of_freedom, worst_dof)
            abs_sum = abs_sum + magnitude

    elapsed = time.perf_counter() - start
    return LeakageAssessment(
        design_name=netlist.name,
        gate_names=generator.gate_names,
        t_values=worst_t,
        degrees_of_freedom=worst_dof,
        threshold=config.threshold,
        n_traces=config.n_traces,
        elapsed_seconds=elapsed,
        mean_abs_t=abs_sum / n_classes,
    )


def compare_assessments(before: LeakageAssessment,
                        after: LeakageAssessment) -> Dict[str, float]:
    """Summarise the leakage reduction between two assessments.

    Returns a dictionary with the before/after mean leakage values, the
    total leakage reduction percentage (the paper's Table II metric) and the
    reduction in the number of leaky gates.
    """
    before_mean = before.mean_leakage
    after_mean = after.mean_leakage
    reduction_pct = 0.0
    if before_mean > 0:
        reduction_pct = (before_mean - after_mean) / before_mean * 100.0
    return {
        "before_mean_leakage": before_mean,
        "after_mean_leakage": after_mean,
        "leakage_reduction_pct": reduction_pct,
        "before_leaky_gates": before.n_leaky,
        "after_leaky_gates": after.n_leaky,
        "leaky_gate_reduction": before.n_leaky - after.n_leaky,
    }
