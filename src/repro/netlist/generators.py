"""Synthetic gate-level circuit generators.

The paper evaluates POLARIS on ISCAS-85 (training) and EPFL / MIT-CEP
(evaluation) benchmark netlists synthesized with Synopsys Design Compiler.
Neither the benchmark netlists nor a synthesis tool are available offline, so
this module provides deterministic, seeded generators that produce circuits
with comparable structural characteristics:

* random reconvergent DAG logic with a realistic gate-type mix (crypto-ish
  datapaths are XOR/AND heavy, control logic is NAND/NOR heavy),
* arithmetic building blocks (ripple-carry adders, array multipliers,
  parity/XOR trees, mux trees) that the named benchmark recipes compose,
* optional register stages (DFFs) for sequential designs.

Every generator takes an explicit ``seed`` so all experiments are exactly
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .cell_library import GateType
from .netlist import Netlist

#: Gate-type mixes (sampling weights) used by the random-logic generator.
#: Keys are profile names referenced by the benchmark recipes.
GATE_MIX_PROFILES: Dict[str, Dict[GateType, float]] = {
    # Crypto datapath: XOR-rich with non-linear AND layers (DES/MD5-like).
    "crypto": {
        GateType.XOR: 0.30, GateType.AND: 0.18, GateType.NAND: 0.12,
        GateType.OR: 0.10, GateType.NOR: 0.06, GateType.XNOR: 0.10,
        GateType.NOT: 0.10, GateType.BUF: 0.04,
    },
    # Control logic: NAND/NOR dominated (arbiter, memory controller).
    "control": {
        GateType.NAND: 0.28, GateType.NOR: 0.20, GateType.AND: 0.12,
        GateType.OR: 0.12, GateType.NOT: 0.14, GateType.XOR: 0.06,
        GateType.XNOR: 0.03, GateType.BUF: 0.05,
    },
    # Arithmetic datapath: balanced mix with many XOR/AND (adders, mult).
    "arithmetic": {
        GateType.XOR: 0.22, GateType.AND: 0.22, GateType.OR: 0.12,
        GateType.NAND: 0.14, GateType.NOR: 0.08, GateType.XNOR: 0.08,
        GateType.NOT: 0.10, GateType.BUF: 0.04,
    },
    # Generic random logic (ISCAS-85-like).
    "random": {
        GateType.NAND: 0.22, GateType.AND: 0.16, GateType.NOR: 0.12,
        GateType.OR: 0.14, GateType.XOR: 0.12, GateType.XNOR: 0.06,
        GateType.NOT: 0.14, GateType.BUF: 0.04,
    },
}

#: Fan-in by gate type used when sampling random logic.
_FANIN_BY_TYPE: Dict[GateType, int] = {
    GateType.NOT: 1, GateType.BUF: 1,
    GateType.AND: 2, GateType.NAND: 2, GateType.OR: 2, GateType.NOR: 2,
    GateType.XOR: 2, GateType.XNOR: 2, GateType.MUX: 3,
}


@dataclass
class RandomLogicSpec:
    """Parameters for :func:`generate_random_logic`.

    Attributes:
        n_gates: Number of combinational gates to create.
        n_inputs: Number of primary inputs.
        n_outputs: Number of primary outputs.
        profile: Key into :data:`GATE_MIX_PROFILES`.
        locality: Probability mass concentrated on recently created gates
            when selecting fan-in nets; higher values produce deeper, more
            serial circuits, lower values produce wide, shallow ones.
        register_fraction: Fraction of gates followed by a DFF stage,
            producing a sequential design when > 0.
        seed: RNG seed.
    """

    n_gates: int
    n_inputs: int = 16
    n_outputs: int = 8
    profile: str = "random"
    locality: float = 0.6
    register_fraction: float = 0.0
    seed: int = 0


def _sample_gate_type(rng: np.random.Generator, profile: str) -> GateType:
    mix = GATE_MIX_PROFILES[profile]
    types = list(mix.keys())
    weights = np.array([mix[t] for t in types], dtype=float)
    weights /= weights.sum()
    return types[int(rng.choice(len(types), p=weights))]


def generate_random_logic(spec: RandomLogicSpec, name: str = "random_logic") -> Netlist:
    """Generate a random reconvergent combinational (or sequential) netlist.

    The construction sweeps gate-by-gate, choosing each new gate's inputs
    from previously created nets with a locality bias; this yields the deep,
    reconvergent structure typical of synthesized logic rather than a flat
    two-level network.
    """
    if spec.n_gates < 1:
        raise ValueError("n_gates must be >= 1")
    if spec.n_inputs < 2:
        raise ValueError("n_inputs must be >= 2")
    if spec.profile not in GATE_MIX_PROFILES:
        raise ValueError(f"unknown gate-mix profile {spec.profile!r}")

    rng = np.random.default_rng(spec.seed)
    netlist = Netlist(name)
    available: List[str] = []
    for i in range(spec.n_inputs):
        net = f"pi_{i}"
        netlist.add_primary_input(net)
        available.append(net)

    dff_budget = int(round(spec.n_gates * spec.register_fraction))
    for index in range(spec.n_gates):
        gate_type = _sample_gate_type(rng, spec.profile)
        fanin = _FANIN_BY_TYPE[gate_type]
        inputs = _pick_inputs(rng, available, fanin, spec.locality)
        out_net = f"w_{index}"
        netlist.add_gate(f"u{index}", gate_type, inputs, out_net)
        available.append(out_net)
        if dff_budget > 0 and rng.random() < spec.register_fraction:
            reg_net = f"r_{index}"
            netlist.add_gate(f"ff{index}", GateType.DFF, [out_net], reg_net)
            available.append(reg_net)
            dff_budget -= 1

    _connect_outputs(netlist, available[spec.n_inputs:], spec.n_outputs, rng)
    return netlist


def _pick_inputs(rng: np.random.Generator, available: Sequence[str],
                 fanin: int, locality: float) -> List[str]:
    """Pick ``fanin`` distinct nets, biased towards recently created ones."""
    n = len(available)
    # Geometric-ish bias towards the tail (recent nets).
    ranks = np.arange(n, dtype=float)
    weights = (1.0 - locality) + locality * (ranks + 1.0) / n
    weights = weights ** 3
    weights /= weights.sum()
    count = min(fanin, n)
    picks = rng.choice(n, size=count, replace=False, p=weights)
    chosen = [available[int(i)] for i in picks]
    while len(chosen) < fanin:
        chosen.append(available[int(rng.integers(0, n))])
    return chosen


def _connect_outputs(netlist: Netlist, internal_nets: Sequence[str],
                     n_outputs: int, rng: np.random.Generator) -> None:
    """Declare primary outputs on the last created nets (plus random picks)."""
    candidates = list(internal_nets)
    if not candidates:
        candidates = list(netlist.primary_inputs)
    chosen: List[str] = []
    # Prefer the most recently created nets (closest to "final" logic).
    tail = candidates[-n_outputs:]
    chosen.extend(tail)
    while len(chosen) < n_outputs:
        chosen.append(candidates[int(rng.integers(0, len(candidates)))])
    seen = set()
    for net in chosen[:n_outputs]:
        if net in seen:
            continue
        seen.add(net)
        netlist.add_primary_output(net)
    # Ensure at least one output exists even if duplicates collapsed.
    if not netlist.primary_outputs:
        netlist.add_primary_output(candidates[-1])


# ----------------------------------------------------------------------
# Structured arithmetic blocks
# ----------------------------------------------------------------------
def generate_ripple_adder(width: int, name: str = "adder") -> Netlist:
    """Generate a ``width``-bit ripple-carry adder (a + b -> sum, cout)."""
    if width < 1:
        raise ValueError("width must be >= 1")
    netlist = Netlist(name)
    a = [f"a_{i}" for i in range(width)]
    b = [f"b_{i}" for i in range(width)]
    for net in a + b:
        netlist.add_primary_input(net)
    carry = ""
    for i in range(width):
        p = f"p_{i}"
        g = f"g_{i}"
        netlist.add_gate(f"xor_p{i}", GateType.XOR, [a[i], b[i]], p)
        netlist.add_gate(f"and_g{i}", GateType.AND, [a[i], b[i]], g)
        if i == 0:
            sum_net = p
            carry = g
        else:
            sum_net = f"s_{i}"
            netlist.add_gate(f"xor_s{i}", GateType.XOR, [p, carry], sum_net)
            t = f"t_{i}"
            netlist.add_gate(f"and_t{i}", GateType.AND, [p, carry], t)
            new_carry = f"c_{i}"
            netlist.add_gate(f"or_c{i}", GateType.OR, [g, t], new_carry)
            carry = new_carry
        netlist.add_primary_output(sum_net)
    netlist.add_primary_output(carry)
    return netlist


def generate_array_multiplier(width: int, name: str = "multiplier") -> Netlist:
    """Generate a ``width`` x ``width`` unsigned shift-add array multiplier.

    The product is accumulated row by row: each partial-product row is added
    into a running sum with a ripple-carry adder built from explicit
    half/full adders, yielding the XOR/AND-dense datapath structure typical
    of synthesized multipliers.
    """
    if width < 2:
        raise ValueError("width must be >= 2")
    netlist = Netlist(name)
    a = [f"a_{i}" for i in range(width)]
    b = [f"b_{i}" for i in range(width)]
    for net in a + b:
        netlist.add_primary_input(net)

    counter = [0]

    def half_adder(x: str, y: str) -> Tuple[str, str]:
        idx = counter[0]
        counter[0] += 1
        s_net, c_net = f"has_{idx}", f"hac_{idx}"
        netlist.add_gate(f"ha_xor_{idx}", GateType.XOR, [x, y], s_net)
        netlist.add_gate(f"ha_and_{idx}", GateType.AND, [x, y], c_net)
        return s_net, c_net

    def full_adder(x: str, y: str, cin: str) -> Tuple[str, str]:
        idx = counter[0]
        counter[0] += 1
        p_net = f"fap_{idx}"
        s_net = f"fas_{idx}"
        g_net = f"fag_{idx}"
        t_net = f"fat_{idx}"
        c_net = f"fac_{idx}"
        netlist.add_gate(f"fa_xor1_{idx}", GateType.XOR, [x, y], p_net)
        netlist.add_gate(f"fa_xor2_{idx}", GateType.XOR, [p_net, cin], s_net)
        netlist.add_gate(f"fa_and1_{idx}", GateType.AND, [x, y], g_net)
        netlist.add_gate(f"fa_and2_{idx}", GateType.AND, [p_net, cin], t_net)
        netlist.add_gate(f"fa_or_{idx}", GateType.OR, [g_net, t_net], c_net)
        return s_net, c_net

    # Partial products: pp[i][j] = a[j] AND b[i], weight 2^(i+j).
    pp = [[f"pp_{i}_{j}" for j in range(width)] for i in range(width)]
    for i in range(width):
        for j in range(width):
            netlist.add_gate(f"and_pp{i}_{j}", GateType.AND, [a[j], b[i]], pp[i][j])

    # Accumulate rows: acc holds product bits by weight position.
    acc: List[str] = list(pp[0])
    product: List[str] = [acc[0]]
    acc = acc[1:]
    for i in range(1, width):
        row = pp[i]
        new_acc: List[str] = []
        carry = ""
        for j in range(width):
            acc_bit = acc[j] if j < len(acc) else ""
            operands = [v for v in (acc_bit, row[j], carry) if v]
            if len(operands) == 1:
                s_net, carry = operands[0], ""
            elif len(operands) == 2:
                s_net, carry = half_adder(operands[0], operands[1])
            else:
                s_net, carry = full_adder(operands[0], operands[1], operands[2])
            new_acc.append(s_net)
        if carry:
            new_acc.append(carry)
        product.append(new_acc[0])
        acc = new_acc[1:]
    product.extend(acc)

    for net in product:
        netlist.add_primary_output(net)
    return netlist


def generate_parity_tree(width: int, name: str = "parity") -> Netlist:
    """Generate an XOR reduction tree computing the parity of ``width`` bits."""
    if width < 2:
        raise ValueError("width must be >= 2")
    netlist = Netlist(name)
    nets = []
    for i in range(width):
        net = f"in_{i}"
        netlist.add_primary_input(net)
        nets.append(net)
    level = 0
    while len(nets) > 1:
        next_nets = []
        for i in range(0, len(nets) - 1, 2):
            out = f"x_{level}_{i // 2}"
            netlist.add_gate(f"xor_{level}_{i // 2}", GateType.XOR,
                             [nets[i], nets[i + 1]], out)
            next_nets.append(out)
        if len(nets) % 2:
            next_nets.append(nets[-1])
        nets = next_nets
        level += 1
    netlist.add_primary_output(nets[0])
    return netlist


def generate_mux_tree(select_bits: int, name: str = "mux_tree") -> Netlist:
    """Generate a 2^``select_bits``-to-1 multiplexer tree from basic gates.

    Each 2:1 mux is expanded into AND/AND/OR/NOT gates, giving arbiter-like
    control-dominated structure.
    """
    if select_bits < 1:
        raise ValueError("select_bits must be >= 1")
    n_data = 2 ** select_bits
    netlist = Netlist(name)
    data = [f"d_{i}" for i in range(n_data)]
    select = [f"s_{i}" for i in range(select_bits)]
    for net in data + select:
        netlist.add_primary_input(net)

    counter = 0
    level_nets = list(data)
    for level in range(select_bits):
        sel = select[level]
        sel_n = f"seln_{level}"
        netlist.add_gate(f"not_sel{level}", GateType.NOT, [sel], sel_n)
        next_nets = []
        for i in range(0, len(level_nets), 2):
            lo, hi = level_nets[i], level_nets[i + 1]
            a_net, b_net, out = f"ma_{counter}", f"mb_{counter}", f"mo_{counter}"
            netlist.add_gate(f"and_lo{counter}", GateType.AND, [lo, sel_n], a_net)
            netlist.add_gate(f"and_hi{counter}", GateType.AND, [hi, sel], b_net)
            netlist.add_gate(f"or_m{counter}", GateType.OR, [a_net, b_net], out)
            next_nets.append(out)
            counter += 1
        level_nets = next_nets
    netlist.add_primary_output(level_nets[0])
    return netlist


def generate_sbox_logic(input_bits: int, output_bits: int, seed: int = 0,
                        name: str = "sbox") -> Netlist:
    """Generate S-box-like dense non-linear logic (crypto substitution layer).

    Each output bit is a random balanced function of the inputs built from a
    few XOR/AND/NAND layers, approximating the logic produced when a lookup
    table S-box is synthesized to gates.
    """
    if input_bits < 2:
        raise ValueError("input_bits must be >= 2")
    rng = np.random.default_rng(seed)
    netlist = Netlist(name)
    inputs = [f"x_{i}" for i in range(input_bits)]
    for net in inputs:
        netlist.add_primary_input(net)

    counter = 0
    for out_index in range(output_bits):
        # Layer 1: pairwise non-linear terms.
        terms: List[str] = []
        n_terms = max(3, input_bits)
        for _ in range(n_terms):
            i, j = rng.choice(input_bits, size=2, replace=False)
            gate_type = [GateType.AND, GateType.NAND, GateType.OR][int(rng.integers(0, 3))]
            net = f"t_{out_index}_{counter}"
            netlist.add_gate(f"nl_{out_index}_{counter}", gate_type,
                             [inputs[int(i)], inputs[int(j)]], net)
            terms.append(net)
            counter += 1
        # Layer 2: XOR-combine the terms (linear mixing).
        acc = terms[0]
        for k, term in enumerate(terms[1:]):
            nxt = f"mix_{out_index}_{k}"
            netlist.add_gate(f"xor_{out_index}_{k}", GateType.XOR, [acc, term], nxt)
            acc = nxt
        netlist.add_primary_output(acc)
    return netlist


# ----------------------------------------------------------------------
# Composition
# ----------------------------------------------------------------------
def merge_netlists(name: str, parts: Sequence[Netlist],
                   stitch_seed: int = 0) -> Netlist:
    """Merge several sub-netlists into one design with light cross-stitching.

    Nets and gates of each part are prefixed with the part index to avoid
    collisions.  A few XOR "stitch" gates combine outputs of different parts
    so the merged design is a single connected circuit rather than disjoint
    islands (mirroring how synthesized designs share logic).
    """
    rng = np.random.default_rng(stitch_seed)
    merged = Netlist(name)
    part_outputs: List[List[str]] = []
    for index, part in enumerate(parts):
        prefix = f"p{index}_"
        for net in part.primary_inputs:
            merged.add_primary_input(prefix + net)
        for gate in part.gates:
            merged.add_gate(prefix + gate.name, gate.gate_type,
                            [prefix + n for n in gate.inputs],
                            prefix + gate.output, gate.attributes)
        part_outputs.append([prefix + net for net in part.primary_outputs])

    stitch_count = 0
    all_outputs: List[str] = []
    for outputs in part_outputs:
        all_outputs.extend(outputs)
    # Stitch adjacent parts together with XOR gates (keeps all cones observable).
    final_outputs: List[str] = list(all_outputs)
    if len(parts) > 1:
        for index in range(len(parts) - 1):
            left = part_outputs[index]
            right = part_outputs[index + 1]
            n_stitches = max(1, min(len(left), len(right)) // 4)
            for _ in range(n_stitches):
                a = left[int(rng.integers(0, len(left)))]
                b = right[int(rng.integers(0, len(right)))]
                out = f"stitch_{stitch_count}"
                merged.add_gate(f"xor_stitch_{stitch_count}", GateType.XOR,
                                [a, b], out)
                final_outputs.append(out)
                stitch_count += 1
    for net in final_outputs:
        if net not in merged.primary_outputs:
            merged.add_primary_output(net)
    return merged
