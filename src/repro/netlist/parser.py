"""Parser for a ``.bench``-style structural netlist format.

The ISCAS-85/89 benchmark suites are traditionally distributed in the BENCH
format::

    # comment
    INPUT(a)
    INPUT(b)
    OUTPUT(y)
    n1 = NAND(a, b)
    y  = NOT(n1)

This module parses that format (plus the masked composite cell names used by
this reproduction) into a :class:`~repro.netlist.netlist.Netlist`, and is the
counterpart of :mod:`repro.netlist.writer`.  Round-tripping a netlist through
``write -> parse`` preserves structure, which the test-suite checks as a
property-based invariant.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, Optional, Union

from .cell_library import CellLibrary, GateType
from .netlist import Netlist, NetlistError


class ParseError(Exception):
    """Raised when the BENCH text cannot be parsed."""

    def __init__(self, message: str, line_number: Optional[int] = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


_PORT_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^)\s]+)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(
    r"^([^=\s]+)\s*=\s*([A-Za-z_][A-Za-z0-9_]*)\s*\(\s*([^)]*)\)$"
)

#: Aliases accepted for gate-type tokens in BENCH files.
_TYPE_ALIASES = {
    "BUFF": GateType.BUF,
    "BUF": GateType.BUF,
    "INV": GateType.NOT,
    "NOT": GateType.NOT,
    "DFF": GateType.DFF,
    "FF": GateType.DFF,
    "MUX2": GateType.MUX,
}


def _resolve_gate_type(token: str, line_number: int) -> GateType:
    upper = token.upper()
    if upper in _TYPE_ALIASES:
        return _TYPE_ALIASES[upper]
    try:
        return GateType(upper)
    except ValueError as exc:
        raise ParseError(f"unknown gate type {token!r}", line_number) from exc


def parse_bench(text: str, name: str = "design",
                library: Optional[CellLibrary] = None) -> Netlist:
    """Parse BENCH-format ``text`` into a :class:`Netlist`.

    Args:
        text: The BENCH source.
        name: Name given to the resulting netlist (overridden by a
            ``# name: <x>`` comment if present).
        library: Cell library for the netlist; defaults to the shared library.

    Raises:
        ParseError: on malformed lines or unknown gate types.
        NetlistError: on structural violations (duplicate drivers, etc.).
    """
    netlist_name = name
    ports = []
    gates = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            match = re.match(r"#\s*name\s*:\s*(\S+)", line, re.IGNORECASE)
            if match:
                netlist_name = match.group(1)
            continue
        port_match = _PORT_RE.match(line)
        if port_match:
            ports.append((port_match.group(1).upper(), port_match.group(2),
                          line_number))
            continue
        gate_match = _GATE_RE.match(line)
        if gate_match:
            output, type_token, arg_text = gate_match.groups()
            inputs = [a.strip() for a in arg_text.split(",") if a.strip()]
            gate_type = _resolve_gate_type(type_token, line_number)
            gates.append((output, gate_type, inputs, line_number))
            continue
        raise ParseError(f"unrecognised statement: {line!r}", line_number)

    netlist = Netlist(netlist_name, library)
    for kind, net, line_number in ports:
        try:
            if kind == "INPUT":
                netlist.add_primary_input(net)
            else:
                netlist.add_primary_output(net)
        except NetlistError as exc:
            raise ParseError(str(exc), line_number) from exc
    for output, gate_type, inputs, line_number in gates:
        if not inputs:
            raise ParseError(f"gate driving {output!r} has no inputs", line_number)
        try:
            netlist.add_gate(f"g_{output}", gate_type, inputs, output)
        except NetlistError as exc:
            raise ParseError(str(exc), line_number) from exc
    return netlist


def parse_bench_file(path: Union[str, Path],
                     library: Optional[CellLibrary] = None) -> Netlist:
    """Parse the BENCH file at ``path``; the netlist is named after the file."""
    path = Path(path)
    return parse_bench(path.read_text(), name=path.stem, library=library)
