"""Structural validation of netlists.

The synthetic benchmark generators, the masking transform, and the parser all
funnel their results through :func:`validate_netlist` in the test-suite, so
any rewrite that produces combinational loops, undriven nets, or fan-in
violations is caught immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import networkx as nx

from .graph import combinational_graph
from .netlist import Netlist


@dataclass
class ValidationReport:
    """Outcome of validating one netlist.

    Attributes:
        errors: Violations that make the netlist unusable (loops, undriven
            nets feeding logic, missing primary outputs drivers).
        warnings: Non-fatal oddities (dangling nets, unused inputs).
    """

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def is_valid(self) -> bool:
        """True when no errors were found."""
        return not self.errors


def validate_netlist(netlist: Netlist) -> ValidationReport:
    """Check ``netlist`` for structural problems and return a report."""
    report = ValidationReport()

    if not netlist.primary_inputs:
        report.errors.append("netlist has no primary inputs")
    if not netlist.primary_outputs:
        report.errors.append("netlist has no primary outputs")

    undriven = netlist.undriven_nets()
    if undriven:
        report.errors.append(
            "undriven nets read by gates or outputs: " + ", ".join(undriven[:10])
        )

    dangling = netlist.dangling_nets()
    if dangling:
        report.warnings.append(
            "dangling nets (driven but never read): " + ", ".join(dangling[:10])
        )

    for gate in netlist.gates:
        if gate.fanin == 0 and not gate.gate_type.is_port:
            report.errors.append(f"gate {gate.name!r} has no inputs")
        spec = netlist.library[gate.gate_type]
        if spec.max_fanin and gate.fanin > spec.max_fanin:
            report.errors.append(
                f"gate {gate.name!r} exceeds max fan-in "
                f"({gate.fanin} > {spec.max_fanin})"
            )
        if len(set(gate.inputs)) != len(gate.inputs):
            report.warnings.append(f"gate {gate.name!r} has duplicated input nets")

    dag = combinational_graph(netlist)
    if dag.number_of_nodes() and not nx.is_directed_acyclic_graph(dag):
        cycle = nx.find_cycle(dag)
        path = " -> ".join(str(edge[0]) for edge in cycle)
        report.errors.append(f"combinational loop detected: {path}")

    unused_inputs = [
        net for net in netlist.primary_inputs if not netlist.sinks_of(net)
        and net not in netlist.primary_outputs
    ]
    if unused_inputs:
        report.warnings.append(
            "primary inputs never read: " + ", ".join(unused_inputs[:10])
        )
    return report
