"""Gate-level netlist data model.

A :class:`Netlist` is the central object of the whole flow: the synthetic
benchmark generators produce netlists, the logic simulator executes them, the
TVLA engine scores their gates, the masking transform rewrites them and the
POLARIS/VALIANT flows orchestrate all of the above.

The model is deliberately simple and explicit:

* a *net* is a named wire with one driver (a gate output or a primary input)
  and any number of sinks;
* a *gate* is an instance of a library cell with an ordered list of input
  nets and a single output net;
* primary inputs and outputs are plain net names recorded on the netlist.

Sequential designs are supported through ``DFF`` gates, which the simulator
treats as edge-triggered registers with a single data input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .cell_library import CellLibrary, DEFAULT_LIBRARY, GateType


class NetlistError(Exception):
    """Raised for structural violations when building or editing a netlist."""


@dataclass
class Gate:
    """One cell instance in a netlist.

    Attributes:
        name: Unique instance name within the netlist.
        gate_type: The library cell implementing this gate.
        inputs: Ordered input net names.  For masked composite gates the
            trailing inputs are fresh-randomness nets.
        output: The net driven by this gate.
        attributes: Free-form metadata (e.g. ``masked_from`` recorded by the
            masking transform).
    """

    name: str
    gate_type: GateType
    inputs: List[str] = field(default_factory=list)
    output: str = ""
    attributes: Dict[str, object] = field(default_factory=dict)

    @property
    def fanin(self) -> int:
        """Number of input nets."""
        return len(self.inputs)

    def copy(self) -> "Gate":
        """Return a deep copy of this gate."""
        return Gate(
            name=self.name,
            gate_type=self.gate_type,
            inputs=list(self.inputs),
            output=self.output,
            attributes=dict(self.attributes),
        )


class Netlist:
    """A named collection of gates, nets, and primary ports.

    The class maintains net connectivity incrementally: every
    :meth:`add_gate` / :meth:`remove_gate` / :meth:`replace_gate` call keeps
    the driver/sink indices consistent, so queries such as
    :meth:`fanout_gates` are O(fanout).
    """

    def __init__(self, name: str, library: Optional[CellLibrary] = None) -> None:
        self.name = name
        self.library = library if library is not None else DEFAULT_LIBRARY
        self._gates: Dict[str, Gate] = {}
        self._primary_inputs: List[str] = []
        self._primary_outputs: List[str] = []
        #: net name -> gate name driving it ("" for primary inputs)
        self._driver: Dict[str, str] = {}
        #: net name -> set of gate names reading it
        self._sinks: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_primary_input(self, net: str) -> None:
        """Declare ``net`` as a primary input."""
        if net in self._driver:
            raise NetlistError(f"net {net!r} already driven; cannot be a primary input")
        self._primary_inputs.append(net)
        self._driver[net] = ""
        self._sinks.setdefault(net, set())

    def add_primary_output(self, net: str) -> None:
        """Declare ``net`` as a primary output (the net may be driven later)."""
        if net in self._primary_outputs:
            raise NetlistError(f"net {net!r} is already a primary output")
        self._primary_outputs.append(net)
        self._sinks.setdefault(net, set())

    def add_gate(
        self,
        name: str,
        gate_type: GateType,
        inputs: Sequence[str],
        output: str,
        attributes: Optional[Dict[str, object]] = None,
    ) -> Gate:
        """Create a gate, register its connectivity, and return it.

        Raises:
            NetlistError: on duplicate gate names, duplicate net drivers, or
                fan-in exceeding the library cell's limit.
        """
        if name in self._gates:
            raise NetlistError(f"duplicate gate name {name!r}")
        if output in self._driver and self._driver[output] != "":
            raise NetlistError(
                f"net {output!r} already driven by gate {self._driver[output]!r}"
            )
        if output in self._primary_inputs:
            raise NetlistError(f"net {output!r} is a primary input and cannot be driven")
        spec = self.library[gate_type]
        if not gate_type.is_port and spec.max_fanin and len(inputs) > spec.max_fanin:
            raise NetlistError(
                f"gate {name!r} of type {gate_type.value} has fan-in {len(inputs)} "
                f"(library limit {spec.max_fanin})"
            )
        gate = Gate(
            name=name,
            gate_type=gate_type,
            inputs=list(inputs),
            output=output,
            attributes=dict(attributes) if attributes else {},
        )
        self._gates[name] = gate
        self._driver[output] = name
        self._sinks.setdefault(output, set())
        for net in inputs:
            self._sinks.setdefault(net, set()).add(name)
        return gate

    def remove_gate(self, name: str) -> Gate:
        """Remove gate ``name`` and detach its connectivity; return the gate."""
        if name not in self._gates:
            raise NetlistError(f"unknown gate {name!r}")
        gate = self._gates.pop(name)
        if self._driver.get(gate.output) == name:
            self._driver[gate.output] = ""
            if gate.output not in self._primary_inputs:
                del self._driver[gate.output]
        for net in gate.inputs:
            sinks = self._sinks.get(net)
            if sinks is not None:
                sinks.discard(name)
        return gate

    def replace_gate(self, name: str, new_gate: Gate) -> None:
        """Replace gate ``name`` with ``new_gate`` (which may reuse the name)."""
        self.remove_gate(name)
        self.add_gate(
            new_gate.name,
            new_gate.gate_type,
            new_gate.inputs,
            new_gate.output,
            new_gate.attributes,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def primary_inputs(self) -> Tuple[str, ...]:
        """Ordered primary input net names."""
        return tuple(self._primary_inputs)

    @property
    def primary_outputs(self) -> Tuple[str, ...]:
        """Ordered primary output net names."""
        return tuple(self._primary_outputs)

    @property
    def gates(self) -> Tuple[Gate, ...]:
        """All gates, in insertion order."""
        return tuple(self._gates.values())

    @property
    def gate_names(self) -> Tuple[str, ...]:
        """All gate names, in insertion order."""
        return tuple(self._gates.keys())

    @property
    def nets(self) -> Tuple[str, ...]:
        """All net names known to the netlist."""
        names: Set[str] = set(self._driver)
        names.update(self._sinks)
        for gate in self._gates.values():
            names.update(gate.inputs)
            names.add(gate.output)
        return tuple(sorted(names))

    def __len__(self) -> int:
        return len(self._gates)

    def __contains__(self, gate_name: str) -> bool:
        return gate_name in self._gates

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates.values())

    def gate(self, name: str) -> Gate:
        """Return the gate named ``name``.

        Raises:
            NetlistError: if the gate does not exist.
        """
        try:
            return self._gates[name]
        except KeyError as exc:
            raise NetlistError(f"unknown gate {name!r}") from exc

    def has_net(self, net: str) -> bool:
        """Whether ``net`` appears anywhere in the netlist."""
        return net in self._driver or net in self._sinks

    def driver_of(self, net: str) -> Optional[Gate]:
        """Return the gate driving ``net``, or ``None`` for primary inputs /
        undriven nets."""
        name = self._driver.get(net, "")
        return self._gates.get(name) if name else None

    def sinks_of(self, net: str) -> Tuple[Gate, ...]:
        """Return the gates reading ``net``."""
        return tuple(self._gates[g] for g in sorted(self._sinks.get(net, ())))

    def fanin_gates(self, gate_name: str) -> Tuple[Gate, ...]:
        """Gates driving the inputs of ``gate_name`` (primary inputs excluded)."""
        gate = self.gate(gate_name)
        result = []
        for net in gate.inputs:
            drv = self.driver_of(net)
            if drv is not None:
                result.append(drv)
        return tuple(result)

    def fanout_gates(self, gate_name: str) -> Tuple[Gate, ...]:
        """Gates reading the output of ``gate_name``."""
        gate = self.gate(gate_name)
        return self.sinks_of(gate.output)

    def combinational_gates(self) -> Tuple[Gate, ...]:
        """All non-port, non-sequential gates."""
        return tuple(g for g in self._gates.values() if g.gate_type.is_combinational)

    def sequential_gates(self) -> Tuple[Gate, ...]:
        """All flip-flops."""
        return tuple(g for g in self._gates.values() if g.gate_type.is_sequential)

    def gate_type_counts(self) -> Dict[GateType, int]:
        """Histogram of gate types present in the netlist."""
        counts: Dict[GateType, int] = {}
        for gate in self._gates.values():
            counts[gate.gate_type] = counts.get(gate.gate_type, 0) + 1
        return counts

    def undriven_nets(self) -> Tuple[str, ...]:
        """Nets read by some gate or output port but driven by nothing."""
        driven = {n for n, d in self._driver.items()}
        read: Set[str] = set(self._primary_outputs)
        for gate in self._gates.values():
            read.update(gate.inputs)
        return tuple(sorted(read - driven))

    def dangling_nets(self) -> Tuple[str, ...]:
        """Nets driven by a gate but read by nothing (and not primary outputs)."""
        read: Set[str] = set(self._primary_outputs)
        for gate in self._gates.values():
            read.update(gate.inputs)
        driven = {g.output for g in self._gates.values()}
        return tuple(sorted(driven - read))

    # ------------------------------------------------------------------
    # Transformation helpers
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "Netlist":
        """Return an independent deep copy, optionally renamed."""
        clone = Netlist(name if name is not None else self.name, self.library)
        for net in self._primary_inputs:
            clone.add_primary_input(net)
        for net in self._primary_outputs:
            clone.add_primary_output(net)
        for gate in self._gates.values():
            clone.add_gate(gate.name, gate.gate_type, gate.inputs, gate.output,
                           gate.attributes)
        return clone

    def fresh_net_name(self, prefix: str = "n") -> str:
        """Return a net name not yet used in the netlist."""
        index = len(self._driver) + len(self._sinks)
        while True:
            candidate = f"{prefix}_{index}"
            if not self.has_net(candidate):
                return candidate
            index += 1

    def fresh_gate_name(self, prefix: str = "g") -> str:
        """Return a gate name not yet used in the netlist."""
        index = len(self._gates)
        while True:
            candidate = f"{prefix}_{index}"
            if candidate not in self._gates:
                return candidate
            index += 1

    def stats(self) -> Dict[str, object]:
        """Summary statistics used by reports and examples."""
        counts = self.gate_type_counts()
        return {
            "name": self.name,
            "gates": len(self._gates),
            "primary_inputs": len(self._primary_inputs),
            "primary_outputs": len(self._primary_outputs),
            "flip_flops": sum(c for t, c in counts.items() if t.is_sequential),
            "maskable_gates": sum(
                c for t, c in counts.items() if self.library.is_maskable(t)
            ),
            "gate_type_counts": {t.value: c for t, c in sorted(counts.items())},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Netlist(name={self.name!r}, gates={len(self._gates)}, "
            f"pis={len(self._primary_inputs)}, pos={len(self._primary_outputs)})"
        )
