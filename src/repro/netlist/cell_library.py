"""Standard-cell library used throughout the POLARIS reproduction.

The paper synthesizes benchmark designs with Synopsys Design Compiler against
a commercial standard-cell library and reports area (um^2), power (mW) and
delay (ns) of the resulting netlists.  This module provides the offline
substitute: a small, deterministic technology library that assigns every
supported gate type a per-instance area, an intrinsic propagation delay, a
switching energy (used by the dynamic power model) and a static leakage power.

The absolute values are loosely modelled on a generic 45 nm educational
library; what matters for the reproduction is that relative costs are
realistic (an XOR is more expensive than a NAND, a flip-flop dwarfs simple
combinational cells, masked composite gates cost several primitive gates).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple


class GateType(str, enum.Enum):
    """Enumeration of the primitive cell types supported by the flow.

    ``INPUT`` and ``OUTPUT`` are pseudo-cells used for primary ports; they
    carry no area/power/delay.  ``DFF`` is the single sequential element.
    The ``MASKED_*`` types are composite cells produced by the masking
    transform (:mod:`repro.masking`); they correspond to the Trichina
    constructions of the paper's Eq. (5) and the DOM future-work extension.
    """

    INPUT = "INPUT"
    OUTPUT = "OUTPUT"
    BUF = "BUF"
    NOT = "NOT"
    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    MUX = "MUX"
    DFF = "DFF"
    MASKED_AND = "MASKED_AND"
    MASKED_OR = "MASKED_OR"
    MASKED_XOR = "MASKED_XOR"
    MASKED_AND_DOM = "MASKED_AND_DOM"

    @property
    def is_port(self) -> bool:
        """``True`` for the INPUT/OUTPUT pseudo-cells."""
        return self in (GateType.INPUT, GateType.OUTPUT)

    @property
    def is_sequential(self) -> bool:
        """``True`` for state-holding cells (flip-flops)."""
        return self is GateType.DFF

    @property
    def is_masked(self) -> bool:
        """``True`` for composite side-channel masked cells."""
        return self in (
            GateType.MASKED_AND,
            GateType.MASKED_OR,
            GateType.MASKED_XOR,
            GateType.MASKED_AND_DOM,
        )

    @property
    def is_combinational(self) -> bool:
        """``True`` for ordinary combinational logic cells."""
        return not (self.is_port or self.is_sequential)


#: Gate types eligible for replacement by a masked composite cell.  XOR-type
#: gates are linear in GF(2) and are trivially masked; the non-linear gates
#: (AND/OR families) are the interesting targets, matching the paper.
MASKABLE_TYPES: Tuple[GateType, ...] = (
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
)

#: Mapping from a maskable primitive to the masked composite used to replace
#: it.  Inverted gates reuse the non-inverted masked core plus an inverter,
#: which the cost model accounts for via ``extra_inverter``.
MASKED_REPLACEMENT: Mapping[GateType, GateType] = {
    GateType.AND: GateType.MASKED_AND,
    GateType.NAND: GateType.MASKED_AND,
    GateType.OR: GateType.MASKED_OR,
    GateType.NOR: GateType.MASKED_OR,
    GateType.XOR: GateType.MASKED_XOR,
    GateType.XNOR: GateType.MASKED_XOR,
}


@dataclass(frozen=True)
class CellSpec:
    """Physical characteristics of one library cell.

    Attributes:
        gate_type: The cell's logical function.
        area: Cell area in square micrometres.
        delay: Intrinsic propagation delay in nanoseconds.
        switching_energy: Energy (arbitrary femtojoule-like units) consumed
            per output toggle; drives the dynamic power model.
        leakage_power: Static leakage in microwatts.
        max_fanin: Maximum number of data inputs the cell accepts.
    """

    gate_type: GateType
    area: float
    delay: float
    switching_energy: float
    leakage_power: float
    max_fanin: int

    def scaled_area(self, fanin: int) -> float:
        """Return area scaled for the actual fan-in of an instance.

        Multi-input cells beyond two inputs are modelled as trees of
        two-input cells, so area grows linearly with ``fanin - 1``.
        """
        if fanin <= 2:
            return self.area
        return self.area * (fanin - 1)

    def scaled_delay(self, fanin: int) -> float:
        """Return delay scaled for the actual fan-in of an instance."""
        if fanin <= 2:
            return self.delay
        # A balanced tree of 2-input cells has logarithmic depth.
        depth = (fanin - 1).bit_length()
        return self.delay * depth

    def scaled_energy(self, fanin: int) -> float:
        """Return switching energy scaled for the actual fan-in."""
        if fanin <= 2:
            return self.switching_energy
        return self.switching_energy * (fanin - 1)


_DEFAULT_CELLS: Tuple[CellSpec, ...] = (
    CellSpec(GateType.INPUT, area=0.0, delay=0.0, switching_energy=0.0,
             leakage_power=0.0, max_fanin=0),
    CellSpec(GateType.OUTPUT, area=0.0, delay=0.0, switching_energy=0.0,
             leakage_power=0.0, max_fanin=1),
    CellSpec(GateType.BUF, area=1.06, delay=0.030, switching_energy=0.8,
             leakage_power=0.012, max_fanin=1),
    CellSpec(GateType.NOT, area=0.80, delay=0.015, switching_energy=0.6,
             leakage_power=0.010, max_fanin=1),
    CellSpec(GateType.NAND, area=1.06, delay=0.022, switching_energy=1.0,
             leakage_power=0.014, max_fanin=4),
    CellSpec(GateType.AND, area=1.33, delay=0.035, switching_energy=1.2,
             leakage_power=0.016, max_fanin=4),
    CellSpec(GateType.NOR, area=1.06, delay=0.026, switching_energy=1.0,
             leakage_power=0.014, max_fanin=4),
    CellSpec(GateType.OR, area=1.33, delay=0.038, switching_energy=1.2,
             leakage_power=0.016, max_fanin=4),
    CellSpec(GateType.XOR, area=2.13, delay=0.052, switching_energy=2.0,
             leakage_power=0.024, max_fanin=3),
    CellSpec(GateType.XNOR, area=2.13, delay=0.055, switching_energy=2.0,
             leakage_power=0.024, max_fanin=3),
    CellSpec(GateType.MUX, area=2.39, delay=0.060, switching_energy=2.2,
             leakage_power=0.026, max_fanin=3),
    CellSpec(GateType.DFF, area=4.52, delay=0.120, switching_energy=3.6,
             leakage_power=0.055, max_fanin=1),
    # Masked composites.  The Trichina masked AND (Eq. 5 of the paper) is
    # built from four AND gates and four XOR gates plus a fresh random bit;
    # the figures below assume the merged/optimised complex-cell layout that
    # a standard-cell library would provide for the composite (sharing
    # transistors across the internal gates), not a naive discrete-gate
    # assembly, which keeps the design-level overheads in the range the
    # paper reports for its masked designs (Table IV).
    CellSpec(GateType.MASKED_AND, area=5.65, delay=0.095, switching_energy=5.2,
             leakage_power=0.075, max_fanin=5),
    CellSpec(GateType.MASKED_OR, area=5.95, delay=0.102, switching_energy=5.5,
             leakage_power=0.080, max_fanin=5),
    CellSpec(GateType.MASKED_XOR, area=3.40, delay=0.078, switching_energy=3.3,
             leakage_power=0.042, max_fanin=4),
    # Domain-oriented masking AND: one extra register stage, slightly larger.
    CellSpec(GateType.MASKED_AND_DOM, area=7.90, delay=0.130, switching_energy=6.8,
             leakage_power=0.105, max_fanin=5),
)


class CellLibrary:
    """A technology library mapping :class:`GateType` to :class:`CellSpec`.

    The library behaves like a read-only mapping and offers convenience
    accessors used by the power/overhead models.  A custom library can be
    constructed from any iterable of :class:`CellSpec`, e.g. to model a
    different technology node.
    """

    def __init__(self, cells: Optional[Iterable[CellSpec]] = None) -> None:
        specs = tuple(cells) if cells is not None else _DEFAULT_CELLS
        self._cells: Dict[GateType, CellSpec] = {c.gate_type: c for c in specs}
        missing = set(GateType) - set(self._cells)
        if missing:
            names = ", ".join(sorted(t.value for t in missing))
            raise ValueError(f"cell library is missing specs for: {names}")

    def __getitem__(self, gate_type: GateType) -> CellSpec:
        return self._cells[gate_type]

    def __contains__(self, gate_type: GateType) -> bool:
        return gate_type in self._cells

    def __iter__(self):
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    def area(self, gate_type: GateType, fanin: int = 2) -> float:
        """Area (um^2) of one instance of ``gate_type`` with ``fanin`` inputs."""
        return self._cells[gate_type].scaled_area(fanin)

    def delay(self, gate_type: GateType, fanin: int = 2) -> float:
        """Intrinsic delay (ns) of one instance of ``gate_type``."""
        return self._cells[gate_type].scaled_delay(fanin)

    def switching_energy(self, gate_type: GateType, fanin: int = 2) -> float:
        """Energy consumed per output toggle of ``gate_type``."""
        return self._cells[gate_type].scaled_energy(fanin)

    def leakage_power(self, gate_type: GateType) -> float:
        """Static leakage power (uW) of one instance of ``gate_type``."""
        return self._cells[gate_type].leakage_power

    def masked_equivalent(self, gate_type: GateType) -> GateType:
        """Return the masked composite cell that replaces ``gate_type``.

        Raises:
            KeyError: if ``gate_type`` has no masked equivalent.
        """
        return MASKED_REPLACEMENT[gate_type]

    def is_maskable(self, gate_type: GateType) -> bool:
        """Whether ``gate_type`` can be replaced by a masked composite."""
        return gate_type in MASKED_REPLACEMENT


#: Shared default library instance; cheap and immutable in practice.
DEFAULT_LIBRARY = CellLibrary()
