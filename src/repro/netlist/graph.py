"""Graph view of a netlist (the ``graphify`` step of the paper).

Algorithm 1 of the paper begins with ``Gr <- graphify(D)``: the gate-level
design is converted into a directed graph whose vertices are gates and whose
edges are the gate-to-gate interconnections.  The structural feature
extractor (:mod:`repro.features.structural`) performs BFS over this graph to
collect the locality-``L`` neighbourhood of each gate, and the reporting code
uses it for depth/fan-out statistics.

networkx is used as the graph backend so downstream code can reuse its
algorithms (BFS trees, topological sorting, connected components).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

import networkx as nx

from .netlist import Netlist


def netlist_to_graph(netlist: Netlist, include_ports: bool = True) -> nx.DiGraph:
    """Convert ``netlist`` to a directed gate graph.

    Vertices are gate names (plus pseudo-vertices ``PI:<net>`` / ``PO:<net>``
    for primary ports when ``include_ports`` is true); an edge ``u -> v``
    means the output of ``u`` feeds an input of ``v``.  Each gate vertex
    carries ``gate_type`` (string) and ``fanin`` attributes; each edge
    carries the connecting ``net`` name.
    """
    graph = nx.DiGraph(name=netlist.name)
    for gate in netlist.gates:
        graph.add_node(gate.name, gate_type=gate.gate_type.value, fanin=gate.fanin)

    if include_ports:
        for net in netlist.primary_inputs:
            graph.add_node(f"PI:{net}", gate_type="INPUT", fanin=0)
        for net in netlist.primary_outputs:
            graph.add_node(f"PO:{net}", gate_type="OUTPUT", fanin=1)

    for gate in netlist.gates:
        for net in gate.inputs:
            driver = netlist.driver_of(net)
            if driver is not None:
                graph.add_edge(driver.name, gate.name, net=net)
            elif include_ports and net in netlist.primary_inputs:
                graph.add_edge(f"PI:{net}", gate.name, net=net)
    if include_ports:
        for net in netlist.primary_outputs:
            driver = netlist.driver_of(net)
            if driver is not None:
                graph.add_edge(driver.name, f"PO:{net}", net=net)
    return graph


def combinational_graph(netlist: Netlist) -> nx.DiGraph:
    """Gate graph restricted to combinational cells with DFF edges cut.

    Flip-flop outputs are treated as pseudo primary inputs and flip-flop
    inputs as pseudo primary outputs, yielding a DAG suitable for
    levelisation and static timing analysis even for sequential designs.
    """
    graph = netlist_to_graph(netlist, include_ports=False)
    sequential = {g.name for g in netlist.sequential_gates()}
    dag = nx.DiGraph(name=netlist.name)
    dag.add_nodes_from(
        (n, d) for n, d in graph.nodes(data=True) if n not in sequential
    )
    for u, v, data in graph.edges(data=True):
        if u in sequential or v in sequential:
            continue
        dag.add_edge(u, v, **data)
    return dag


def neighborhood(graph: nx.DiGraph, gate_name: str, size: int) -> List[str]:
    """Return up to ``size`` gates around ``gate_name`` in BFS order.

    The BFS alternately explores successors and predecessors (treating the
    graph as undirected for locality purposes, matching the paper's
    "neighboring gates" description) and excludes the seed gate itself.
    Port pseudo-vertices are skipped.
    """
    if gate_name not in graph:
        raise KeyError(f"gate {gate_name!r} not in graph")
    visited: Set[str] = {gate_name}
    frontier: List[str] = [gate_name]
    ordered: List[str] = []
    while frontier and len(ordered) < size:
        next_frontier: List[str] = []
        for node in frontier:
            candidates = list(graph.successors(node)) + list(graph.predecessors(node))
            for other in candidates:
                if other in visited:
                    continue
                visited.add(other)
                next_frontier.append(other)
                if not other.startswith(("PI:", "PO:")):
                    ordered.append(other)
                    if len(ordered) >= size:
                        break
            if len(ordered) >= size:
                break
        frontier = next_frontier
    return ordered[:size]


def logic_depth(netlist: Netlist) -> int:
    """Longest combinational path length in gates (0 for empty designs)."""
    dag = combinational_graph(netlist)
    if dag.number_of_nodes() == 0:
        return 0
    depth = 0
    lengths: Dict[str, int] = {}
    for node in nx.topological_sort(dag):
        preds = list(dag.predecessors(node))
        lengths[node] = 1 + max((lengths[p] for p in preds), default=0)
        depth = max(depth, lengths[node])
    return depth


def fanout_histogram(netlist: Netlist) -> Dict[int, int]:
    """Histogram mapping fan-out count to number of gates with that fan-out."""
    histogram: Dict[int, int] = {}
    for gate in netlist.gates:
        fanout = len(netlist.fanout_gates(gate.name))
        histogram[fanout] = histogram.get(fanout, 0) + 1
    return histogram
