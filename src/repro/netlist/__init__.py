"""Gate-level netlist substrate: data model, I/O, graphs, and benchmarks."""

from .cell_library import (
    CellLibrary,
    CellSpec,
    DEFAULT_LIBRARY,
    GateType,
    MASKABLE_TYPES,
    MASKED_REPLACEMENT,
)
from .netlist import Gate, Netlist, NetlistError
from .parser import ParseError, parse_bench, parse_bench_file
from .writer import write_bench, write_bench_file
from .graph import (
    combinational_graph,
    fanout_histogram,
    logic_depth,
    neighborhood,
    netlist_to_graph,
)
from .validate import ValidationReport, validate_netlist
from .generators import (
    GATE_MIX_PROFILES,
    RandomLogicSpec,
    generate_array_multiplier,
    generate_mux_tree,
    generate_parity_tree,
    generate_random_logic,
    generate_ripple_adder,
    generate_sbox_logic,
    merge_netlists,
)
from .benchmarks import (
    EVALUATION_SUITE,
    TRAINING_SUITE,
    BenchmarkSpec,
    benchmark_spec,
    list_benchmarks,
    load_benchmark,
)

__all__ = [
    "CellLibrary",
    "CellSpec",
    "DEFAULT_LIBRARY",
    "GateType",
    "MASKABLE_TYPES",
    "MASKED_REPLACEMENT",
    "Gate",
    "Netlist",
    "NetlistError",
    "ParseError",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "write_bench_file",
    "combinational_graph",
    "fanout_histogram",
    "logic_depth",
    "neighborhood",
    "netlist_to_graph",
    "ValidationReport",
    "validate_netlist",
    "GATE_MIX_PROFILES",
    "RandomLogicSpec",
    "generate_array_multiplier",
    "generate_mux_tree",
    "generate_parity_tree",
    "generate_random_logic",
    "generate_ripple_adder",
    "generate_sbox_logic",
    "merge_netlists",
    "EVALUATION_SUITE",
    "TRAINING_SUITE",
    "BenchmarkSpec",
    "benchmark_spec",
    "list_benchmarks",
    "load_benchmark",
]
