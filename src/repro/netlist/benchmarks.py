"""Named benchmark registry (ISCAS-85 / EPFL / MIT-CEP stand-ins).

The paper trains POLARIS on six ISCAS-85 designs and evaluates on eleven
larger designs drawn from the EPFL combinational suite and the MIT-CEP
platform (``des3``, ``arbiter``, ``sin``, ``md5``, ``voter``, ``square``,
``sqrt``, ``div``, ``memctrl``, ``multiplier``, ``log2``).  The original
netlists require a synthesis flow that is unavailable offline, so each name
is mapped to a deterministic synthetic recipe that composes the generators
in :mod:`repro.netlist.generators` to approximate the design's character
(crypto, control, or arithmetic dominated) and its *relative* size ordering.

Absolute gate counts are scaled down so the full TVLA + masking flow runs on
a laptop; the ``scale`` argument lets experiments dial size up or down
uniformly, and the relative ordering of design sizes follows the paper's
Table IV area column (``des3`` smallest ... ``log2`` largest).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .generators import (
    RandomLogicSpec,
    generate_array_multiplier,
    generate_mux_tree,
    generate_parity_tree,
    generate_random_logic,
    generate_ripple_adder,
    generate_sbox_logic,
    generate_random_logic as _random_logic,
    merge_netlists,
)
from .netlist import Netlist


@dataclass(frozen=True)
class BenchmarkSpec:
    """Description of one named benchmark.

    Attributes:
        name: Benchmark name as used by the paper.
        suite: ``"training"`` (ISCAS-85-like) or ``"evaluation"``
            (EPFL / MIT-CEP-like).
        profile: Dominant logic character (``crypto``/``control``/
            ``arithmetic``/``random``).
        base_gates: Approximate combinational gate count at ``scale=1.0``.
        description: Human-readable provenance note.
    """

    name: str
    suite: str
    profile: str
    base_gates: int
    description: str


def _scaled(count: int, scale: float, minimum: int = 24) -> int:
    return max(minimum, int(round(count * scale)))


def _build_des3(scale: float, seed: int) -> Netlist:
    n = _scaled(130, scale)
    parts = [
        generate_sbox_logic(8, 6, seed=seed, name="sbox0"),
        generate_sbox_logic(8, 6, seed=seed + 1, name="sbox1"),
        generate_random_logic(
            RandomLogicSpec(n_gates=max(16, n - 90), n_inputs=24, n_outputs=12,
                            profile="crypto", seed=seed + 2), "perm"),
        generate_parity_tree(16, name="parity"),
    ]
    return merge_netlists("des3", parts, stitch_seed=seed)


def _build_arbiter(scale: float, seed: int) -> Netlist:
    n = _scaled(150, scale)
    parts = [
        generate_mux_tree(4, name="grant_mux"),
        generate_random_logic(
            RandomLogicSpec(n_gates=max(16, n - 70), n_inputs=20, n_outputs=10,
                            profile="control", seed=seed), "priority"),
    ]
    return merge_netlists("arbiter", parts, stitch_seed=seed)


def _build_sin(scale: float, seed: int) -> Netlist:
    n = _scaled(190, scale)
    parts = [
        generate_ripple_adder(8, name="cordic_add"),
        generate_random_logic(
            RandomLogicSpec(n_gates=max(16, n - 80), n_inputs=20, n_outputs=12,
                            profile="arithmetic", seed=seed), "poly"),
    ]
    return merge_netlists("sin", parts, stitch_seed=seed)


def _build_md5(scale: float, seed: int) -> Netlist:
    n = _scaled(330, scale)
    parts = [
        generate_ripple_adder(12, name="round_add"),
        generate_sbox_logic(8, 8, seed=seed, name="f_func"),
        generate_random_logic(
            RandomLogicSpec(n_gates=max(24, n - 160), n_inputs=32, n_outputs=16,
                            profile="crypto", seed=seed + 1), "rounds"),
        generate_parity_tree(12, name="mix"),
    ]
    return merge_netlists("md5", parts, stitch_seed=seed)


def _build_voter(scale: float, seed: int) -> Netlist:
    n = _scaled(380, scale)
    parts = [
        generate_mux_tree(3, name="select"),
        generate_random_logic(
            RandomLogicSpec(n_gates=max(24, n - 60), n_inputs=24, n_outputs=12,
                            profile="control", locality=0.5, seed=seed), "majority"),
    ]
    return merge_netlists("voter", parts, stitch_seed=seed)


def _build_square(scale: float, seed: int) -> Netlist:
    n = _scaled(640, scale)
    parts = [
        generate_array_multiplier(6, name="sq_core"),
        generate_random_logic(
            RandomLogicSpec(n_gates=max(24, n - 260), n_inputs=24, n_outputs=12,
                            profile="arithmetic", seed=seed), "post"),
    ]
    return merge_netlists("square", parts, stitch_seed=seed)


def _build_sqrt(scale: float, seed: int) -> Netlist:
    n = _scaled(560, scale)
    parts = [
        generate_ripple_adder(12, name="restoring_add"),
        generate_random_logic(
            RandomLogicSpec(n_gates=max(24, n - 110), n_inputs=28, n_outputs=14,
                            profile="arithmetic", locality=0.7, seed=seed), "iter"),
    ]
    return merge_netlists("sqrt", parts, stitch_seed=seed)


def _build_div(scale: float, seed: int) -> Netlist:
    n = _scaled(580, scale)
    parts = [
        generate_ripple_adder(12, name="sub_add"),
        generate_random_logic(
            RandomLogicSpec(n_gates=max(24, n - 110), n_inputs=28, n_outputs=14,
                            profile="arithmetic", locality=0.7, seed=seed + 3), "quotient"),
    ]
    return merge_netlists("div", parts, stitch_seed=seed)


def _build_memctrl(scale: float, seed: int) -> Netlist:
    n = _scaled(560, scale)
    parts = [
        generate_mux_tree(4, name="bank_mux"),
        generate_random_logic(
            RandomLogicSpec(n_gates=max(24, n - 90), n_inputs=32, n_outputs=16,
                            profile="control", register_fraction=0.08,
                            seed=seed), "fsm"),
    ]
    return merge_netlists("memctrl", parts, stitch_seed=seed)


def _build_multiplier(scale: float, seed: int) -> Netlist:
    n = _scaled(860, scale)
    parts = [
        generate_array_multiplier(8, name="mult_core"),
        generate_random_logic(
            RandomLogicSpec(n_gates=max(24, n - 470), n_inputs=24, n_outputs=12,
                            profile="arithmetic", seed=seed), "operand_prep"),
    ]
    return merge_netlists("multiplier", parts, stitch_seed=seed)


def _build_log2(scale: float, seed: int) -> Netlist:
    n = _scaled(1000, scale)
    parts = [
        generate_array_multiplier(6, name="log_mult"),
        generate_ripple_adder(10, name="log_add"),
        generate_random_logic(
            RandomLogicSpec(n_gates=max(24, n - 340), n_inputs=28, n_outputs=14,
                            profile="arithmetic", locality=0.65, seed=seed), "lut_logic"),
    ]
    return merge_netlists("log2", parts, stitch_seed=seed)


def _build_iscas(gate_count: int, profile: str, name: str, seed: int,
                 scale: float) -> Netlist:
    spec = RandomLogicSpec(
        n_gates=_scaled(gate_count, scale),
        n_inputs=max(8, _scaled(gate_count, scale) // 10),
        n_outputs=max(4, _scaled(gate_count, scale) // 20),
        profile=profile,
        seed=seed,
    )
    return generate_random_logic(spec, name)


_EVALUATION_BUILDERS: Dict[str, Callable[[float, int], Netlist]] = {
    "des3": _build_des3,
    "arbiter": _build_arbiter,
    "sin": _build_sin,
    "md5": _build_md5,
    "voter": _build_voter,
    "square": _build_square,
    "sqrt": _build_sqrt,
    "div": _build_div,
    "memctrl": _build_memctrl,
    "multiplier": _build_multiplier,
    "log2": _build_log2,
}

_TRAINING_PARAMS: Dict[str, Tuple[int, str]] = {
    # name -> (base gate count, gate-mix profile); sizes follow ISCAS-85 ordering.
    "c432": (100, "random"),
    "c499": (130, "crypto"),
    "c880": (160, "arithmetic"),
    "c1355": (190, "crypto"),
    "c1908": (220, "random"),
    "c6288": (280, "arithmetic"),
}

_SPECS: Dict[str, BenchmarkSpec] = {}
for _name, (_gates, _profile) in _TRAINING_PARAMS.items():
    _SPECS[_name] = BenchmarkSpec(
        name=_name, suite="training", profile=_profile, base_gates=_gates,
        description=f"ISCAS-85 {_name} stand-in (synthetic {_profile} logic)",
    )
_EVAL_META: Dict[str, Tuple[int, str, str]] = {
    "des3": (130, "crypto", "MIT-CEP triple-DES core stand-in"),
    "arbiter": (150, "control", "EPFL arbiter stand-in"),
    "sin": (190, "arithmetic", "EPFL sine core stand-in"),
    "md5": (330, "crypto", "MIT-CEP MD5 core stand-in"),
    "voter": (380, "control", "EPFL voter stand-in"),
    "square": (640, "arithmetic", "EPFL square stand-in"),
    "sqrt": (560, "arithmetic", "EPFL square-root stand-in"),
    "div": (580, "arithmetic", "EPFL divider stand-in"),
    "memctrl": (560, "control", "EPFL memory controller stand-in"),
    "multiplier": (860, "arithmetic", "EPFL multiplier stand-in"),
    "log2": (1000, "arithmetic", "EPFL log2 stand-in"),
}
for _name, (_gates, _profile, _desc) in _EVAL_META.items():
    _SPECS[_name] = BenchmarkSpec(
        name=_name, suite="evaluation", profile=_profile, base_gates=_gates,
        description=_desc,
    )

#: Names of the training-suite designs, smallest first (paper §V-A).
TRAINING_SUITE: Tuple[str, ...] = tuple(_TRAINING_PARAMS)

#: Names of the evaluation-suite designs in the order of the paper's Table II.
EVALUATION_SUITE: Tuple[str, ...] = (
    "des3", "arbiter", "sin", "md5", "voter", "square", "sqrt", "div",
    "memctrl", "multiplier", "log2",
)


def list_benchmarks(suite: Optional[str] = None) -> List[BenchmarkSpec]:
    """Return benchmark specs, optionally filtered by suite."""
    specs = list(_SPECS.values())
    if suite is not None:
        specs = [s for s in specs if s.suite == suite]
    return sorted(specs, key=lambda s: (s.suite, s.base_gates))


def benchmark_spec(name: str) -> BenchmarkSpec:
    """Return the spec of benchmark ``name``.

    Raises:
        KeyError: for unknown benchmark names.
    """
    if name not in _SPECS:
        known = ", ".join(sorted(_SPECS))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}")
    return _SPECS[name]


def load_benchmark(name: str, scale: float = 1.0, seed: int = 2025) -> Netlist:
    """Build and return the named benchmark netlist.

    Args:
        name: Benchmark name (see :func:`list_benchmarks`).
        scale: Uniform size multiplier; 1.0 reproduces the default sizes
            (already scaled down from the paper's synthesized designs).
        seed: RNG seed; the same (name, scale, seed) triple always yields an
            identical netlist.

    Raises:
        KeyError: for unknown benchmark names.
        ValueError: for non-positive ``scale``.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    spec = benchmark_spec(name)
    # A deterministic per-name offset (Python's hash() is salted per process).
    design_seed = seed + (zlib.crc32(name.encode()) % 10_000)
    if spec.suite == "training":
        gates, profile = _TRAINING_PARAMS[name]
        return _build_iscas(gates, profile, name, design_seed, scale)
    return _EVALUATION_BUILDERS[name](scale, design_seed)
