"""Writer emitting netlists back to the BENCH-style text format.

The writer is the inverse of :mod:`repro.netlist.parser`; the round-trip
``parse(write(netlist))`` reproduces the same connectivity (gate instance
names are canonicalised to ``g_<output-net>`` by the parser, so structural
rather than nominal equality is the preserved invariant).
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from .netlist import Netlist


def write_bench(netlist: Netlist) -> str:
    """Serialise ``netlist`` to BENCH text."""
    lines = [f"# name: {netlist.name}", f"# gates: {len(netlist)}"]
    for net in netlist.primary_inputs:
        lines.append(f"INPUT({net})")
    for net in netlist.primary_outputs:
        lines.append(f"OUTPUT({net})")
    lines.append("")
    for gate in netlist.gates:
        if gate.gate_type.is_port:
            continue
        args = ", ".join(gate.inputs)
        lines.append(f"{gate.output} = {gate.gate_type.value}({args})")
    lines.append("")
    return "\n".join(lines)


def write_bench_file(netlist: Netlist, path: Union[str, Path]) -> Path:
    """Write ``netlist`` to ``path`` in BENCH format and return the path."""
    path = Path(path)
    path.write_text(write_bench(netlist))
    return path
