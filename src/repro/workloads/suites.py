"""Workload suites used by the experiments.

The paper trains on six small ISCAS-85 designs and evaluates on eleven
larger EPFL / MIT-CEP designs (Table II).  This module wraps the benchmark
registry into the two suites with a uniform ``scale`` knob, so tests use
tiny designs, the default benches use medium designs, and a user with more
time can push ``scale`` up towards the paper's sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.benchmarks import (
    EVALUATION_SUITE,
    TRAINING_SUITE,
    benchmark_spec,
    load_benchmark,
)
from ..netlist.netlist import Netlist


@dataclass(frozen=True)
class WorkloadConfig:
    """Sizing and seeding of a workload suite.

    Attributes:
        scale: Uniform gate-count multiplier for every design.
        seed: Base seed forwarded to the generators.
        designs: Optional explicit subset of design names (defaults to the
            full suite).
    """

    scale: float = 1.0
    seed: int = 2025
    designs: Optional[Tuple[str, ...]] = None


def training_designs(config: Optional[WorkloadConfig] = None) -> List[Netlist]:
    """Instantiate the training-suite netlists (ISCAS-85 stand-ins)."""
    config = config if config is not None else WorkloadConfig()
    names = config.designs if config.designs is not None else TRAINING_SUITE
    return [load_benchmark(name, scale=config.scale, seed=config.seed)
            for name in names]


def evaluation_designs(config: Optional[WorkloadConfig] = None) -> List[Netlist]:
    """Instantiate the evaluation-suite netlists (EPFL / MIT-CEP stand-ins)."""
    config = config if config is not None else WorkloadConfig()
    names = config.designs if config.designs is not None else EVALUATION_SUITE
    return [load_benchmark(name, scale=config.scale, seed=config.seed)
            for name in names]


def suite_campaign_specs(designs: Sequence[Netlist],
                         config=None, n_shards: int = 1):
    """Content-hashed campaign specs for every design of a suite.

    Thin bridge into :mod:`repro.campaign`: the returned mapping (design
    name -> :class:`~repro.campaign.spec.CampaignSpec`) is what a
    scheduler fans out to a worker fleet, and the hashes are the keys the
    result store answers to.  Specs force streaming (they describe
    sharded/queued execution).
    """
    from ..campaign.spec import CampaignSpec
    return {design.name: CampaignSpec.from_netlist(design, config,
                                                   n_shards=n_shards,
                                                   force_streaming=True)
            for design in designs}


def submit_suite(root, designs: Sequence[Netlist], config=None,
                 n_shards: int = 1):
    """Submit one campaign per design of a suite under a shared root.

    Idempotent exactly like :func:`repro.campaign.runner.submit_campaign`
    (cache hits are reported, queued shards are never duplicated), so a
    nightly suite sweep can simply resubmit everything and only the
    changed designs cost anything.

    Returns:
        Mapping design name ->
        :class:`~repro.campaign.runner.SubmitOutcome`, in input order.
    """
    from ..campaign.runner import submit_campaign
    return {design.name: submit_campaign(root, netlist=design, config=config,
                                         n_shards=n_shards)
            for design in designs}


def suite_summary(designs: Sequence[Netlist]) -> List[Dict[str, object]]:
    """Per-design summary rows (name, gate counts, maskable gates)."""
    rows = []
    for design in designs:
        stats = design.stats()
        try:
            spec = benchmark_spec(design.name)
            stats["suite"] = spec.suite
            stats["profile"] = spec.profile
        except KeyError:
            stats["suite"] = "custom"
            stats["profile"] = "unknown"
        rows.append(stats)
    return rows
