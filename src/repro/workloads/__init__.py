"""Workload suites for training and evaluation."""

from .suites import (
    WorkloadConfig,
    evaluation_designs,
    submit_suite,
    suite_campaign_specs,
    suite_summary,
    training_designs,
)

__all__ = [
    "WorkloadConfig",
    "evaluation_designs",
    "submit_suite",
    "suite_campaign_specs",
    "suite_summary",
    "training_designs",
]
