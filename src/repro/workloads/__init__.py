"""Workload suites for training and evaluation."""

from .suites import (
    WorkloadConfig,
    evaluation_designs,
    suite_summary,
    training_designs,
)

__all__ = [
    "WorkloadConfig",
    "evaluation_designs",
    "suite_summary",
    "training_designs",
]
