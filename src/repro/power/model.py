"""Per-gate dynamic power models.

The paper measures leakage from gate-level power traces obtained with an
ASIC simulation flow.  This module provides the offline substitute: a
Hamming-distance (toggle) power model in which a gate contributes its
library switching energy whenever its output toggles between the previous
and the current stimulus of a trace.

Masked composite cells are treated specially: their power is computed from
the toggles of the *internal masked shares* of the Trichina construction
(paper Eq. 5) or of the DOM construction, using fresh per-trace randomness.
Because those internal signals are (re-)masked with fresh random bits, their
switching is largely independent of the processed data, which is exactly the
mechanism by which masking reduces power side-channel leakage.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..netlist.cell_library import CellLibrary, DEFAULT_LIBRARY, GateType
from ..netlist.netlist import Gate
from .bitops import FAST_NOISE_BITS

#: Process-wide cache of masked-composite toggle tables, keyed by
#: ``(model class, gate type, reuse_masks)``.  The tables are pure
#: functions of the share structure (no config or seed dependence), but
#: rebuilding one enumerates 16 * 64 mask/data combinations through the
#: share network — wasted work for every sharded/campaign worker that
#: rebuilds its generator.  Cached tables are returned read-only and
#: shared; consumers copy (or ``astype``) before deriving from them.
_TOGGLE_TABLE_CACHE: Dict[Tuple[type, GateType, bool], np.ndarray] = {}

#: Serialises cache fills: thread-backend shards construct their trace
#: generators concurrently, and an unguarded check-then-build would let two
#: threads enumerate (and publish) the same table.  Duplicate work is only
#: the benign half of that race — callers compare tables by identity in
#: tests, and a torn publish under free-threaded builds is not.
_TOGGLE_TABLE_LOCK = threading.Lock()


@dataclass(frozen=True)
class PowerModelConfig:
    """Configuration of the dynamic power model.

    Attributes:
        noise_sigma: Standard deviation of additive Gaussian measurement
            noise, expressed as a fraction of a NAND gate's switching energy.
        glitch_factor: Multiplier > 1 modelling extra glitch activity on
            gates with large fan-in cones (applied per fan-in beyond 2).
        static_fraction: Fraction of the cell's switching energy added to
            every trace regardless of toggling (static/short-circuit floor).
        mask_refresh: Whether masked cells draw fresh randomness every trace
            (True, the secure behaviour) or reuse one mask (False, a faulty
            masking implementation useful for negative testing).
        masked_residual: Residual data-dependent leakage of a masked cell,
            as a fraction of the replaced primitive's switching energy.  The
            masked composite's *data input pins* still carry unmasked
            signals (the transform masks gates, not wires), so their
            transitions — and the glitches they induce — remain visible in
            the power trace.  This is the well-known first-order glitch
            leakage of Trichina-style gates, and it is what makes *where*
            a masking gate is inserted matter: the benefit of masking a gate
            depends on the activity of its local neighbourhood, which is the
            structural signal POLARIS learns.  Values slightly above 1
            model glitch amplification inside the composite (its four AND
            gates all toggle on an unmasked input transition), so a *badly
            placed* masked gate can leak as much as the primitive it
            replaced.
        valiant_residual: Residual factor applied to cells whose
            ``protection_style`` attribute is ``"valiant"``.  The VALIANT
            baseline's gate-level countermeasures retain more data-dependent
            activity per protected gate than the Trichina composite,
            reflecting the relative per-gate leakage the paper reports for
            the two flows (Table II); an ablation bench sets the two
            residuals equal to show the flows then converge.
        masked_glitch_base: Baseline multiplier of the residual glitch
            leakage for masked cells whose drivers produce few glitches
            (AND/OR-dominated fan-in, primary inputs).
        masked_glitch_xor: Additional residual multiplier per unit fraction
            of XOR/XNOR drivers.  XOR-type drivers propagate every input
            transition (transition probability 1 per toggling input), so a
            masked composite fed by XOR logic sees far more glitching on its
            unmasked input pins than one fed by attenuating AND/OR logic.
            This is the structural effect that makes *where* a masking gate
            is placed matter, and therefore what the POLARIS model learns.
        load_factor: Additional switching energy per fan-out connection of
            an *unmasked* gate (interconnect/load capacitance).  High
            fan-out gates therefore dominate a design's leakage — and
            because a masked composite re-randomises its output with the
            fresh mask, that load switching stops being data-dependent once
            the gate is masked, making high-fan-out gates the most valuable
            masking targets.
        noise_mode: How measurement noise is synthesised.  ``"gaussian"``
            draws exact ziggurat normals (the reference behaviour);
            ``"fast"`` draws a scaled Binomial(16, 1/2) via popcounts of raw
            generator words, which has exactly the configured mean (0) and
            standard deviation (``noise_sigma``) and is indistinguishable
            from Gaussian noise for first-order TVLA statistics (excess
            kurtosis -1/8) at a fraction of the sampling cost; ``"auto"``
            (default) uses the fast sampler in the vectorised streaming
            engine and exact normals in the reference per-gate loop.
    """

    noise_sigma: float = 1.8
    glitch_factor: float = 0.15
    static_fraction: float = 0.05
    mask_refresh: bool = True
    masked_residual: float = 1.15
    valiant_residual: float = 2.30
    masked_glitch_base: float = 0.55
    masked_glitch_xor: float = 1.30
    load_factor: float = 0.70
    noise_mode: str = "auto"

    def __post_init__(self) -> None:
        if self.noise_mode not in ("auto", "gaussian", "fast"):
            raise ValueError(
                f"noise_mode must be 'auto', 'gaussian' or 'fast', "
                f"got {self.noise_mode!r}"
            )


class GatePowerModel:
    """Computes per-trace power for a single gate.

    The model is deliberately stateless across gates; the trace generator
    (:mod:`repro.power.traces`) instantiates it once and reuses it.
    """

    def __init__(self, library: Optional[CellLibrary] = None,
                 config: Optional[PowerModelConfig] = None,
                 seed: int = 0) -> None:
        self.library = library if library is not None else DEFAULT_LIBRARY
        self.config = config if config is not None else PowerModelConfig()
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def unmasked_coefficients(self, gate: Gate,
                              fanout: int = 1) -> Tuple[float, float]:
        """Per-gate ``(dynamic, static)`` power coefficients of a plain cell.

        ``power = dynamic * toggled + static``; the vectorised trace engine
        precomputes these once per gate and applies them by broadcasting.
        """
        energy = self.library.switching_energy(gate.gate_type, gate.fanin)
        glitch = 1.0 + self.config.glitch_factor * max(0, gate.fanin - 2)
        load = 1.0 + self.config.load_factor * max(0, fanout - 1)
        return energy * glitch * load, self.config.static_fraction * energy

    def unmasked_power(self, gate: Gate, toggled: np.ndarray,
                       fanout: int = 1) -> np.ndarray:
        """Power of an ordinary cell: energy on toggle plus static floor.

        Args:
            gate: The gate instance.
            toggled: Boolean array (n_traces,) of output toggles.
            fanout: Number of sinks the gate drives; every extra load adds
                ``load_factor`` times the cell energy to each output toggle.

        Returns:
            Float array (n_traces,) of noiseless power samples.
        """
        dynamic, static = self.unmasked_coefficients(gate, fanout)
        return dynamic * toggled.astype(float) + static

    def masked_power(
        self,
        gate: Gate,
        data_prev: Tuple[np.ndarray, np.ndarray],
        data_cur: Tuple[np.ndarray, np.ndarray],
        glitch_input_factor: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Power of a masked composite cell from its internal share toggles.

        Args:
            gate: The masked gate instance.
            data_prev: Tuple of the two data inputs' values in the previous
                stimulus (boolean arrays of shape (n_traces,)).
            data_cur: Same for the current stimulus.
            glitch_input_factor: Multiplier on the residual data-dependent
                leakage reflecting how glitchy the gate's fan-in cone is
                (computed by the trace generator from the driver gate types
                via :meth:`input_glitch_factor`).
            rng: Generator for the fresh mask bits; defaults to the model's
                own stream.  The chunked TVLA driver passes per-chunk
                ``SeedSequence``-spawned generators so draws are independent
                of how a campaign is chunked or sharded.

        Returns:
            Float array (n_traces,) of noiseless power samples.
        """
        a_prev, b_prev = data_prev
        a_cur, b_cur = data_cur
        n_traces = a_cur.shape[0]
        nodes_prev = self._masked_internal_nodes(gate.gate_type, a_prev, b_prev,
                                                 rng=rng)
        if self.config.mask_refresh:
            nodes_cur = self._masked_internal_nodes(gate.gate_type, a_cur, b_cur,
                                                    rng=rng)
        else:
            # Faulty masking: reuse the previous masks, so the shares track
            # the data and leakage persists (used by negative tests).
            nodes_cur = self._masked_internal_nodes(
                gate.gate_type, a_cur, b_cur, reuse_last_masks=True, rng=rng)
        toggles = np.zeros(n_traces, dtype=float)
        for name in nodes_cur:
            toggles += np.logical_xor(nodes_prev[name], nodes_cur[name]).astype(float)
        total_energy = self.library.switching_energy(gate.gate_type, gate.fanin)
        per_node_energy = total_energy / max(1, len(nodes_cur))
        static = self.config.static_fraction * total_energy

        # Residual first-order leakage: the composite's data input pins carry
        # unmasked values, so their transitions (and the glitches they feed
        # into the masked core) remain data dependent.
        residual_coeff = self.masked_residual_coefficient(
            gate, glitch_input_factor)
        residual = np.zeros(n_traces, dtype=float)
        if residual_coeff > 0:
            input_toggles = (
                np.logical_xor(a_prev, a_cur).astype(float)
                + np.logical_xor(b_prev, b_cur).astype(float)
            ) / 2.0
            residual = residual_coeff * input_toggles

        return per_node_energy * toggles + residual + static

    def masked_residual_coefficient(self, gate: Gate,
                                    glitch_input_factor: float = 1.0) -> float:
        """Coefficient of the residual data-dependent leakage of a masked cell.

        ``residual_power = coefficient * mean_input_toggles`` where the mean
        input toggle count per trace is in [0, 1].  Returned once per gate so
        the vectorised engine can apply it by broadcasting.
        """
        style = str(gate.attributes.get("protection_style", "trichina"))
        residual_factor = (self.config.valiant_residual if style == "valiant"
                           else self.config.masked_residual)
        if residual_factor <= 0:
            return 0.0
        original = gate.attributes.get("masked_from")
        try:
            original_type = GateType(original) if original else GateType.NAND
        except ValueError:
            original_type = GateType.NAND
        original_energy = self.library.switching_energy(original_type, 2)
        return residual_factor * glitch_input_factor * original_energy

    def input_glitch_factor(self, xor_driver_fraction: float) -> float:
        """Residual-leakage multiplier for a masked cell's fan-in glitchiness.

        Args:
            xor_driver_fraction: Fraction of the cell's data inputs driven
                by XOR/XNOR gates (in [0, 1]).
        """
        fraction = float(np.clip(xor_driver_fraction, 0.0, 1.0))
        return self.config.masked_glitch_base + self.config.masked_glitch_xor * fraction

    def add_noise(self, power: np.ndarray,
                  rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Add Gaussian measurement noise to a power sample array.

        Args:
            power: Noiseless samples.
            rng: Generator for the noise draws; defaults to the model's own
                sequential stream.
        """
        sigma = self.noise_sigma_abs()
        if sigma <= 0:
            return power
        rng = rng if rng is not None else self._rng
        return power + rng.normal(0.0, sigma, size=power.shape)

    # ------------------------------------------------------------------
    @staticmethod
    def _masked_nodes_for(
        gate_type: GateType,
        a: np.ndarray,
        b: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        z: np.ndarray,
    ) -> Dict[str, np.ndarray]:
        """Internal signal values of the masked composite for given masks.

        For the Trichina masked AND (Eq. 5 of the paper) with input masks
        ``x``/``y`` and output mask ``z``::

            a_hat = a ^ x            b_hat = b ^ y
            t1 = a_hat & b_hat       t2 = x & b_hat
            t3 = x & y               t4 = t3 ^ z
            t5 = t2 ^ t4             t6 = t1 ^ t5
            t7 = y & a_hat           out = t6 ^ t7   (= (a & b) ^ z)

        OR is computed via De Morgan on the masked AND; XOR is share-wise.
        DOM uses the same share structure plus a register stage (modelled as
        two additional internal nodes).  This is a pure function of the data
        and mask bits; it is used both per-trace (with freshly drawn mask
        arrays) and to enumerate the exact toggle-count lookup tables of the
        vectorised trace engine.
        """
        if gate_type is GateType.MASKED_XOR:
            a_hat = np.logical_xor(a, x)
            b_hat = np.logical_xor(b, y)
            out_share = np.logical_xor(a_hat, b_hat)
            mask_share = np.logical_xor(x, y)
            return {"a_hat": a_hat, "b_hat": b_hat,
                    "out_share": out_share, "mask_share": mask_share}

        if gate_type is GateType.MASKED_OR:
            # OR(a, b) = NOT(AND(NOT a, NOT b)); masked by complementing the
            # data shares, which keeps the same internal node structure.
            a = np.logical_not(a)
            b = np.logical_not(b)

        a_hat = np.logical_xor(a, x)
        b_hat = np.logical_xor(b, y)
        t1 = np.logical_and(a_hat, b_hat)
        t2 = np.logical_and(x, b_hat)
        t3 = np.logical_and(x, y)
        t4 = np.logical_xor(t3, z)
        t5 = np.logical_xor(t2, t4)
        t6 = np.logical_xor(t1, t5)
        t7 = np.logical_and(y, a_hat)
        out = np.logical_xor(t6, t7)
        nodes = {
            "a_hat": a_hat, "b_hat": b_hat, "t1": t1, "t2": t2, "t3": t3,
            "t4": t4, "t5": t5, "t6": t6, "t7": t7, "out": out,
        }
        if gate_type is GateType.MASKED_AND_DOM:
            # DOM adds a register stage on the cross-domain terms.
            nodes["reg_t2"] = t2.copy()
            nodes["reg_t7"] = t7.copy()
        return nodes

    def _masked_internal_nodes(
        self,
        gate_type: GateType,
        a: np.ndarray,
        b: np.ndarray,
        reuse_last_masks: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> Dict[str, np.ndarray]:
        """Masked-composite node values for one stimulus with drawn masks."""
        if reuse_last_masks and hasattr(self, "_last_masks"):
            x, y, z = self._last_masks  # type: ignore[attr-defined]
        else:
            rng = rng if rng is not None else self._rng
            size = a.shape
            x = rng.integers(0, 2, size=size, dtype=np.uint8).astype(bool)
            y = rng.integers(0, 2, size=size, dtype=np.uint8).astype(bool)
            z = rng.integers(0, 2, size=size, dtype=np.uint8).astype(bool)
            self._last_masks = (x, y, z)
        return self._masked_nodes_for(gate_type, a, b, x, y, z)

    def masked_node_count(self, gate_type: GateType) -> int:
        """Number of internal nodes of a masked composite cell."""
        probe = np.zeros(1, dtype=bool)
        return len(self._masked_nodes_for(gate_type, probe, probe,
                                          probe, probe, probe))

    def masked_toggle_table(self, gate_type: GateType,
                            reuse_masks: bool = False) -> np.ndarray:
        """Exact toggle-count lookup table of a masked composite cell.

        The total internal-node toggle count of a masked composite between
        the previous and the current stimulus is a deterministic function of
        the four data bits ``(a_prev, b_prev, a_cur, b_cur)`` and the mask
        bits.  This enumerates that function once so the vectorised engine
        can replace per-trace share evaluation with a uint8 table gather:
        drawing a uniform mask index and looking up the count is *exactly*
        distribution-equivalent to drawing the masks and evaluating the
        shares.

        Args:
            gate_type: A ``MASKED_*`` composite type.
            reuse_masks: When True (faulty masking, ``mask_refresh=False``)
                the previous and current evaluations share one mask triple,
                so the table is indexed by 3 mask bits instead of 6.

        Returns:
            ``uint8`` array of shape ``(16, 8)`` (``reuse_masks``) or
            ``(16, 64)``, indexed by ``[data_index, mask_index]`` with
            ``data_index = a_prev | b_prev << 1 | a_cur << 2 | b_cur << 3``.
            The array is **read-only** and shared process-wide: repeated
            generator construction (e.g. sharded worker rebuilds) reuses
            the cached table instead of re-enumerating the composite.
        """
        cache_key = (type(self), gate_type, bool(reuse_masks))
        cached = _TOGGLE_TABLE_CACHE.get(cache_key)
        if cached is not None:
            if cached.flags.writeable:
                raise RuntimeError(
                    f"cached toggle table for {cache_key!r} became writable; "
                    f"a consumer must have flipped its write flag instead of "
                    f"copying before mutation")
            return cached
        with _TOGGLE_TABLE_LOCK:
            cached = _TOGGLE_TABLE_CACHE.get(cache_key)
            if cached is not None:
                return cached
            table = self._build_toggle_table(gate_type, reuse_masks)
            table.setflags(write=False)
            _TOGGLE_TABLE_CACHE[cache_key] = table
        return table

    def _build_toggle_table(self, gate_type: GateType,
                            reuse_masks: bool) -> np.ndarray:
        """Enumerate the toggle table (no caching; see the public method)."""
        mask_bits = 3 if reuse_masks else 6
        n_mask = 1 << mask_bits
        index = np.arange(16 * n_mask)
        data = index >> mask_bits
        mask = index & (n_mask - 1)
        a_prev = (data & 1).astype(bool)
        b_prev = ((data >> 1) & 1).astype(bool)
        a_cur = ((data >> 2) & 1).astype(bool)
        b_cur = ((data >> 3) & 1).astype(bool)
        x_prev = (mask & 1).astype(bool)
        y_prev = ((mask >> 1) & 1).astype(bool)
        z_prev = ((mask >> 2) & 1).astype(bool)
        if reuse_masks:
            x_cur, y_cur, z_cur = x_prev, y_prev, z_prev
        else:
            x_cur = ((mask >> 3) & 1).astype(bool)
            y_cur = ((mask >> 4) & 1).astype(bool)
            z_cur = ((mask >> 5) & 1).astype(bool)
        nodes_prev = self._masked_nodes_for(gate_type, a_prev, b_prev,
                                            x_prev, y_prev, z_prev)
        nodes_cur = self._masked_nodes_for(gate_type, a_cur, b_cur,
                                           x_cur, y_cur, z_cur)
        toggles = np.zeros(index.shape, dtype=np.uint8)
        for name in nodes_cur:
            toggles += np.logical_xor(nodes_prev[name], nodes_cur[name])
        return toggles.reshape(16, n_mask)

    def noise_sigma_abs(self) -> float:
        """Absolute noise standard deviation (in switching-energy units)."""
        if self.config.noise_sigma <= 0:
            return 0.0
        return self.config.noise_sigma * self.library.switching_energy(
            GateType.NAND)

    def fast_noise_params(self) -> Tuple[float, float]:
        """``(scale, offset)`` of the popcount fast-noise sampler.

        A raw Binomial(16, 1/2) popcount times ``scale`` plus ``offset``
        has mean 0 and standard deviation :meth:`noise_sigma_abs` — the
        offset is the ``-E[count] * scale`` centring term the trace engine
        folds into its static offsets and value tables.  Defined once here
        so the vectorised engine, the reference loop and any future
        backend apply bit-identical constants.
        """
        scale = self.noise_sigma_abs() / np.sqrt(FAST_NOISE_BITS / 4.0)
        return scale, -(FAST_NOISE_BITS / 2.0) * scale
