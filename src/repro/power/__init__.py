"""Power modelling: per-gate traces, noise, and area/power/delay analysis."""

from .bitops import popcount16, popcount_rows
from .model import GatePowerModel, PowerModelConfig
from .traces import POWER_BACKENDS, PowerTraceGenerator, PowerTraces
from .overhead import (
    DEFAULT_ACTIVITY,
    DesignMetrics,
    analyze_design,
    critical_path_delay,
    overhead_report,
)

__all__ = [
    "popcount16",
    "popcount_rows",
    "GatePowerModel",
    "PowerModelConfig",
    "POWER_BACKENDS",
    "PowerTraceGenerator",
    "PowerTraces",
    "DEFAULT_ACTIVITY",
    "DesignMetrics",
    "analyze_design",
    "critical_path_delay",
    "overhead_report",
]
