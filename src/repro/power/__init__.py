"""Power modelling: per-gate traces, noise, and area/power/delay analysis."""

from .model import GatePowerModel, PowerModelConfig
from .traces import PowerTraceGenerator, PowerTraces
from .overhead import (
    DEFAULT_ACTIVITY,
    DesignMetrics,
    analyze_design,
    critical_path_delay,
    overhead_report,
)

__all__ = [
    "GatePowerModel",
    "PowerModelConfig",
    "PowerTraceGenerator",
    "PowerTraces",
    "DEFAULT_ACTIVITY",
    "DesignMetrics",
    "analyze_design",
    "critical_path_delay",
    "overhead_report",
]
