"""Power modelling: per-gate traces, noise, and area/power/delay analysis."""

from .bitops import popcount16, popcount_rows, words_for_units
from .ctrsample import SAMPLERS, CounterDraws, CounterStream
from .model import GatePowerModel, PowerModelConfig
from .traces import POWER_BACKENDS, PowerTraceGenerator, PowerTraces
from .overhead import (
    DEFAULT_ACTIVITY,
    DesignMetrics,
    analyze_design,
    critical_path_delay,
    overhead_report,
)

__all__ = [
    "popcount16",
    "popcount_rows",
    "words_for_units",
    "SAMPLERS",
    "CounterDraws",
    "CounterStream",
    "GatePowerModel",
    "PowerModelConfig",
    "POWER_BACKENDS",
    "PowerTraceGenerator",
    "PowerTraces",
    "DEFAULT_ACTIVITY",
    "DesignMetrics",
    "analyze_design",
    "critical_path_delay",
    "overhead_report",
]
