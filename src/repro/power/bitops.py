"""Shared bit-level primitives for packed-trace processing.

The simulator's compiled backend keeps the whole state matrix **bit-packed**
(eight stimulus vectors per byte, ``numpy.packbits`` MSB-first order), and
with ``power_backend="packed"`` the power engine consumes those bytes
directly.  The primitives every packed consumer needs — population counts
and padding-aware per-row reductions — live here, shared by

* the fast measurement-noise sampler of :mod:`repro.power.traces`
  (Binomial(16, 1/2) popcounts of raw generator words),
* the packed toggle-count fast path of
  :mod:`repro.simulation.switching` (``popcount(prev_row ^ cur_row)``
  per gate, no unpack), and
* anything else that reduces packed rows.

On NumPy >= 2.0 the counts come from the hardware-backed
``numpy.bitwise_count``; older NumPy falls back to one shared 16-bit
lookup table (:data:`POPCOUNT16`, 64 KiB, built once per process), which
also serves 8-bit inputs — a uint8 index simply never reaches the upper
half of the table.
"""

from __future__ import annotations

import numpy as np

def _build_popcount16() -> np.ndarray:
    """Build the 64 KiB 16-bit population-count table (read-only)."""
    table = (np.unpackbits(np.arange(65536, dtype=np.uint16).view(np.uint8))
             .reshape(65536, 16).sum(axis=1).astype(np.uint8))
    table.setflags(write=False)
    return table


if hasattr(np, "bitwise_count"):
    def popcount16(values: np.ndarray) -> np.ndarray:
        """Per-element population count of uint16 (or uint8) arrays."""
        return np.bitwise_count(values)

    def __getattr__(name: str) -> np.ndarray:
        # The table is dead weight next to the hardware-backed
        # bitwise_count, so it is built only if someone actually asks for
        # ``bitops.POPCOUNT16`` (then memoised).
        if name == "POPCOUNT16":
            table = _build_popcount16()
            globals()["POPCOUNT16"] = table
            return table
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
else:
    #: 16-bit population-count lookup table: ``POPCOUNT16[v]`` is the
    #: number of set bits of ``v`` for any ``v < 65536``.  Valid for uint8
    #: indices too.  (On NumPy >= 2.0 this attribute is built lazily.)
    POPCOUNT16: np.ndarray = _build_popcount16()

    def popcount16(values: np.ndarray) -> np.ndarray:
        """Per-element population count via the shared 16-bit LUT."""
        return POPCOUNT16[values]


def popcount_rows(packed: np.ndarray, n_vectors: int) -> np.ndarray:
    """Per-row set-bit counts of packed bit rows, ignoring padding bits.

    Args:
        packed: ``(..., n_bytes)`` uint8 array whose last axis holds
            ``numpy.packbits``-packed bits (MSB first); typically rows of —
            or XORs of rows of — a packed state matrix.
        n_vectors: Number of valid bits per row.  Bits beyond it in the
            last byte are padding with unspecified values (the packed
            sweep's inverting kernels flip them) and are masked out before
            counting.

    Returns:
        ``int64`` array of shape ``packed.shape[:-1]``.
    """
    packed = np.asarray(packed, dtype=np.uint8)
    n_bytes = (n_vectors + 7) // 8
    if packed.shape[-1] < n_bytes:
        raise ValueError(
            f"packed rows hold {packed.shape[-1] * 8} bits; "
            f"n_vectors={n_vectors} is out of range")
    packed = packed[..., :n_bytes]
    remainder = n_vectors % 8
    if remainder:
        packed = packed.copy()
        packed[..., -1] &= np.uint8((0xFF << (8 - remainder)) & 0xFF)
    return popcount16(packed).sum(axis=-1, dtype=np.int64)
