"""Shared bit-level primitives for packed-trace processing.

The simulator's compiled backend keeps the whole state matrix **bit-packed**
(eight stimulus vectors per byte, ``numpy.packbits`` MSB-first order), and
with ``power_backend="packed"`` the power engine consumes those bytes
directly.  The primitives every packed consumer needs — population counts
and padding-aware per-row reductions — live here, shared by

* the fast measurement-noise sampler of :mod:`repro.power.traces`
  (Binomial(16, 1/2) popcounts of raw generator words),
* the packed toggle-count fast path of
  :mod:`repro.simulation.switching` (``popcount(prev_row ^ cur_row)``
  per gate, no unpack), and
* anything else that reduces packed rows.

On NumPy >= 2.0 the counts come from the hardware-backed
``numpy.bitwise_count``; older NumPy falls back to one shared 16-bit
lookup table (:data:`POPCOUNT16`, 64 KiB, built once per process), which
also serves 8-bit inputs — a uint8 index simply never reaches the upper
half of the table.
"""

from __future__ import annotations

import numpy as np

#: Bit count of the fast measurement-noise sampler: one Binomial(16, 1/2)
#: popcount per sample, sliced out of raw 64-bit generator words (four
#: samples per word).  Shared by the trace engine (:mod:`.traces`) and the
#: power model's sampler parameters (:meth:`.model.GatePowerModel.
#: fast_noise_params`).
FAST_NOISE_BITS = 16


def words_for_units(n_units: int, dtype: np.dtype) -> int:
    """uint64 generator words covering ``n_units`` items of ``dtype``.

    Every raw-bits consumer draws whole 64-bit words and reinterprets them
    as smaller units (uint8 mask bytes, uint16 noise popcount fields), so
    the word count is ``ceil(n_units * itemsize / 8)`` — the single
    definition behind what used to be separate ``(count + 7) // 8`` and
    ``(count + 3) // 4`` expressions at the draw sites.  The final word's
    tail units beyond ``n_units`` are discarded by the caller's
    ``.view(unit)[:n_units]`` slice.
    """
    if n_units < 0:
        raise ValueError(f"n_units must be >= 0, got {n_units}")
    itemsize = np.dtype(dtype).itemsize
    if itemsize > 8 or 8 % itemsize:
        raise ValueError(
            f"dtype {np.dtype(dtype)} does not tile a 64-bit word")
    return (int(n_units) * itemsize + 7) // 8


def combine_transition_codes(shares: np.ndarray) -> np.ndarray:
    """Fuse four 0/1 share planes into 4-bit data-transition codes.

    Args:
        shares: ``(4, width, n)`` uint8 array of 0/1 values, in the order
            ``(a_prev, b_prev, a_cur, b_cur)``.

    Returns:
        ``(width, n)`` uint8 codes ``a_prev | b_prev<<1 | a_cur<<2 |
        b_cur<<3`` — the masked-composite table row index.

    Eight byte lanes are combined per operation through a ``uint64`` view
    when the plane size is word-aligned (byte values <= 1 shifted by <= 3
    never cross a byte boundary, so the wide ops are exact); other shapes
    take a byte-wise fallback that is bit-identical.
    """
    shares = np.ascontiguousarray(shares, dtype=np.uint8)
    if shares.ndim != 3 or shares.shape[0] != 4:
        raise ValueError(
            f"shares must have shape (4, width, n), got {shares.shape}")
    flat = shares.reshape(4, -1)
    if flat.shape[1] and flat.shape[1] % 8 == 0:
        lanes = flat.view(np.uint64)
        codes = (lanes[0] | (lanes[1] << np.uint64(1))
                 | (lanes[2] << np.uint64(2)) | (lanes[3] << np.uint64(3)))
        return codes.view(np.uint8).reshape(shares.shape[1:])
    return (flat[0] | (flat[1] << 1) | (flat[2] << 2)
            | (flat[3] << 3)).reshape(shares.shape[1:])


def _build_popcount16() -> np.ndarray:
    """Build the 64 KiB 16-bit population-count table (read-only)."""
    table = (np.unpackbits(np.arange(65536, dtype=np.uint16).view(np.uint8))
             .reshape(65536, 16).sum(axis=1).astype(np.uint8))
    table.setflags(write=False)
    return table


if hasattr(np, "bitwise_count"):
    def popcount16(values: np.ndarray) -> np.ndarray:
        """Per-element population count of uint16 (or uint8) arrays."""
        return np.bitwise_count(values)

    def __getattr__(name: str) -> np.ndarray:
        # The table is dead weight next to the hardware-backed
        # bitwise_count, so it is built only if someone actually asks for
        # ``bitops.POPCOUNT16`` (then memoised).
        if name == "POPCOUNT16":
            table = _build_popcount16()
            globals()["POPCOUNT16"] = table
            return table
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
else:
    #: 16-bit population-count lookup table: ``POPCOUNT16[v]`` is the
    #: number of set bits of ``v`` for any ``v < 65536``.  Valid for uint8
    #: indices too.  (On NumPy >= 2.0 this attribute is built lazily.)
    POPCOUNT16: np.ndarray = _build_popcount16()

    def popcount16(values: np.ndarray) -> np.ndarray:
        """Per-element population count via the shared 16-bit LUT."""
        return POPCOUNT16[values]


def popcount_rows(packed: np.ndarray, n_vectors: int) -> np.ndarray:
    """Per-row set-bit counts of packed bit rows, ignoring padding bits.

    Args:
        packed: ``(..., n_bytes)`` uint8 array whose last axis holds
            ``numpy.packbits``-packed bits (MSB first); typically rows of —
            or XORs of rows of — a packed state matrix.
        n_vectors: Number of valid bits per row.  Bits beyond it in the
            last byte are padding with unspecified values (the packed
            sweep's inverting kernels flip them) and are masked out before
            counting.

    Returns:
        ``int64`` array of shape ``packed.shape[:-1]``.
    """
    packed = np.asarray(packed, dtype=np.uint8)
    n_bytes = (n_vectors + 7) // 8
    if packed.shape[-1] < n_bytes:
        raise ValueError(
            f"packed rows hold {packed.shape[-1] * 8} bits; "
            f"n_vectors={n_vectors} is out of range")
    packed = packed[..., :n_bytes]
    remainder = n_vectors % 8
    if remainder:
        packed = packed.copy()
        packed[..., -1] &= np.uint8((0xFF << (8 - remainder)) & 0xFF)
    return popcount16(packed).sum(axis=-1, dtype=np.int64)
