"""Per-gate power-trace generation.

Combines the logic simulator, the stimulus campaigns and the gate power
model into the substitute for the paper's "10,000 simulated traces": for a
given :class:`~repro.simulation.vectors.TraceCampaign`, every trace yields
one power sample per gate (plus an aggregated design-level sample), which is
exactly what the TVLA engine consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..netlist.cell_library import CellLibrary, DEFAULT_LIBRARY, GateType
from ..netlist.netlist import Netlist
from ..simulation.simulator import LogicSimulator
from ..simulation.vectors import TraceCampaign
from .model import GatePowerModel, PowerModelConfig


@dataclass
class PowerTraces:
    """Power samples for one trace campaign.

    Attributes:
        label: Campaign label ("fixed", "random", ...).
        gate_names: Gate order corresponding to the matrix columns.
        per_gate: Float matrix of shape ``(n_traces, n_gates)``.
        total: Design-level power per trace (row sums of ``per_gate``).
    """

    label: str
    gate_names: Tuple[str, ...]
    per_gate: np.ndarray
    total: np.ndarray

    @property
    def n_traces(self) -> int:
        """Number of traces."""
        return int(self.per_gate.shape[0])

    @property
    def n_gates(self) -> int:
        """Number of gates with a power column."""
        return int(self.per_gate.shape[1])

    def gate_column(self, gate_name: str) -> np.ndarray:
        """Return the power samples of one gate.

        Raises:
            KeyError: if the gate has no column.
        """
        try:
            index = self.gate_names.index(gate_name)
        except ValueError as exc:
            raise KeyError(f"no power column for gate {gate_name!r}") from exc
        return self.per_gate[:, index]


class PowerTraceGenerator:
    """Generates :class:`PowerTraces` for a fixed netlist.

    The generator owns one :class:`LogicSimulator` (levelised once) and one
    :class:`GatePowerModel`; successive campaigns reuse both, which matters
    because the POLARIS/VALIANT flows call it many times per design.
    """

    def __init__(
        self,
        netlist: Netlist,
        library: Optional[CellLibrary] = None,
        config: Optional[PowerModelConfig] = None,
        seed: int = 0,
    ) -> None:
        self.netlist = netlist
        self.library = library if library is not None else netlist.library
        self.config = config if config is not None else PowerModelConfig()
        self.seed = seed
        self._simulator = LogicSimulator(netlist)
        self._model = GatePowerModel(self.library, self.config, seed=seed)
        #: Gates that receive a power column: everything but port pseudo-cells.
        self._gates = [g for g in netlist.gates if not g.gate_type.is_port]
        #: Per masked gate, the residual-glitch multiplier derived from how
        #: many of its data inputs are driven by XOR-type gates.
        self._glitch_factors: Dict[str, float] = {}
        #: Per gate, the number of sinks its output drives (load model).
        self._fanouts: Dict[str, int] = {}
        for gate in self._gates:
            self._fanouts[gate.name] = len(netlist.fanout_gates(gate.name))
            if not gate.gate_type.is_masked:
                continue
            drivers = netlist.fanin_gates(gate.name)[:2]
            if drivers:
                xor_fraction = sum(
                    d.gate_type in (GateType.XOR, GateType.XNOR) for d in drivers
                ) / len(drivers)
            else:
                xor_fraction = 0.0
            self._glitch_factors[gate.name] = self._model.input_glitch_factor(
                xor_fraction)

    @property
    def gate_names(self) -> Tuple[str, ...]:
        """Order of the per-gate power columns."""
        return tuple(g.name for g in self._gates)

    def generate(self, campaign: TraceCampaign) -> PowerTraces:
        """Simulate ``campaign`` and return its per-gate power traces."""
        prev_inputs, cur_inputs = campaign.as_dicts()
        previous = self._simulator.evaluate(prev_inputs)
        current = self._simulator.evaluate(cur_inputs)

        n_traces = campaign.n_traces
        per_gate = np.zeros((n_traces, len(self._gates)), dtype=float)
        for column, gate in enumerate(self._gates):
            if gate.gate_type.is_masked:
                a_net, b_net = gate.inputs[0], gate.inputs[1]
                power = self._model.masked_power(
                    gate,
                    (previous.net_values[a_net], previous.net_values[b_net]),
                    (current.net_values[a_net], current.net_values[b_net]),
                    glitch_input_factor=self._glitch_factors.get(gate.name, 1.0),
                )
            else:
                if gate.gate_type.is_sequential:
                    # A register toggles when its captured value changes.
                    toggled = np.logical_xor(
                        previous.net_values[gate.inputs[0]],
                        current.net_values[gate.inputs[0]],
                    )
                else:
                    toggled = np.logical_xor(
                        previous.net_values[gate.output],
                        current.net_values[gate.output],
                    )
                power = self._model.unmasked_power(
                    gate, toggled, fanout=self._fanouts.get(gate.name, 1))
            per_gate[:, column] = self._model.add_noise(power)

        total = per_gate.sum(axis=1)
        return PowerTraces(campaign.label, self.gate_names, per_gate, total)

    def generate_pair(
        self, campaigns: Tuple[TraceCampaign, TraceCampaign]
    ) -> Tuple[PowerTraces, PowerTraces]:
        """Generate traces for a (fixed, random) campaign pair."""
        first, second = campaigns
        return self.generate(first), self.generate(second)
