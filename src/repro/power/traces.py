"""Per-gate power-trace generation.

Combines the logic simulator, the stimulus campaigns and the gate power
model into the substitute for the paper's "10,000 simulated traces": for a
given :class:`~repro.simulation.vectors.TraceCampaign`, every trace yields
one power sample per gate (plus an aggregated design-level sample), which is
exactly what the TVLA engine consumes.

Two implementations coexist:

* the **vectorised engine** (default) evaluates the whole campaign with
  one-shot matrix operations in a gate-major layout — net values are
  stacked into one value matrix via precomputed row indices, per-gate power
  coefficients are applied by broadcasting, and masked composites are
  handled as per-type sub-groups through exact fused power-value lookup
  tables derived from
  :meth:`~repro.power.model.GatePowerModel.masked_toggle_table`;
* :meth:`PowerTraceGenerator.generate_loop` keeps the original per-gate
  Python loop as the reference implementation for regression tests and the
  microbenchmark comparison.

Simulation itself runs on the backend selected by ``sim_backend``: with the
default ``"compiled"`` fused kernel (:mod:`repro.simulation.compiled`) the
power plan adopts the simulator's state-matrix row numbering, so net values
flow from simulation into power extraction as a zero-copy view and the
whole chunk is processed by GIL-releasing numpy calls.

On top of that, ``power_backend`` selects how toggles are extracted from
the simulation results:

* ``"packed"`` (default) consumes the simulator's **bit-packed** state
  matrix directly (:attr:`SimulationResult.packed_matrix`): unmasked gate
  toggles are one XOR over packed bytes followed by a single
  ``numpy.unpackbits`` of just the watched rows, and masked-composite
  data codes are assembled from the packed share rows with shifts/ORs —
  the full ``(n_signals, batch)`` boolean state matrix is **never
  materialised**, which removes the pack/unpack boundary that used to
  cost ~30% of evaluate time at large batches;
* ``"unpacked"`` keeps the previous bool-matrix extraction as the
  bit-identical oracle (it is also what runs when the simulator fell back
  to the per-gate loop, which has no packed matrix).

Both backends draw masks and noise identically and produce bit-identical
traces — and therefore exactly equal t-values — pinned by
``tests/test_packed_power.py``.

:meth:`PowerTraceGenerator.generate_stream` slices a campaign into chunks so
the streaming TVLA driver (:func:`repro.tvla.assessment.assess_leakage`) can
fold traces into one-pass moment accumulators without ever materialising the
full ``(n_traces, n_gates)`` matrix.  Passing per-chunk ``seeds`` (spawned
from a :class:`numpy.random.SeedSequence` per ``(seed, class, group,
chunk)`` — the :func:`repro.tvla.assessment.chunk_seed_streams` contract)
makes every chunk's mask/noise draws a pure function of its global chunk
coordinates, which is what lets :mod:`repro.tvla.sharding` split one
campaign across workers and still produce t-values identical to the serial
run for a given seed.

Alternatively a :class:`~repro.power.ctrsample.CounterStream` replaces the
seed list (``TvlaConfig.sampler="counter"``, the default): each chunk's
mask bytes and noise popcount words then come straight off Philox counter
blocks addressed by ``(seed, class, group, chunk, lane)``, so layout
invariance holds by construction instead of by seed-tree discipline, and
the masked-composite gather indexes on the raw counter byte (``d << 8 |
byte`` into a 4096-entry replicated value table) — per-trace mask integers
never materialise.  The ``sampler="sequence"`` path below is kept
byte-for-byte as the frozen oracle of that stateless contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..netlist.cell_library import CellLibrary, GateType
from ..netlist.netlist import Gate, Netlist
from ..simulation.simulator import LogicSimulator, SimulationError, SimulationResult
from ..simulation.vectors import TraceCampaign
from .bitops import (FAST_NOISE_BITS, combine_transition_codes, popcount16,
                     words_for_units)
from .ctrsample import CounterDraws, CounterStream
from .model import GatePowerModel, PowerModelConfig

#: Toggle-extraction backends accepted by :class:`PowerTraceGenerator` (and,
#: downstream, by ``TvlaConfig.power_backend``).
POWER_BACKENDS = ("packed", "unpacked")

#: Full range of a uint64 word, used to draw raw random bits.
_U64_MAX = np.iinfo(np.uint64).max
#: Bit count of the fast-noise popcount sampler (Binomial(16, 1/2) per
#: sample, sliced out of raw 64-bit generator words); canonical definition
#: lives in :mod:`repro.power.bitops`.
_FAST_NOISE_BITS = FAST_NOISE_BITS


@dataclass
class PowerTraces:
    """Power samples for one trace campaign.

    Attributes:
        label: Campaign label ("fixed", "random", ...).
        gate_names: Gate order corresponding to the matrix columns.
        per_gate: Float matrix of shape ``(n_traces, n_gates)``.
        total: Design-level power per trace (row sums of ``per_gate``).
    """

    label: str
    gate_names: Tuple[str, ...]
    per_gate: np.ndarray
    total: np.ndarray

    @cached_property
    def _name_index(self) -> Dict[str, int]:
        # Cached name -> column dict: gate lookups are O(1) even when the
        # masking flow queries every gate of a large design.
        return {name: i for i, name in enumerate(self.gate_names)}

    @property
    def n_traces(self) -> int:
        """Number of traces."""
        return int(self.per_gate.shape[0])

    @property
    def n_gates(self) -> int:
        """Number of gates with a power column."""
        return int(self.per_gate.shape[1])

    def gate_column(self, gate_name: str) -> np.ndarray:
        """Return the power samples of one gate.

        Raises:
            KeyError: if the gate has no column.
        """
        index = self._name_index.get(gate_name)
        if index is None:
            raise KeyError(f"no power column for gate {gate_name!r}")
        return self.per_gate[:, index]


class _MaskedSubgroup:
    """Vectorised-plan bookkeeping for one masked composite sub-group.

    Masked gates are grouped by ``(gate type, fan-in, residual
    coefficient)``.  Within such a sub-group every power-model coefficient
    is a scalar, so the noiseless power of a (trace, gate) cell is a pure
    function of its 4 data-transition bits and its mask bits — precomputed
    into one fused float value table::

        value[d, m] = per_node_energy * toggle_count(d, m)
                      + residual_coeff/2 * input_toggles(d) + static_floor

    Trace generation then reduces to one table gather per cell.
    """

    __slots__ = ("gate_type", "row_slice", "a_rows", "b_rows",
                 "value_table", "mask_bits")

    def __init__(self, gate_type: GateType, row_slice: slice,
                 a_rows: np.ndarray, b_rows: np.ndarray,
                 value_table: np.ndarray, mask_bits: int) -> None:
        self.gate_type = gate_type
        #: Row range of this sub-group in the gate-major trace matrix.
        self.row_slice = row_slice
        #: Row indices of the two data-input nets in the net-value matrix
        #: built once per campaign evaluation.
        self.a_rows = a_rows
        self.b_rows = b_rows
        #: Flattened ``(16 << mask_bits,)`` fused power-value table.
        self.value_table = value_table
        self.mask_bits = mask_bits


class PowerTraceGenerator:
    """Generates :class:`PowerTraces` for a fixed netlist.

    The generator owns one :class:`LogicSimulator` (levelised once) and one
    :class:`GatePowerModel`; successive campaigns reuse both, which matters
    because the POLARIS/VALIANT flows call it many times per design.

    Args:
        netlist: Design to trace.
        library: Cell library (defaults to the netlist's).
        config: Power-model configuration.
        seed: RNG seed for masks and measurement noise.
        vectorised: Use the one-shot matrix engine (default).  When False,
            :meth:`generate` falls back to the reference per-gate loop.
        trace_dtype: dtype of the per-gate trace matrix.  ``float32``
            (default) halves memory traffic on the hot path; statistics are
            still computed in float64 downstream.
        sim_backend: Logic-simulation backend (``"compiled"`` — the fused
            levelised kernel, default — or ``"loop"``, the per-gate
            reference sweep); see :class:`~repro.simulation.LogicSimulator`.
            With the compiled backend the power plan indexes the
            simulator's state matrix directly, so no per-net value
            marshalling happens between simulation and power extraction.
        power_backend: Toggle-extraction backend: ``"packed"`` (default)
            reads the simulator's bit-packed state matrix directly, so the
            boolean state matrix is never materialised; ``"unpacked"``
            keeps the bool-matrix extraction as the bit-identical oracle.
            ``"packed"`` silently resolves to ``"unpacked"`` when no packed
            matrix exists (loop simulation backend, or a netlist the
            planner could not fuse) — see :attr:`resolved_power_backend`.
            Both backends generate bit-identical traces.

    Raises:
        SimulationError: if a masked gate has fewer than two data inputs
            (malformed masked composite).
        ValueError: for unknown ``sim_backend``/``power_backend``
            selectors.
    """

    def __init__(
        self,
        netlist: Netlist,
        library: Optional[CellLibrary] = None,
        config: Optional[PowerModelConfig] = None,
        seed: int = 0,
        vectorised: bool = True,
        trace_dtype: np.dtype = np.float32,
        sim_backend: str = "compiled",
        power_backend: str = "packed",
    ) -> None:
        if power_backend not in POWER_BACKENDS:
            raise ValueError(
                f"power_backend must be one of {POWER_BACKENDS}, "
                f"got {power_backend!r}")
        self.netlist = netlist
        self.library = library if library is not None else netlist.library
        self.config = config if config is not None else PowerModelConfig()
        self.seed = seed
        self.vectorised = bool(vectorised)
        self.trace_dtype = np.dtype(trace_dtype)
        self.sim_backend = sim_backend
        self.power_backend = power_backend
        self._simulator = LogicSimulator(netlist, backend=sim_backend)
        self._model = GatePowerModel(self.library, self.config, seed=seed)

        unmasked: List[Gate] = []
        masked: List[Gate] = []
        for gate in netlist.gates:
            if gate.gate_type.is_port:
                continue
            if gate.gate_type.is_masked:
                if len(gate.inputs) < 2:
                    raise SimulationError(
                        f"masked gate {gate.name!r} of type "
                        f"{gate.gate_type.value} has {len(gate.inputs)} "
                        f"input(s); masked composites require two data "
                        f"inputs (a, b)")
                masked.append(gate)
            else:
                unmasked.append(gate)

        #: Per gate, the number of sinks its output drives (load model).
        self._fanouts: Dict[str, int] = {}
        #: Per masked gate, the residual-glitch multiplier derived from how
        #: many of its data inputs are driven by XOR-type gates.
        self._glitch_factors: Dict[str, float] = {}
        for gate in unmasked + masked:
            self._fanouts[gate.name] = len(netlist.fanout_gates(gate.name))
            if not gate.gate_type.is_masked:
                continue
            drivers = netlist.fanin_gates(gate.name)[:2]
            if drivers:
                xor_fraction = sum(
                    d.gate_type in (GateType.XOR, GateType.XNOR) for d in drivers
                ) / len(drivers)
            else:
                xor_fraction = 0.0
            self._glitch_factors[gate.name] = self._model.input_glitch_factor(
                xor_fraction)

        self._build_plan(unmasked, masked)

    # ------------------------------------------------------------------
    # Vectorised plan
    # ------------------------------------------------------------------
    def _build_plan(self, unmasked: List[Gate], masked: List[Gate]) -> None:
        config = self.config
        # Unique nets whose values feed the engine; both the unmasked watch
        # rows and the masked data inputs index into one net-value matrix.
        # With the compiled simulation backend that matrix *is* the
        # simulator's state matrix (rows adopt the plan's signal numbering,
        # undriven nets share its constant-zero row), so per-evaluation
        # marshalling is a zero-copy view; with the loop backend a compact
        # matrix is filled from the net-value dict per evaluation.
        sim_plan = self._simulator.plan
        net_positions: Dict[str, int] = {}
        sim_nets: List[str] = []

        if sim_plan is not None:
            plan_index = sim_plan.signal_index

            def net_row(net: str) -> int:
                return plan_index.get(net, 0)
        else:
            def net_row(net: str) -> int:
                position = net_positions.get(net)
                if position is None:
                    position = len(sim_nets)
                    net_positions[net] = position
                    sim_nets.append(net)
                return position

        # Unmasked gates: one watch net per gate (the output for
        # combinational cells, the data input for registers) and broadcast
        # power coefficients.
        watch_rows: List[int] = []
        dynamic: List[float] = []
        static: List[float] = []
        for gate in unmasked:
            watch = gate.inputs[0] if gate.gate_type.is_sequential else gate.output
            watch_rows.append(net_row(watch))
            dyn, stat = self._model.unmasked_coefficients(
                gate, fanout=self._fanouts.get(gate.name, 1))
            dynamic.append(dyn)
            static.append(stat)
        self._watch_rows = np.asarray(watch_rows, dtype=np.intp)
        self._unmasked_dynamic = np.asarray(
            dynamic, dtype=np.float64).reshape(-1, 1)
        self._unmasked_static = np.asarray(
            static, dtype=np.float64).reshape(-1, 1)

        # Masked gates: group by (type, fan-in, residual coefficient) so
        # every coefficient is scalar within a sub-group and the power
        # value can be precomputed into one fused lookup table.
        subgroup_gates: Dict[Tuple[GateType, int, float], List[Gate]] = {}
        for gate in masked:
            beta = self._model.masked_residual_coefficient(
                gate, self._glitch_factors.get(gate.name, 1.0)) / 2.0
            key = (gate.gate_type, gate.fanin, beta)
            subgroup_gates.setdefault(key, []).append(gate)

        #: Gates that receive a power column: unmasked gates first (in
        #: netlist order), then one contiguous range per masked sub-group.
        self._gates: List[Gate] = list(unmasked)
        self._masked_subgroups: List[_MaskedSubgroup] = []
        mask_bits = 6 if config.mask_refresh else 3
        toggle_tables: Dict[GateType, np.ndarray] = {}
        # input_toggles(d) for the residual term, indexed by the 4-bit
        # data-transition code d = a_p | b_p<<1 | a_c<<2 | b_c<<3.
        data_codes = np.arange(16)
        input_toggles = (((data_codes ^ (data_codes >> 2)) & 1)
                         + (((data_codes >> 1) ^ (data_codes >> 3)) & 1))
        row = len(unmasked)
        for (gate_type, fanin, beta), gates in subgroup_gates.items():
            table = toggle_tables.get(gate_type)
            if table is None:
                table = self._model.masked_toggle_table(
                    gate_type, reuse_masks=not config.mask_refresh)
                toggle_tables[gate_type] = table
            n_nodes = max(1, self._model.masked_node_count(gate_type))
            energy = self.library.switching_energy(gate_type, fanin)
            value_table = (energy / n_nodes * table.astype(np.float64)
                           + beta * input_toggles[:, np.newaxis]
                           + config.static_fraction * energy)
            self._masked_subgroups.append(_MaskedSubgroup(
                gate_type=gate_type,
                row_slice=slice(row, row + len(gates)),
                a_rows=np.asarray([net_row(g.inputs[0]) for g in gates],
                                  dtype=np.intp),
                b_rows=np.asarray([net_row(g.inputs[1]) for g in gates],
                                  dtype=np.intp),
                value_table=np.ascontiguousarray(value_table.reshape(-1)),
                mask_bits=mask_bits,
            ))
            self._gates.extend(gates)
            row += len(gates)
        self._sim_nets: Tuple[str, ...] = tuple(sim_nets)
        #: Lazily built per-subgroup trace-dtype value tables (noise offset
        #: folded in) used by the packed extraction path; see
        #: :meth:`_packed_value_tables`.
        self._packed_tables: Optional[List[np.ndarray]] = None
        #: Lazily built per-subgroup 4096-entry tables indexed by
        #: ``d << 8 | raw_mask_byte`` for the counter sampler; see
        #: :meth:`_counter_value_tables`.
        self._counter_tables: Optional[List[np.ndarray]] = None

    @property
    def resolved_power_backend(self) -> str:
        """The toggle-extraction backend that will actually run.

        ``"packed"`` requires the compiled simulation plan (the packed
        state matrix is its output format) and the vectorised engine;
        otherwise the requested ``"packed"`` degrades to ``"unpacked"``,
        mirroring the compiled->loop simulation fallback.
        """
        if (self.power_backend == "packed" and self.vectorised
                and self._simulator.plan is not None):
            return "packed"
        return "unpacked"

    @property
    def gate_names(self) -> Tuple[str, ...]:
        """Order of the per-gate power columns."""
        return tuple(g.name for g in self._gates)

    @property
    def n_gates(self) -> int:
        """Number of gates with a power column."""
        return len(self._gates)

    def _resolved_noise_mode(self, vectorised: bool) -> str:
        if self.config.noise_sigma <= 0:
            return "none"
        mode = self.config.noise_mode
        if mode == "auto":
            return "fast" if vectorised else "gaussian"
        return mode

    def _packed_value_tables(self, noise_offset: float) -> List[np.ndarray]:
        """Per-subgroup value tables in trace dtype, noise offset folded in.

        The tables are pure functions of the (frozen) power config, so the
        packed path computes them once per generator instead of re-casting
        1 KiB of float64 per subgroup per chunk.  Values are exactly what
        the per-call cast of the unpacked oracle produces.  Built with a
        benign idempotent race (local list, atomic publish), so one
        generator can be shared by concurrent shard threads.
        """
        cached = self._packed_tables
        if cached is None:
            cached = []
            for sub in self._masked_subgroups:
                table = sub.value_table.astype(self.trace_dtype)
                if noise_offset:
                    table += self.trace_dtype.type(noise_offset)
                table.setflags(write=False)
                cached.append(table)
            self._packed_tables = cached
        return cached

    def _counter_value_tables(self, noise_offset: float) -> List[np.ndarray]:
        """Per-subgroup value tables indexed by ``d << 8 | raw_mask_byte``.

        The counter sampler feeds the table gather with **raw** uint8
        counter bytes instead of ``byte & (2**mask_bits - 1)`` indices;
        replicating each 16 x 2**mask_bits table along the mask axis to
        16 x 256 entries makes ``table[d << 8 | byte]`` hit the same value
        for every byte with equal low bits, so the masking ``&`` pass (and
        the per-trace mask integer it produced) disappears from the hot
        loop.  Entries are computed exactly as :meth:`_packed_value_tables`
        computes theirs (same cast, same offset fold), so counter traces
        are identical across the packed and unpacked backends.  Built with
        the same benign idempotent race (atomic publish).
        """
        cached = self._counter_tables
        if cached is None:
            cached = []
            for sub in self._masked_subgroups:
                period = 1 << sub.mask_bits
                table = np.tile(sub.value_table.reshape(16, period),
                                (1, 256 // period)).reshape(-1)
                table = table.astype(self.trace_dtype)
                if noise_offset:
                    table += self.trace_dtype.type(noise_offset)
                table.setflags(write=False)
                cached.append(table)
            self._counter_tables = cached
        return cached

    @staticmethod
    def _fast_noise_counts(rng: np.random.Generator,
                           shape: Tuple[int, ...]) -> np.ndarray:
        """Raw Binomial(16, 1/2) popcounts for the fast noise sampler."""
        count = int(np.prod(shape)) if shape else 1
        words = rng.integers(0, _U64_MAX, size=words_for_units(count, np.uint16),
                             dtype=np.uint64, endpoint=True)
        return popcount16(words.view(np.uint16)[:count].reshape(shape))

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate(self, campaign: TraceCampaign,
                 rng: Optional[np.random.Generator] = None,
                 draws: Optional[CounterDraws] = None) -> PowerTraces:
        """Simulate ``campaign`` and return its per-gate power traces.

        Args:
            campaign: The stimulus campaign to trace.
            rng: Generator for mask and noise draws.  Defaults to the
                model's own sequential stream (legacy behaviour); the
                chunked TVLA driver passes per-chunk spawned generators so
                draws do not depend on chunk/shard layout.  With an
                explicit ``rng`` the vectorised engine mutates no generator
                state, so one :class:`PowerTraceGenerator` can be shared by
                concurrent shard threads.
            draws: Counter-sampler draws for this campaign's coordinates
                (``sampler="counter"``): mask bytes and noise words come
                straight off Philox counter blocks instead of ``rng``.
                Mutually exclusive with ``rng`` and — like the packed
                extraction backend — only meaningful for the vectorised
                engine.

        Raises:
            ValueError: if both ``rng`` and ``draws`` are passed, or
                ``draws`` is passed to the non-vectorised engine.
        """
        if draws is not None:
            if rng is not None:
                raise ValueError("pass either rng or draws, not both")
            if not self.vectorised:
                raise ValueError(
                    "counter-sampler draws require the vectorised engine")
        if not self.vectorised:
            return self.generate_loop(campaign, rng=rng)
        return self._generate_vectorised(campaign, rng=rng, draws=draws)

    def generate_stream(
        self,
        campaign: TraceCampaign,
        chunk_traces: int,
        seeds: Optional[Sequence[Union[int, np.random.SeedSequence]]] = None,
        counter_stream: Optional[CounterStream] = None,
        first_chunk: int = 0,
    ) -> Iterator[PowerTraces]:
        """Yield ``campaign``'s traces in chunks of at most ``chunk_traces``.

        Memory use is bounded by ``chunk_traces * n_gates`` samples, which
        is what makes paper-scale streaming TVLA campaigns O(n_gates) in the
        number of traces.

        Args:
            campaign: The stimulus campaign (possibly a shard's sub-range).
            chunk_traces: Maximum traces per yielded block.
            seeds: Optional per-chunk RNG seeds (ints or ``SeedSequence``
                objects), one per chunk of this campaign in order.  When
                given, each chunk's mask/noise draws come from a fresh
                ``numpy.random.default_rng(seed)`` instead of the model's
                sequential stream, making the generated traces independent
                of how the surrounding campaign was chunked or sharded.
                The TVLA drivers pass the streams spawned per ``(seed,
                class, group, chunk)`` by
                :func:`repro.tvla.assessment.chunk_seed_streams`; shards of
                one campaign hand in the sub-range of streams matching
                their global chunk offset, never streams of their own.
            counter_stream: Counter-sampler alternative to ``seeds``
                (``sampler="counter"``): each chunk's draws are read
                directly off the stream's Philox counter blocks at global
                chunk index ``first_chunk + i``, no seed list needed.
                Mutually exclusive with ``seeds``.
            first_chunk: Global index of this campaign's first chunk
                (shards pass their chunk offset); only meaningful with
                ``counter_stream`` — the sequence path encodes the offset
                in the ``seeds`` sub-range instead.

        Raises:
            ValueError: if ``chunk_traces < 1``, ``seeds`` does not have
                exactly one entry per chunk, or both ``seeds`` and
                ``counter_stream`` are passed.
        """
        if chunk_traces < 1:
            raise ValueError("chunk_traces must be >= 1")
        if seeds is not None and counter_stream is not None:
            raise ValueError("pass either seeds or counter_stream, not both")
        n = campaign.n_traces
        n_chunks = (n + chunk_traces - 1) // chunk_traces
        if seeds is not None and len(seeds) != n_chunks:
            raise ValueError(
                f"got {len(seeds)} chunk seeds for {n_chunks} chunks")
        for index, start in enumerate(range(0, n, chunk_traces)):
            chunk = campaign.slice(start, min(n, start + chunk_traces))
            if counter_stream is not None:
                yield self.generate(
                    chunk, draws=counter_stream.draws(first_chunk + index))
            else:
                rng = (np.random.default_rng(seeds[index])
                       if seeds is not None else None)
                yield self.generate(chunk, rng=rng)

    def generate_pair(
        self, campaigns: Tuple[TraceCampaign, TraceCampaign]
    ) -> Tuple[PowerTraces, PowerTraces]:
        """Generate traces for a (fixed, random) campaign pair."""
        first, second = campaigns
        return self.generate(first), self.generate(second)

    # ------------------------------------------------------------------
    def _net_matrix(self, result: SimulationResult) -> np.ndarray:
        """Net values as a uint8 matrix indexed by the plan's net rows.

        Compiled simulation backend: the plan's rows index straight into
        the simulator's state matrix, so this is a zero-copy view.  Loop
        backend: a compact ``(n_nets, n)`` matrix is filled from the
        net-value mapping.
        """
        if result.state_matrix is not None:
            return result.state_matrix.view(np.uint8)
        n = result.n_vectors
        matrix = np.empty((len(self._sim_nets), n), dtype=bool)
        for index, net in enumerate(self._sim_nets):
            value = result.net_values.get(net)
            if value is None:
                # Undriven net that no gate reads: constant 0, matching the
                # simulator's semantics for floating inputs.
                matrix[index] = False
            else:
                matrix[index] = value
        return matrix.view(np.uint8)

    def _generate_vectorised(self, campaign: TraceCampaign,
                             rng: Optional[np.random.Generator] = None,
                             draws: Optional[CounterDraws] = None,
                             ) -> PowerTraces:
        prev_inputs, cur_inputs = campaign.as_dicts()
        previous = self._simulator.evaluate(prev_inputs)
        current = self._simulator.evaluate(cur_inputs)
        n_traces = campaign.n_traces
        n_gates = self.n_gates
        # Gate-major accumulation: every sub-group's rows are C-contiguous,
        # so fills, gathers and table lookups run at memcpy speed.  The
        # public trace matrix is the (n_traces, n_gates) transpose view.
        power = np.empty((n_gates, n_traces), dtype=self.trace_dtype)
        per_gate = power.T
        if n_gates == 0:
            return PowerTraces(campaign.label, self.gate_names, per_gate,
                               np.zeros(n_traces, dtype=self.trace_dtype))

        # Packed backend: keep the simulation results bit-packed and unpack
        # only the rows the power model actually reads (watched outputs and
        # masked data inputs).  The bool state matrix never materialises,
        # and the lazy SimulationResult never unpacks it either.
        packed = (self.power_backend == "packed"
                  and previous.packed_matrix is not None
                  and current.packed_matrix is not None)
        if packed:
            packed_prev = previous.packed_matrix
            packed_cur = current.packed_matrix
        else:
            net_prev = self._net_matrix(previous)
            net_cur = self._net_matrix(current)
        if draws is None:
            rng = rng if rng is not None else self._model._rng
        noise_mode = self._resolved_noise_mode(vectorised=True)
        sigma = self._model.noise_sigma_abs()
        # The popcount sampler's -E[count]*scale centring term is folded
        # into the static offsets (one scalar per masked table, one column
        # add for the unmasked rows).
        noise_scale = 0.0
        noise_offset = 0.0
        if noise_mode == "fast":
            noise_scale, noise_offset = self._model.fast_noise_params()

        n_unmasked = len(self._watch_rows)
        if n_unmasked:
            if packed:
                # One XOR over packed bytes (8x less data than the bool
                # comparison), then a single unpack of just the watched
                # rows.  unpackbits drops the padding bits of the last
                # byte, and a 0/1 uint8 multiplies exactly like a bool.
                toggled = np.unpackbits(
                    packed_prev[self._watch_rows]
                    ^ packed_cur[self._watch_rows],
                    axis=1, count=n_traces)
            else:
                toggled = (net_prev[self._watch_rows]
                           != net_cur[self._watch_rows])
            np.multiply(toggled, self._unmasked_dynamic.astype(self.trace_dtype),
                        out=power[:n_unmasked])
            offset_column = (self._unmasked_static + noise_offset).astype(
                self.trace_dtype)
            np.add(power[:n_unmasked], offset_column, out=power[:n_unmasked])

        packed_tables = self._packed_value_tables(noise_offset) if packed \
            else None
        counter_tables = self._counter_value_tables(noise_offset) \
            if draws is not None and self._masked_subgroups else None
        for group_index, sub in enumerate(self._masked_subgroups):
            shares = None
            if packed:
                # Assemble the 4-bit data-transition code from the packed
                # share rows: one stacked gather, one unpack, shifts/ORs.
                stacked = np.concatenate(
                    (packed_prev[sub.a_rows], packed_prev[sub.b_rows],
                     packed_cur[sub.a_rows], packed_cur[sub.b_rows]))
                bits = np.unpackbits(stacked, axis=1, count=n_traces)
                shares = bits.reshape(4, len(sub.a_rows), n_traces)
                a_prev, b_prev, a_cur, b_cur = shares
            else:
                a_prev = net_prev[sub.a_rows]
                b_prev = net_prev[sub.b_rows]
                a_cur = net_cur[sub.a_rows]
                b_cur = net_cur[sub.b_rows]
            if draws is not None:
                # Counter path: word-wide code combine, then a gather on
                # ``d << 8 | raw_byte`` — the raw Philox bytes index the
                # replicated table directly, so the ``& mask`` pass of the
                # sequence path (and its per-trace mask integers) is gone.
                if shares is None:
                    shares = np.stack((a_prev, b_prev, a_cur, b_cur))
                flat = combine_transition_codes(shares).astype(np.uint16)
                width = flat.shape[0]
                raw = draws.mask_bytes(group_index, width, n_traces)
                np.left_shift(flat, 8, out=flat)
                np.bitwise_or(flat, raw, out=flat)
                table = counter_tables[group_index]
            else:
                flat = (a_prev | (b_prev << 1) | (a_cur << 2)
                        | (b_cur << 3)).astype(np.uint16)
                width = flat.shape[0]
                count = width * n_traces
                words = rng.integers(0, _U64_MAX,
                                     size=words_for_units(count, np.uint8),
                                     dtype=np.uint64, endpoint=True)
                mask_index = (words.view(np.uint8)[:count]
                              .reshape(width, n_traces)
                              & np.uint8((1 << sub.mask_bits) - 1))
                np.left_shift(flat, sub.mask_bits, out=flat)
                np.bitwise_or(flat, mask_index, out=flat)
                if packed:
                    table = packed_tables[group_index]
                else:
                    table = sub.value_table.astype(self.trace_dtype)
                    if noise_offset:
                        table += self.trace_dtype.type(noise_offset)
            # Indices are < len(table) by construction; mode="clip" skips
            # the bounds-check buffering of the default mode.
            np.take(table, flat, out=power[sub.row_slice], mode="clip")

        if noise_mode == "fast":
            counts = (draws.noise_counts((n_gates, n_traces))
                      if draws is not None
                      else self._fast_noise_counts(rng, (n_gates, n_traces)))
            noise = np.multiply(counts, self.trace_dtype.type(noise_scale))
            np.add(power, noise, out=power)
        elif noise_mode == "gaussian":
            gauss = (draws.gauss((n_gates, n_traces), dtype=np.float32)
                     if draws is not None
                     else rng.standard_normal(size=(n_gates, n_traces),
                                              dtype=np.float32))
            np.multiply(gauss, np.float32(sigma), out=gauss)
            np.add(power, gauss, out=power)

        total = per_gate.sum(axis=1)
        return PowerTraces(campaign.label, self.gate_names, per_gate, total)

    # ------------------------------------------------------------------
    def generate_loop(self, campaign: TraceCampaign,
                      rng: Optional[np.random.Generator] = None) -> PowerTraces:
        """Reference per-gate loop implementation.

        Kept from the original engine for regression tests and the
        vectorised-vs-loop microbenchmark; ``generate`` is the fast path.
        With ``noise_mode="auto"`` (or ``"gaussian"``) this path adds exact
        Gaussian noise, as the original engine did; an explicit ``"fast"``
        setting is honoured with the popcount sampler.  ``rng`` overrides
        the model's sequential mask/noise stream (see :meth:`generate`).
        """
        prev_inputs, cur_inputs = campaign.as_dicts()
        previous = self._simulator.evaluate(prev_inputs)
        current = self._simulator.evaluate(cur_inputs)

        noise_mode = self._resolved_noise_mode(vectorised=False)
        noise_scale, _ = self._model.fast_noise_params()
        rng = rng if rng is not None else self._model._rng

        n_traces = campaign.n_traces
        per_gate = np.zeros((n_traces, len(self._gates)), dtype=float)
        for column, gate in enumerate(self._gates):
            if gate.gate_type.is_masked:
                a_net, b_net = gate.inputs[0], gate.inputs[1]
                power = self._model.masked_power(
                    gate,
                    (previous.net_values[a_net], previous.net_values[b_net]),
                    (current.net_values[a_net], current.net_values[b_net]),
                    glitch_input_factor=self._glitch_factors.get(gate.name, 1.0),
                    rng=rng,
                )
            else:
                if gate.gate_type.is_sequential:
                    # A register toggles when its captured value changes.
                    toggled = np.logical_xor(
                        previous.net_values[gate.inputs[0]],
                        current.net_values[gate.inputs[0]],
                    )
                else:
                    toggled = np.logical_xor(
                        previous.net_values[gate.output],
                        current.net_values[gate.output],
                    )
                power = self._model.unmasked_power(
                    gate, toggled, fanout=self._fanouts.get(gate.name, 1))
            if noise_mode == "fast":
                counts = self._fast_noise_counts(rng, (n_traces,))
                power = power + (counts - _FAST_NOISE_BITS / 2.0) * noise_scale
                per_gate[:, column] = power
            else:
                per_gate[:, column] = self._model.add_noise(power, rng=rng)

        total = per_gate.sum(axis=1)
        return PowerTraces(campaign.label, self.gate_names, per_gate, total)
