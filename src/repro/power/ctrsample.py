"""Counter-based stateless mask/noise sampling (``TvlaConfig.sampler``).

The streaming TVLA engine draws two kinds of randomness per trace chunk:
per-trace mask bytes for every masked composite sub-group and raw words for
the popcount measurement-noise sampler.  Two sampler disciplines provide
those draws:

* ``"counter"`` (default, this module) — a Philox-4x64-10 counter-block
  cipher keyed by the campaign seed, where the 256-bit counter encodes the
  draw *coordinates* ``(class, group, chunk, lane)``.  Every chunk's bits
  are a pure function of its coordinates: no generator object advances, no
  seed tree is walked, and shard-layout invariance holds **by
  construction** — any chunking/sharding/executor layout reads the very
  same blocks.  The raw counter words are consumed directly: a 64-bit
  block *is* eight packed mask bytes (the per-gate table gather indexes on
  the raw byte, so a separate per-trace mask integer never materialises),
  and noise popcounts are taken straight off 16-bit views of the same
  words.  :meth:`CounterDraws.mask_planes` additionally emits the mask
  bits in packed bit-sliced form (one ``numpy.packbits`` plane per mask
  bit) for packed consumers, pinned against the byte emission by the
  property suite in ``tests/test_ctrsample.py``.
* ``"sequence"`` — the nested ``numpy.random.SeedSequence.spawn``
  discipline introduced with sharded TVLA
  (:func:`repro.tvla.assessment.chunk_seed_streams`).  It achieves the
  same layout invariance operationally (every chunk gets its own spawned
  stream) and is retained **frozen** as the oracle for the stateless
  contract: its draws are pinned bit-identical to the pre-counter
  implementation by golden regression tests.

Production bits come from :class:`numpy.random.Philox` (C implementation);
:func:`philox_blocks_reference` re-implements the full 10-round bumped-key
Philox network in pure vectorised numpy and is pinned bitwise against the
native generator — the ``ctr-philox`` oracle pair — so the counter mapping
cannot silently drift from the published Philox function.

Coordinate packing
------------------

======  ==========================================================
word    contents
======  ==========================================================
0       block counter (advanced by Philox itself)
1       lane — :data:`NOISE_LANE`, :data:`GAUSS_LANE`, or
        :data:`MASK_LANE_BASE` + masked-sub-group index
2       global chunk index
3       ``class_index << 32 | group_index``
======  ==========================================================

The 128-bit Philox key is the campaign seed XOR-folded with fixed
domain-separation constants, so counter-sampler streams can never collide
with any other Philox user of the same seed integer.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .bitops import popcount16, words_for_units

#: Sampler disciplines accepted by ``TvlaConfig.sampler``: ``"counter"``
#: (stateless Philox counter blocks, default) and ``"sequence"`` (the
#: frozen ``SeedSequence``-spawn oracle).
SAMPLERS = ("counter", "sequence")

#: Lane of the fast-noise popcount words.
NOISE_LANE = 0
#: Lane of the exact-Gaussian noise stream (``noise_mode="gaussian"``).
GAUSS_LANE = 1
#: First mask lane; masked sub-group ``k`` draws on lane
#: ``MASK_LANE_BASE + k``.
MASK_LANE_BASE = 2

#: Domain-separation constants XOR-folded into the Philox key (the 64-bit
#: fractional expansions of sqrt(5) and sqrt(7), same provenance as the
#: Philox Weyl constants).
_KEY_DOMAIN = (0x3C6EF372FE94F82B, 0xA54FF53A5F1D36F1)

_U64 = np.uint64
#: Philox-4x64 round multipliers and Weyl key increments (Salmon et al.,
#: "Parallel random numbers: as easy as 1, 2, 3", SC'11) — shared by the
#: native generator and the reference network below.
_PHILOX_M0 = _U64(0xD2E7470EE14C6C93)
_PHILOX_M1 = _U64(0xCA5A826395121157)
_PHILOX_W0 = _U64(0x9E3779B97F4A7C15)
_PHILOX_W1 = _U64(0xBB67AE8584CAA73B)
_LO32 = _U64(0xFFFFFFFF)
_S32 = _U64(32)


def counter_key(seed: int) -> np.ndarray:
    """128-bit Philox key for a campaign seed (domain-separated).

    Accepts any Python int; the low 128 bits are used, so the full
    ``TvlaConfig.seed`` range maps injectively onto keys.
    """
    folded = int(seed) & ((1 << 128) - 1)
    return np.array([(folded & 0xFFFFFFFFFFFFFFFF) ^ _KEY_DOMAIN[0],
                     (folded >> 64) ^ _KEY_DOMAIN[1]], dtype=np.uint64)


def counter_block(class_index: int, group_index: int, chunk_index: int,
                  lane: int) -> np.ndarray:
    """256-bit Philox counter encoding one draw coordinate.

    Word 0 is the intra-stream block counter (advanced by the generator);
    words 1..3 pin the stream to its ``(lane, chunk, class, group)``
    coordinates, making every stream reproducible in isolation.
    """
    for name, value, bound in (("class_index", class_index, 1 << 32),
                               ("group_index", group_index, 1 << 32),
                               ("chunk_index", chunk_index, 1 << 64),
                               ("lane", lane, 1 << 64)):
        if not 0 <= value < bound:
            raise ValueError(f"{name} must be in [0, {bound}), got {value}")
    return np.array(
        [0, lane, chunk_index, (class_index << 32) | group_index],
        dtype=np.uint64)


def philox_bit_generator(seed: int, class_index: int, group_index: int,
                         chunk_index: int, lane: int) -> np.random.Philox:
    """Native Philox bit generator positioned at a draw coordinate.

    This is the counter sampler's single RNG seam: every byte the
    ``"counter"`` discipline emits comes out of a generator constructed
    here, keyed by :func:`counter_key` and positioned by
    :func:`counter_block` — seedless-by-design in the sense that no call
    site ever constructs an unseeded generator.
    """
    return np.random.Philox(
        counter=counter_block(class_index, group_index, chunk_index, lane),
        key=counter_key(seed))


def philox_raw(seed: int, class_index: int, group_index: int,
               chunk_index: int, lane: int, n_words: int) -> np.ndarray:
    """First ``n_words`` raw uint64 words of a coordinate's Philox stream.

    Pure function of its arguments (a fresh native generator per call);
    pinned bitwise against :func:`philox_blocks_reference` — the
    ``ctr-philox`` oracle pair.
    """
    return philox_bit_generator(
        seed, class_index, group_index, chunk_index, lane).random_raw(n_words)


def _mulhilo64(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(high, low) 64-bit halves of the 128-bit product ``a * b``."""
    low = a * b
    a_hi, a_lo = a >> _S32, a & _LO32
    b_hi, b_lo = b >> _S32, b & _LO32
    mid = a_hi * b_lo + ((a_lo * b_lo) >> _S32)
    high = (a_hi * b_hi + (mid >> _S32)
            + ((a_lo * b_hi + (mid & _LO32)) >> _S32))
    return high, low


def philox_blocks_reference(key: np.ndarray, counter: np.ndarray,
                            n_blocks: int) -> np.ndarray:
    """Pure-numpy Philox-4x64-10 oracle for the native ``random_raw``.

    Emits ``4 * n_blocks`` uint64 words bit-identical to
    ``numpy.random.Philox(counter=counter, key=key).random_raw(4 * n_blocks)``.
    The native generator **pre-increments**: emitted block ``j`` encrypts
    ``counter + j + 1`` (with 256-bit carry), which this oracle reproduces
    with an explicit carry chain.  Ten S-box rounds, the key bumped by the
    Weyl constants before every round after the first.
    """
    if n_blocks < 1:
        raise ValueError("n_blocks must be >= 1")
    key = np.asarray(key, dtype=np.uint64)
    counter = np.asarray(counter, dtype=np.uint64)
    with np.errstate(over="ignore"):
        index = np.arange(1, n_blocks + 1, dtype=np.uint64)
        x0 = counter[0] + index
        carry = (x0 < index).astype(np.uint64)
        x1 = counter[1] + carry
        carry = (x1 < carry).astype(np.uint64)
        x2 = counter[2] + carry
        carry = (x2 < carry).astype(np.uint64)
        x3 = counter[3] + carry
        k0, k1 = key[0], key[1]
        for round_index in range(10):
            if round_index:
                k0 = k0 + _PHILOX_W0
                k1 = k1 + _PHILOX_W1
            hi0, lo0 = _mulhilo64(_PHILOX_M0, x0)
            hi1, lo1 = _mulhilo64(_PHILOX_M1, x2)
            x0, x1, x2, x3 = hi1 ^ x1 ^ k0, lo1, hi0 ^ x3 ^ k1, lo0
    return np.stack([x0, x1, x2, x3], axis=1).reshape(-1)


class CounterDraws:
    """All randomness of one ``(seed, class, group, chunk)`` cell.

    Stateless: every method derives its bits from the cell coordinates and
    a per-consumer lane, so calls commute and repeat — the property the
    ``tests/test_ctrsample.py`` suite pins (coordinate determinism, stream
    independence, layout invariance).
    """

    __slots__ = ("seed", "class_index", "group_index", "chunk_index")

    def __init__(self, seed: int, class_index: int, group_index: int,
                 chunk_index: int) -> None:
        self.seed = int(seed)
        self.class_index = int(class_index)
        self.group_index = int(group_index)
        self.chunk_index = int(chunk_index)

    def _raw(self, lane: int, n_words: int) -> np.ndarray:
        return philox_raw(self.seed, self.class_index, self.group_index,
                          self.chunk_index, lane, n_words)

    def mask_bytes(self, subgroup_index: int, width: int,
                   n_traces: int) -> np.ndarray:
        """Raw mask bytes for one masked sub-group, ``(width, n_traces)``.

        Full-range uint8 — the consumer's fused value table absorbs the
        reduction to ``mask_bits`` (byte ``& (2**mask_bits - 1)`` indexes
        the same entry), so no per-trace mask integer is ever formed.
        """
        count = width * n_traces
        words = self._raw(MASK_LANE_BASE + subgroup_index,
                          words_for_units(count, np.uint8))
        return words.view(np.uint8)[:count].reshape(width, n_traces)

    def mask_planes(self, subgroup_index: int, width: int, n_traces: int,
                    mask_bits: int) -> np.ndarray:
        """Mask bits in packed bit-sliced form.

        Plane ``b`` holds bit ``b`` of every trace's mask index, packed
        MSB-first (``numpy.packbits``): shape ``(mask_bits, width,
        ceil(n_traces / 8))``, trailing pad bits zero.  Bitwise consistent
        with :meth:`mask_bytes` by construction — the round-trip equality
        (including non-multiple-of-8 ``n_traces``) is property-pinned.
        """
        if not 1 <= mask_bits <= 8:
            raise ValueError(f"mask_bits must be in [1, 8], got {mask_bits}")
        raw = self.mask_bytes(subgroup_index, width, n_traces)
        planes = [np.packbits((raw >> bit) & np.uint8(1), axis=-1)
                  for bit in range(mask_bits)]
        return np.stack(planes)

    def noise_counts(self, shape: Tuple[int, ...]) -> np.ndarray:
        """Binomial(16, 1/2) popcounts straight off counter words."""
        count = int(np.prod(shape)) if shape else 1
        words = self._raw(NOISE_LANE, words_for_units(count, np.uint16))
        return popcount16(words.view(np.uint16)[:count].reshape(shape))

    def gauss(self, shape: Tuple[int, ...],
              dtype: np.dtype = np.float32) -> np.ndarray:
        """Exact standard normals (``noise_mode="gaussian"``) on the
        Gaussian lane."""
        generator = np.random.Generator(philox_bit_generator(
            self.seed, self.class_index, self.group_index,
            self.chunk_index, GAUSS_LANE))
        return generator.standard_normal(size=shape, dtype=dtype)


class CounterStream:
    """Per-``(seed, class, group)`` factory of chunk draws.

    The counter sampler's analogue of the sequence sampler's spawned
    seed list: where :func:`repro.tvla.assessment.chunk_seed_streams`
    returns one ``SeedSequence`` per chunk, this returns a
    :class:`CounterDraws` for any **global** chunk index on demand —
    shards never re-derive local coordinates, they just ask for the global
    chunks of their range.
    """

    __slots__ = ("seed", "class_index", "group_index")

    def __init__(self, seed: int, class_index: int, group_index: int) -> None:
        self.seed = int(seed)
        self.class_index = int(class_index)
        self.group_index = int(group_index)

    def draws(self, chunk_index: int) -> CounterDraws:
        """Draws of global chunk ``chunk_index`` of this campaign."""
        return CounterDraws(self.seed, self.class_index, self.group_index,
                            chunk_index)
