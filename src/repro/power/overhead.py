"""Area / power / delay analysis of a netlist (paper Table IV metrics).

The paper reports design overheads of the masked netlists as multiples of
the original design's area (um^2), power (mW) and delay (ns), obtained from
the ASIC flow's reports.  This module provides the equivalent analysis on
top of the offline cell library:

* **area** — sum of fan-in-scaled cell areas;
* **power** — static leakage plus activity-weighted dynamic power (the
  average switching activity can be supplied from simulation; a default
  activity factor is used otherwise);
* **delay** — critical combinational path found by a longest-path static
  timing analysis over the levelised gate graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import networkx as nx

from ..netlist.cell_library import CellLibrary
from ..netlist.graph import combinational_graph
from ..netlist.netlist import Netlist


@dataclass(frozen=True)
class DesignMetrics:
    """Area/power/delay summary of one netlist.

    Attributes:
        area: Total cell area in square micrometres.
        power: Estimated total power in milliwatts.
        delay: Critical-path delay in nanoseconds.
        gate_count: Number of non-port cells.
    """

    area: float
    power: float
    delay: float
    gate_count: int

    def ratios_to(self, baseline: "DesignMetrics") -> Dict[str, float]:
        """Return area/power/delay of ``self`` as multiples of ``baseline``."""
        def _ratio(value: float, reference: float) -> float:
            return value / reference if reference > 0 else float("inf")

        return {
            "area": _ratio(self.area, baseline.area),
            "power": _ratio(self.power, baseline.power),
            "delay": _ratio(self.delay, baseline.delay),
        }


#: Default toggle probability assumed when no simulated activity is provided.
DEFAULT_ACTIVITY = 0.25

#: Conversion factor from (switching energy x activity) to milliwatts at the
#: nominal clock frequency assumed by the reports.
_DYNAMIC_POWER_SCALE = 1.0e-3

#: Conversion factor from leakage microwatts to milliwatts.
_LEAKAGE_SCALE = 1.0e-3


def analyze_design(
    netlist: Netlist,
    library: Optional[CellLibrary] = None,
    activity: Optional[Mapping[str, float]] = None,
) -> DesignMetrics:
    """Compute :class:`DesignMetrics` for ``netlist``.

    Args:
        netlist: The design to analyse.
        library: Cell library; defaults to the netlist's own library.
        activity: Optional per-gate toggle probability (from
            :func:`repro.simulation.switching.switching_activity`); gates
            missing from the mapping use :data:`DEFAULT_ACTIVITY`.
    """
    library = library if library is not None else netlist.library
    area = 0.0
    dynamic = 0.0
    leakage = 0.0
    count = 0
    for gate in netlist.gates:
        if gate.gate_type.is_port:
            continue
        count += 1
        # ``overhead_scale`` lets a protection transform model a heavier
        # implementation of the same cell (e.g. VALIANT's up-sized gates).
        scale = float(gate.attributes.get("overhead_scale", 1.0))
        area += library.area(gate.gate_type, gate.fanin) * scale
        leakage += library.leakage_power(gate.gate_type) * scale
        toggle_probability = DEFAULT_ACTIVITY
        if activity is not None:
            toggle_probability = float(activity.get(gate.name, DEFAULT_ACTIVITY))
        dynamic += (library.switching_energy(gate.gate_type, gate.fanin)
                    * toggle_probability * scale)
    power = dynamic * _DYNAMIC_POWER_SCALE * 1000.0 + leakage * _LEAKAGE_SCALE
    delay = critical_path_delay(netlist, library)
    return DesignMetrics(area=area, power=power, delay=delay, gate_count=count)


def critical_path_delay(netlist: Netlist,
                        library: Optional[CellLibrary] = None) -> float:
    """Longest combinational path delay (ns) through the design.

    Sequential elements contribute their clock-to-Q delay at path starts.
    """
    library = library if library is not None else netlist.library
    dag = combinational_graph(netlist)
    if dag.number_of_nodes() == 0:
        return 0.0
    arrival: Dict[str, float] = {}
    best = 0.0
    for node in nx.topological_sort(dag):
        gate = netlist.gate(node)
        scale = float(gate.attributes.get("overhead_scale", 1.0))
        cell_delay = library.delay(gate.gate_type, gate.fanin) * scale
        preds = list(dag.predecessors(node))
        start = max((arrival[p] for p in preds), default=0.0)
        arrival[node] = start + cell_delay
        best = max(best, arrival[node])
    # Registers add their own delay at the capture edge.
    sequential = netlist.sequential_gates()
    if sequential:
        best += max(library.delay(g.gate_type, g.fanin) for g in sequential)
    return best


def overhead_report(original: DesignMetrics, masked: DesignMetrics) -> Dict[str, float]:
    """Flat report comparing a masked design against the original.

    Returns a dictionary with the original values, the masked-to-original
    multipliers and the percentage increases, mirroring the layout of the
    paper's Table IV.
    """
    ratios = masked.ratios_to(original)
    return {
        "original_area": original.area,
        "original_power": original.power,
        "original_delay": original.delay,
        "masked_area": masked.area,
        "masked_power": masked.power,
        "masked_delay": masked.delay,
        "area_ratio": ratios["area"],
        "power_ratio": ratios["power"],
        "delay_ratio": ratios["delay"],
        "area_increase_pct": (ratios["area"] - 1.0) * 100.0,
        "power_increase_pct": (ratios["power"] - 1.0) * 100.0,
        "delay_increase_pct": (ratios["delay"] - 1.0) * 100.0,
    }
