"""Masked composite gate definitions (Trichina and DOM constructions).

Masking (paper §II-B) randomises sensitive intermediate values via secret
sharing: a value ``x`` is represented by shares whose XOR is ``x``, and
non-linear gates are replaced with composite structures that operate on the
shares plus fresh randomness.  The paper's Eq. (5) gives the Trichina masked
AND used by POLARIS::

    M(a · b) = ((a_hat · b_hat) ^ ((x · b_hat) ^ ((x · y) ^ z))) ^ (y · a_hat)

where ``a_hat = a ^ x`` and ``b_hat = b ^ y`` are the masked inputs, ``x``/
``y`` are the input masks and ``z`` is the fresh output mask.

This module describes the masked composites at two levels:

* :class:`MaskedGateSpec` — the "black box" view used by the masking
  transform and cost model (cell type, number of fresh random bits, number
  of internal nodes, primitive-gate equivalent);
* :func:`reference_masked_and` / :func:`reference_masked_or` — bit-level
  reference implementations used by the test-suite to prove that the masked
  function equals the original function for every mask value (correctness of
  the construction itself).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from ..netlist.cell_library import GateType


@dataclass(frozen=True)
class MaskedGateSpec:
    """Static description of one masked composite cell.

    Attributes:
        masked_type: The composite cell type.
        replaces: Primitive gate types this composite can stand in for.
        fresh_random_bits: Fresh mask bits consumed per evaluation.
        internal_nodes: Number of internal signals (drives the power model).
        primitive_equivalent: Approximate primitive-gate count (area model).
        inverted_output: Whether an extra output inverter is required when
            replacing the inverting variant (NAND/NOR/XNOR).
    """

    masked_type: GateType
    replaces: Tuple[GateType, ...]
    fresh_random_bits: int
    internal_nodes: int
    primitive_equivalent: int
    inverted_output: bool = False


#: Registry of the masked composites available to the masking transform.
MASKED_GATE_SPECS: Dict[GateType, MaskedGateSpec] = {
    GateType.MASKED_AND: MaskedGateSpec(
        masked_type=GateType.MASKED_AND,
        replaces=(GateType.AND, GateType.NAND),
        fresh_random_bits=3,
        internal_nodes=10,
        primitive_equivalent=8,
    ),
    GateType.MASKED_OR: MaskedGateSpec(
        masked_type=GateType.MASKED_OR,
        replaces=(GateType.OR, GateType.NOR),
        fresh_random_bits=3,
        internal_nodes=10,
        primitive_equivalent=9,
    ),
    GateType.MASKED_XOR: MaskedGateSpec(
        masked_type=GateType.MASKED_XOR,
        replaces=(GateType.XOR, GateType.XNOR),
        fresh_random_bits=2,
        internal_nodes=4,
        primitive_equivalent=2,
    ),
    GateType.MASKED_AND_DOM: MaskedGateSpec(
        masked_type=GateType.MASKED_AND_DOM,
        replaces=(GateType.AND, GateType.NAND),
        fresh_random_bits=1,
        internal_nodes=12,
        primitive_equivalent=10,
    ),
}


def spec_for_masked_type(masked_type: GateType) -> MaskedGateSpec:
    """Return the spec of a masked composite type.

    Raises:
        KeyError: if ``masked_type`` is not a masked composite.
    """
    return MASKED_GATE_SPECS[masked_type]


def masked_type_for(gate_type: GateType, use_dom: bool = False) -> GateType:
    """Return the masked composite replacing primitive ``gate_type``.

    Args:
        gate_type: A maskable primitive (AND/NAND/OR/NOR/XOR/XNOR).
        use_dom: Replace AND-family gates with the DOM composite instead of
            the Trichina one (paper §V-E extension).

    Raises:
        ValueError: if ``gate_type`` has no masked equivalent.
    """
    if gate_type in (GateType.AND, GateType.NAND):
        return GateType.MASKED_AND_DOM if use_dom else GateType.MASKED_AND
    if gate_type in (GateType.OR, GateType.NOR):
        return GateType.MASKED_OR
    if gate_type in (GateType.XOR, GateType.XNOR):
        return GateType.MASKED_XOR
    raise ValueError(f"gate type {gate_type.value} has no masked equivalent")


def needs_output_inverter(gate_type: GateType) -> bool:
    """Whether replacing ``gate_type`` also requires an output inverter."""
    return gate_type in (GateType.NAND, GateType.NOR, GateType.XNOR)


# ----------------------------------------------------------------------
# Bit-level reference implementations (used to verify Eq. 5)
# ----------------------------------------------------------------------
def reference_masked_and(a: int, b: int, x: int, y: int, z: int) -> int:
    """Trichina masked AND on single bits.

    Args:
        a, b: The *real* (unmasked) data bits.
        x, y: Input masks.
        z: Fresh output mask.

    Returns:
        The masked output bit, equal to ``(a & b) ^ z``.
    """
    a_hat = a ^ x
    b_hat = b ^ y
    return ((a_hat & b_hat) ^ ((x & b_hat) ^ ((x & y) ^ z))) ^ (y & a_hat)


def reference_masked_or(a: int, b: int, x: int, y: int, z: int) -> int:
    """Masked OR built from the masked AND via De Morgan.

    Returns:
        The masked output bit, equal to ``(a | b) ^ z``.
    """
    # OR(a, b) = NOT(AND(NOT a, NOT b)).  Complementing a masked value flips
    # either the share or the mask; here we flip the data bits and the
    # output, keeping the masks untouched.
    return reference_masked_and(a ^ 1, b ^ 1, x, y, z) ^ 1


def reference_masked_xor(a: int, b: int, x: int, y: int) -> int:
    """Share-wise masked XOR.

    Returns:
        The masked output bit, equal to ``(a ^ b) ^ (x ^ y)`` — i.e. the
        output is masked by the XOR of the input masks (no fresh bit
        needed because XOR is linear).
    """
    a_hat = a ^ x
    b_hat = b ^ y
    return a_hat ^ b_hat
