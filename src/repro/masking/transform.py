"""Masking transform: replace selected gates with masked composites.

This implements the ``modify(Sgates, D)`` primitive of the paper's
Algorithms 1 and 2: given a netlist and a set of gate names, each selected
maskable gate is replaced in-place by its masked composite cell (plus an
output inverter for inverting variants), preserving the design's logical
function while changing its power signature.

The transform never mutates its input; it returns a new netlist so the
original and masked designs can be assessed side by side (as the paper's
Table II requires).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..netlist.cell_library import GateType
from ..netlist.netlist import Netlist, NetlistError
from .masked_gates import masked_type_for, needs_output_inverter


@dataclass
class MaskingResult:
    """Outcome of one masking transform.

    Attributes:
        netlist: The masked netlist (a new object).
        masked_gates: Names of gates that were replaced.
        skipped_gates: Requested gates that could not be masked (missing or
            not maskable), with the reason.
        inverters_added: Names of the output inverters inserted for
            NAND/NOR/XNOR replacements.
    """

    netlist: Netlist
    masked_gates: Tuple[str, ...]
    skipped_gates: Tuple[Tuple[str, str], ...]
    inverters_added: Tuple[str, ...] = ()

    @property
    def n_masked(self) -> int:
        """Number of gates actually replaced."""
        return len(self.masked_gates)


def maskable_gates(netlist: Netlist) -> Tuple[str, ...]:
    """Names of all gates in ``netlist`` eligible for masking."""
    return tuple(
        gate.name for gate in netlist.gates
        if netlist.library.is_maskable(gate.gate_type)
    )


def apply_masking(
    netlist: Netlist,
    gate_names: Iterable[str],
    use_dom: bool = False,
    suffix: str = "_masked",
    protection_style: str = "trichina",
    overhead_scale: float = 1.0,
) -> MaskingResult:
    """Replace ``gate_names`` in ``netlist`` with masked composite cells.

    Args:
        netlist: The design to protect (not modified).
        gate_names: Gates to replace; non-maskable or unknown names are
            skipped and reported rather than raising, because upstream
            selection heuristics may legitimately nominate e.g. inverters.
        use_dom: Use the DOM composite for AND-family gates.
        suffix: Appended to the netlist name of the masked copy.
        protection_style: Recorded on each replaced gate; the power model
            applies a different residual-leakage factor for ``"valiant"``
            style protection than for the default ``"trichina"`` composites.
        overhead_scale: Area/power/delay multiplier recorded on each
            replaced gate (used to model heavier protection cells).

    Returns:
        A :class:`MaskingResult` with the new netlist and bookkeeping.
    """
    masked = netlist.copy(netlist.name + suffix)
    replaced: List[str] = []
    skipped: List[Tuple[str, str]] = []
    inverters: List[str] = []

    requested: Set[str] = set(gate_names)
    for name in sorted(requested):
        if name not in masked:
            skipped.append((name, "unknown gate"))
            continue
        gate = masked.gate(name)
        if gate.gate_type.is_masked:
            skipped.append((name, "already masked"))
            continue
        if not masked.library.is_maskable(gate.gate_type):
            skipped.append((name, f"type {gate.gate_type.value} not maskable"))
            continue

        original_type = gate.gate_type
        masked_type = masked_type_for(original_type, use_dom=use_dom)
        inputs = list(gate.inputs)
        output = gate.output
        attributes = dict(gate.attributes)
        attributes["masked_from"] = original_type.value
        attributes["protection_style"] = protection_style
        # polaris-lint: disable=PL006 exact-default check on a pass-through config knob, never a computed float
        if overhead_scale != 1.0:
            attributes["overhead_scale"] = overhead_scale
        # Inverting variants (NAND/NOR/XNOR) fold the inversion into the
        # masked composite's recombination stage, so no separate (and
        # leaky) inverter cell is exposed in the netlist; the simulator
        # honours the ``masked_from`` attribute when computing the output.
        attributes["inverted_output"] = needs_output_inverter(original_type)

        masked.remove_gate(name)
        masked.add_gate(name, masked_type, inputs, output, attributes)
        replaced.append(name)

    return MaskingResult(
        netlist=masked,
        masked_gates=tuple(replaced),
        skipped_gates=tuple(skipped),
        inverters_added=tuple(inverters),
    )


def mask_fraction(netlist: Netlist, fraction: float,
                  ranked_gates: Optional[Sequence[str]] = None,
                  use_dom: bool = False) -> MaskingResult:
    """Mask a fraction of the (ranked) maskable gates.

    Args:
        netlist: Design to protect.
        fraction: Fraction in [0, 1] of the candidate list to mask; the
            paper's "X % Mask" configurations use 0.5, 0.75 and 1.0.
        ranked_gates: Candidate gates in priority order (most important
            first); defaults to all maskable gates in netlist order.
        use_dom: Use DOM composites for AND-family gates.

    Raises:
        ValueError: if ``fraction`` is outside [0, 1].
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    candidates = list(ranked_gates) if ranked_gates is not None else list(
        maskable_gates(netlist))
    count = int(round(len(candidates) * fraction))
    return apply_masking(netlist, candidates[:count], use_dom=use_dom)


def unmasked_equivalent_types(netlist: Netlist) -> dict:
    """Map each masked gate back to the primitive type it replaced.

    Useful for reporting and for checking that a masked design can be
    traced back to its original structure.
    """
    mapping = {}
    for gate in netlist.gates:
        if gate.gate_type.is_masked:
            original = gate.attributes.get("masked_from")
            mapping[gate.name] = original
    return mapping
