"""Masking substrate: masked composite gates and the masking transform."""

from .masked_gates import (
    MASKED_GATE_SPECS,
    MaskedGateSpec,
    masked_type_for,
    needs_output_inverter,
    reference_masked_and,
    reference_masked_or,
    reference_masked_xor,
    spec_for_masked_type,
)
from .transform import (
    MaskingResult,
    apply_masking,
    mask_fraction,
    maskable_gates,
    unmasked_equivalent_types,
)

__all__ = [
    "MASKED_GATE_SPECS",
    "MaskedGateSpec",
    "masked_type_for",
    "needs_output_inverter",
    "reference_masked_and",
    "reference_masked_or",
    "reference_masked_xor",
    "spec_for_masked_type",
    "MaskingResult",
    "apply_masking",
    "mask_fraction",
    "maskable_gates",
    "unmasked_equivalent_types",
]
