"""Boolean evaluation of library cells on vectorised numpy operands.

All simulator code represents a signal's value across ``n`` parallel input
vectors as a ``numpy`` boolean array of shape ``(n,)``; evaluating a gate is
a single vectorised bitwise operation, which keeps whole-design simulation
fast enough for TVLA campaigns with thousands of traces.

Masked composite cells evaluate to the same Boolean function as the cell
they replace (masking preserves functionality); their side-channel behaviour
is modelled separately by the power model, which looks at the masked shares.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from ..netlist.cell_library import GateType

BoolArray = np.ndarray


def _reduce(op: Callable[[BoolArray, BoolArray], BoolArray],
            operands: Sequence[BoolArray]) -> BoolArray:
    result = operands[0]
    for value in operands[1:]:
        result = op(result, value)
    return result


def _eval_and(operands: Sequence[BoolArray]) -> BoolArray:
    return _reduce(np.logical_and, operands)


def _eval_or(operands: Sequence[BoolArray]) -> BoolArray:
    return _reduce(np.logical_or, operands)


def _eval_xor(operands: Sequence[BoolArray]) -> BoolArray:
    return _reduce(np.logical_xor, operands)


def _eval_not(operands: Sequence[BoolArray]) -> BoolArray:
    return np.logical_not(operands[0])


def _eval_buf(operands: Sequence[BoolArray]) -> BoolArray:
    return np.asarray(operands[0], dtype=bool).copy()


def _eval_mux(operands: Sequence[BoolArray]) -> BoolArray:
    # MUX(d0, d1, sel): sel ? d1 : d0
    d0, d1, sel = operands
    return np.where(sel, d1, d0)


_EVALUATORS: Dict[GateType, Callable[[Sequence[BoolArray]], BoolArray]] = {
    GateType.BUF: _eval_buf,
    GateType.NOT: _eval_not,
    GateType.AND: _eval_and,
    GateType.NAND: lambda ops: np.logical_not(_eval_and(ops)),
    GateType.OR: _eval_or,
    GateType.NOR: lambda ops: np.logical_not(_eval_or(ops)),
    GateType.XOR: _eval_xor,
    GateType.XNOR: lambda ops: np.logical_not(_eval_xor(ops)),
    GateType.MUX: _eval_mux,
    # Masked cells compute the original (unmasked) function on data inputs;
    # any trailing randomness inputs are ignored for the logical value.
    GateType.MASKED_AND: lambda ops: _eval_and(ops[:2]),
    GateType.MASKED_OR: lambda ops: _eval_or(ops[:2]),
    GateType.MASKED_XOR: lambda ops: _eval_xor(ops[:2]),
    GateType.MASKED_AND_DOM: lambda ops: _eval_and(ops[:2]),
}

#: Number of *data* inputs a masked cell consumes; remaining inputs (if the
#: masking transform wires explicit randomness nets) are mask bits.
MASKED_DATA_INPUTS: Dict[GateType, int] = {
    GateType.MASKED_AND: 2,
    GateType.MASKED_OR: 2,
    GateType.MASKED_XOR: 2,
    GateType.MASKED_AND_DOM: 2,
}


def supports_static_dispatch(gate_type: GateType, n_inputs: int) -> bool:
    """Whether ``(gate_type, n_inputs)`` can skip the checked evaluate path.

    Shared by both simulator backends: the loop backend resolves such gates
    to bare evaluators at compile time, and the fused planner
    (:mod:`repro.simulation.compiled`) only accepts gates satisfying this
    predicate — anything else keeps (or falls back to) the lazily raising
    :func:`evaluate_gate` semantics.  Keeping the condition in one place is
    what keeps the two backends' accept/reject behaviour identical.
    """
    return (gate_type in _EVALUATORS and n_inputs >= 1
            and not (gate_type is GateType.MUX and n_inputs != 3)
            and not (gate_type in (GateType.NOT, GateType.BUF)
                     and n_inputs != 1))


def evaluate_gate(gate_type: GateType, operands: Sequence[BoolArray]) -> BoolArray:
    """Evaluate ``gate_type`` on vectorised boolean ``operands``.

    Args:
        gate_type: A combinational (or masked composite) cell type.
        operands: One boolean array per input, all of equal shape.

    Returns:
        Boolean array with the gate's output for every vector.

    Raises:
        ValueError: for port/sequential cells or wrong operand counts.
    """
    if gate_type not in _EVALUATORS:
        raise ValueError(f"gate type {gate_type.value} is not combinational")
    if not operands:
        raise ValueError("evaluate_gate requires at least one operand")
    arrays = [np.asarray(op, dtype=bool) for op in operands]
    shape = arrays[0].shape
    if any(a.shape != shape for a in arrays):
        raise ValueError("all operands must share the same shape")
    if gate_type is GateType.MUX and len(arrays) != 3:
        raise ValueError("MUX requires exactly 3 operands (d0, d1, sel)")
    if gate_type in (GateType.NOT, GateType.BUF) and len(arrays) != 1:
        raise ValueError(f"{gate_type.value} requires exactly 1 operand")
    return _EVALUATORS[gate_type](arrays)


def gate_truth_table(gate_type: GateType, fanin: int) -> np.ndarray:
    """Return the truth table of ``gate_type`` for ``fanin`` inputs.

    The result is a boolean array of length ``2**fanin`` indexed by the
    integer formed by the input bits (input 0 is the least-significant bit).
    Useful for exhaustive equivalence checks in the test-suite.
    """
    n_rows = 2 ** fanin
    columns = []
    for bit in range(fanin):
        pattern = (np.arange(n_rows) >> bit) & 1
        columns.append(pattern.astype(bool))
    return evaluate_gate(gate_type, columns)
