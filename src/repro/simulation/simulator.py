"""Vectorised gate-level logic simulator.

The simulator evaluates a whole netlist for a *batch* of input vectors at
once: every net's value is a boolean array of shape ``(n_vectors,)``.  Two
interchangeable backends implement the sweep:

* ``"compiled"`` (default) — the fused levelised kernel of
  :mod:`repro.simulation.compiled`: a :class:`CompiledNetlist` plan is built
  once per simulator and each :meth:`LogicSimulator.evaluate` call runs a
  handful of large numpy segment kernels over one ``(n_signals, batch)``
  state matrix, releasing the GIL for the bulk of the work;
* ``"loop"`` — the reference per-gate Python loop (one vectorised evaluator
  call per gate), kept as the bit-identical oracle for regression tests.

Netlists the planner cannot fuse fall back to the loop transparently, which
preserves the reference engine's lazy error behaviour for malformed gates.

Sequential designs are handled by treating flip-flop outputs as additional
inputs of the combinational core: :meth:`LogicSimulator.evaluate` accepts an
optional register state and returns the next state, and
:meth:`LogicSimulator.run_cycles` iterates that for multi-cycle stimulus.
"""

from __future__ import annotations

from collections.abc import Mapping as AbcMapping
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..netlist.netlist import Netlist, NetlistError
from .compiled import CompilationError, CompiledNetlist
from .levelize import topological_gate_order
from .logic import _EVALUATORS, evaluate_gate, supports_static_dispatch

#: Simulation backends accepted by :class:`LogicSimulator` (and, downstream,
#: by ``TvlaConfig.sim_backend`` / ``PowerTraceGenerator``).
SIM_BACKENDS = ("compiled", "loop")


class SimulationError(Exception):
    """Raised for inconsistent stimulus (missing inputs, shape mismatch)."""


class _StateNetValues(AbcMapping):
    """Lazy ``net -> value`` mapping over a compiled state matrix.

    Behaves like the loop backend's ``net_values`` dictionary, but each
    lookup returns a (read-only) row view of the state matrix, created on
    demand.  Skipping the eager construction of one view object per net
    keeps the compiled fast path free of per-net Python work; bulk
    consumers should gather from
    :attr:`SimulationResult.state_matrix` directly.
    """

    __slots__ = ("_matrix", "_rows")

    def __init__(self, matrix: np.ndarray, rows: Mapping[str, int]) -> None:
        self._matrix = matrix
        self._rows = rows

    def __getitem__(self, net: str) -> np.ndarray:
        return self._matrix[self._rows[net]]

    def __iter__(self) -> Iterator[str]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, net: object) -> bool:
        return net in self._rows


class SimulationResult:
    """Values of every net for one evaluation batch.

    Attributes:
        net_values: Mapping net name -> boolean array ``(n_vectors,)``.
        next_state: Mapping DFF output net -> value captured at the clock
            edge (i.e. the DFF input values of this evaluation).
        n_vectors: Batch size.
        state_matrix: The compiled backend's read-only ``(n_signals,
            n_vectors)`` state matrix (``None`` for the loop backend).
            ``net_values`` entries are row views of it; bulk consumers
            index it directly instead of walking the mapping — the power
            engine adopts the plan's row numbering outright
            (``plan.signal_index``), and ad-hoc net sets resolve rows via
            :meth:`LogicSimulator.signal_rows`.
        packed_matrix: The compiled backend's read-only ``(n_signals,
            ceil(n_vectors / 8))`` **packed** byte matrix (``None`` for
            the loop backend); bit layout per
            :meth:`~repro.simulation.compiled.CompiledNetlist.execute_packed`.

    Results from the compiled backend are **lazy**: the sweep produces
    only ``packed_matrix``, and ``state_matrix`` / ``net_values`` /
    ``next_state`` unpack it on first access (cached thereafter).
    Consumers that stay on packed bits — the power engine's
    ``power_backend="packed"`` toggle extraction — therefore never pay
    the unpack, while every existing consumer sees the exact values it
    always did.
    """

    __slots__ = ("n_vectors", "_net_values", "_next_state", "_state_matrix",
                 "_packed", "_plan")

    def __init__(self, net_values: Optional[Mapping[str, np.ndarray]] = None,
                 next_state: Optional[Dict[str, np.ndarray]] = None,
                 n_vectors: int = 0,
                 state_matrix: Optional[np.ndarray] = None) -> None:
        self.n_vectors = n_vectors
        self._net_values = net_values
        self._next_state = next_state
        self._state_matrix = state_matrix
        self._packed: Optional[np.ndarray] = None
        self._plan: Optional[CompiledNetlist] = None

    @classmethod
    def from_packed(cls, plan: CompiledNetlist, packed: np.ndarray,
                    n_vectors: int) -> "SimulationResult":
        """Wrap a packed sweep result; unpacking is deferred to first use."""
        result = cls(n_vectors=n_vectors)
        result._plan = plan
        result._packed = packed
        return result

    @property
    def packed_matrix(self) -> Optional[np.ndarray]:
        """The packed byte matrix (``None`` on the loop backend)."""
        return self._packed

    @property
    def plan(self) -> Optional[CompiledNetlist]:
        """The compiled plan that produced this result (``None`` on loop).

        Packed consumers use it to resolve net names to packed-matrix rows
        (:meth:`~repro.simulation.compiled.CompiledNetlist.rows_for`).
        """
        return self._plan

    @property
    def state_matrix(self) -> Optional[np.ndarray]:
        """The boolean state matrix, unpacked on first access."""
        if self._state_matrix is None and self._packed is not None:
            self._state_matrix = self._plan.unpack(self._packed,
                                                   self.n_vectors)
        return self._state_matrix

    @property
    def net_values(self) -> Mapping[str, np.ndarray]:
        """Mapping net name -> boolean value array."""
        if self._net_values is None:
            self._net_values = _StateNetValues(self.state_matrix,
                                               self._plan.signal_index)
        return self._net_values

    @property
    def next_state(self) -> Dict[str, np.ndarray]:
        """Register next-state (private writable copies)."""
        if self._next_state is None:
            # Straight from the packed rows: advancing a sequential design
            # on the packed path never forces a full-matrix unpack.
            self._next_state = self._plan.next_state_packed(self._packed,
                                                            self.n_vectors)
        return self._next_state

    def __repr__(self) -> str:
        return (f"SimulationResult(n_vectors={self.n_vectors}, "
                f"packed={self._packed is not None})")

    def output_values(self, netlist: Netlist) -> Dict[str, np.ndarray]:
        """Values of the netlist's primary outputs."""
        return {net: self.net_values[net] for net in netlist.primary_outputs}

    def gate_output(self, netlist: Netlist, gate_name: str) -> np.ndarray:
        """Value of the output net of ``gate_name``."""
        return self.net_values[netlist.gate(gate_name).output]


class LogicSimulator:
    """Reusable simulator bound to one netlist.

    The evaluation plan is computed once in the constructor and reused
    across every :meth:`evaluate` call (and every cycle of
    :meth:`run_cycles`): the compiled backend builds a
    :class:`~repro.simulation.compiled.CompiledNetlist` of fused levelised
    segments, the loop backend resolves each gate's evaluator into a flat
    topological list.

    Args:
        netlist: The design to simulate.
        backend: ``"compiled"`` (default, the fused levelised kernel) or
            ``"loop"`` (the per-gate reference sweep).  A netlist the
            planner cannot fuse silently falls back to the loop; the
            backend actually in use is exposed as :attr:`backend`.

    Raises:
        ValueError: for unknown backend selectors.
    """

    def __init__(self, netlist: Netlist, backend: str = "compiled") -> None:
        if backend not in SIM_BACKENDS:
            raise ValueError(
                f"backend must be one of {SIM_BACKENDS}, got {backend!r}")
        self.netlist = netlist
        self._dff_gates = list(netlist.sequential_gates())

        #: The fused levelised plan, or ``None`` when the loop backend is
        #: active (requested, or forced by an unfusable netlist).
        self._plan: Optional[CompiledNetlist] = None
        if backend == "compiled":
            try:
                self._plan = CompiledNetlist(netlist)
            except CompilationError:
                self._plan = None

        # The loop dispatch plan is only built when it will actually run
        # (requested loop backend, or compiled fallback): resolve each
        # gate's evaluator, input tuple and output-inversion flag so the
        # per-batch loop is a straight run of vectorised ufunc calls.
        # Gates whose operand counts cannot be validated statically keep
        # the checked :func:`evaluate_gate` path (and its lazy errors) —
        # the same predicate the fused planner enforces, so the backends
        # accept/reject identical netlists.
        self._order: List[str] = []
        self._compiled = []
        if self._plan is None:
            self._order = topological_gate_order(netlist)
            for name in self._order:
                gate = netlist.gate(name)
                if supports_static_dispatch(gate.gate_type, len(gate.inputs)):
                    evaluator = _EVALUATORS[gate.gate_type]
                else:
                    evaluator = (lambda operands, gate_type=gate.gate_type:
                                 evaluate_gate(gate_type, operands))
                # Masked composites that replaced an inverting primitive
                # (NAND/NOR/XNOR) fold the inversion into their
                # recombination stage; honour the transform's attribute.
                inverted = bool(gate.gate_type.is_masked
                                and gate.attributes.get("inverted_output"))
                self._compiled.append(
                    (evaluator, tuple(gate.inputs), gate.output, inverted))
        #: The backend actually in use (``"compiled"`` or ``"loop"``).
        self.backend: str = "compiled" if self._plan is not None else "loop"

    @property
    def plan(self) -> Optional[CompiledNetlist]:
        """The compiled plan (``None`` when the loop backend is active)."""
        return self._plan

    def signal_rows(self, nets: Sequence[str]) -> Optional[np.ndarray]:
        """State-matrix rows of ``nets`` for bulk gathers.

        Returns ``None`` when the loop backend is active (no state matrix
        exists); otherwise an index array suitable for
        ``result.state_matrix[rows]``.  Unknown/undriven nets map to the
        shared constant-zero row, matching the loop's zero-default
        semantics.
        """
        if self._plan is None:
            return None
        return self._plan.rows_for(nets)

    # ------------------------------------------------------------------
    def evaluate(
        self,
        input_values: Mapping[str, np.ndarray],
        state: Optional[Mapping[str, np.ndarray]] = None,
    ) -> SimulationResult:
        """Evaluate the combinational logic for a batch of input vectors.

        Args:
            input_values: Mapping from primary-input net name to a boolean
                array; all arrays must share the same length.
            state: Optional mapping from DFF output net to its current
                value; missing registers default to 0.

        Returns:
            A :class:`SimulationResult` with every net's value and the next
            register state.

        Raises:
            SimulationError: if inputs are missing or shapes disagree.
        """
        n_vectors = self._batch_size(input_values)
        for net in self.netlist.primary_inputs:
            if net not in input_values:
                raise SimulationError(f"missing stimulus for primary input {net!r}")

        state_values: Dict[str, np.ndarray] = {}
        if state:
            for gate in self._dff_gates:
                if gate.output in state:
                    value = np.asarray(state[gate.output], dtype=bool)
                    if value.shape != (n_vectors,):
                        raise SimulationError(
                            f"state for register {gate.output!r} has shape "
                            f"{value.shape}; expected ({n_vectors},)")
                    state_values[gate.output] = value

        if self._plan is not None:
            # The plan casts/copies stimulus while packing, so no per-net
            # asarray pass is needed on this path.  The result stays packed
            # until someone actually asks for boolean values.
            packed = self._plan.execute_packed(input_values, state_values,
                                               n_vectors)
            return SimulationResult.from_packed(self._plan, packed, n_vectors)

        values: Dict[str, np.ndarray] = {}
        for net in self.netlist.primary_inputs:
            values[net] = np.asarray(input_values[net], dtype=bool)

        # One shared default buffer backs every undriven net and DFF
        # default; it is marked read-only so an in-place mutation by a
        # caller (or engine code) raises instead of silently corrupting
        # unrelated nets across cycles.
        zeros = np.zeros(n_vectors, dtype=bool)
        zeros.setflags(write=False)
        for gate in self._dff_gates:
            if gate.output in state_values:
                values[gate.output] = state_values[gate.output]
            else:
                values[gate.output] = zeros

        for evaluator, inputs, output_net, inverted in self._compiled:
            operands = []
            for net in inputs:
                value = values.get(net)
                if value is None:
                    # Undriven net: treat as constant 0 (matches common EDA
                    # semantics for floating inputs after optimisation).
                    values[net] = zeros
                    value = zeros
                operands.append(value)
            output = evaluator(operands)
            if inverted:
                output = np.logical_not(output)
            values[output_net] = output

        next_state: Dict[str, np.ndarray] = {}
        for gate in self._dff_gates:
            data_net = gate.inputs[0]
            # Export a private copy: callers may mutate the returned state
            # (e.g. to force register values) without aliasing net values
            # still referenced by this result or by the shared zero buffer.
            next_state[gate.output] = values.get(data_net, zeros).copy()
        return SimulationResult(values, next_state, n_vectors)

    def run_cycles(
        self,
        stimulus: Iterable[Mapping[str, np.ndarray]],
        initial_state: Optional[Mapping[str, np.ndarray]] = None,
    ) -> List[SimulationResult]:
        """Simulate several clock cycles of a sequential design.

        Args:
            stimulus: One input mapping per cycle.
            initial_state: Register state before the first cycle.

        Returns:
            One :class:`SimulationResult` per cycle, in order.
        """
        state = dict(initial_state) if initial_state else {}
        results: List[SimulationResult] = []
        for cycle_inputs in stimulus:
            result = self.evaluate(cycle_inputs, state)
            results.append(result)
            state = result.next_state
        return results

    # ------------------------------------------------------------------
    def _batch_size(self, input_values: Mapping[str, np.ndarray]) -> int:
        if not input_values:
            raise SimulationError("no input stimulus provided")
        sizes = set()
        scalars = []
        for net, value in input_values.items():
            # Fast path: stimulus is usually already ndarray; only coerce
            # lists/scalars, so the check costs no per-net allocations.
            shape = getattr(value, "shape", None)
            if shape is None:
                shape = np.asarray(value).shape
            if len(shape) >= 1:
                sizes.add(shape[0])
            else:
                scalars.append(net)
        if not sizes:
            raise SimulationError(
                f"scalar stimulus for input(s) {sorted(scalars)}; expected "
                f"1-D arrays (wrap single values as length-1 arrays/lists)")
        if len(sizes) != 1:
            raise SimulationError(f"inconsistent stimulus lengths: {sorted(sizes)}")
        return sizes.pop()


def simulate(netlist: Netlist, input_values: Mapping[str, np.ndarray],
             state: Optional[Mapping[str, np.ndarray]] = None) -> SimulationResult:
    """One-shot convenience wrapper around :class:`LogicSimulator`."""
    return LogicSimulator(netlist).evaluate(input_values, state)


def functional_equivalent(
    netlist_a: Netlist,
    netlist_b: Netlist,
    n_vectors: int = 256,
    seed: int = 0,
) -> bool:
    """Check (by random simulation) that two netlists compute the same outputs.

    Both netlists must share primary input and output names.  Used to verify
    that the masking transform preserves functionality.
    """
    if set(netlist_a.primary_inputs) != set(netlist_b.primary_inputs):
        raise NetlistError("netlists have different primary inputs")
    common_outputs = set(netlist_a.primary_outputs) & set(netlist_b.primary_outputs)
    if not common_outputs:
        raise NetlistError("netlists share no primary outputs")
    rng = np.random.default_rng(seed)
    matrix = rng.integers(0, 2, size=(n_vectors, len(netlist_a.primary_inputs)),
                          dtype=np.uint8).astype(bool)
    stimulus = {net: matrix[:, i]
                for i, net in enumerate(netlist_a.primary_inputs)}
    result_a = simulate(netlist_a, stimulus)
    result_b = simulate(netlist_b, stimulus)
    for net in common_outputs:
        if not np.array_equal(result_a.net_values[net], result_b.net_values[net]):
            return False
    return True
