"""Vectorised gate-level logic simulator.

The simulator evaluates a whole netlist for a *batch* of input vectors at
once: every net's value is a boolean array of shape ``(n_vectors,)`` and
every gate evaluation is a single numpy operation.  This batching is what
makes simulation-based TVLA campaigns (thousands of traces per design)
tractable in pure Python.

Sequential designs are handled by treating flip-flop outputs as additional
inputs of the combinational core: :meth:`LogicSimulator.evaluate` accepts an
optional register state and returns the next state, and
:meth:`LogicSimulator.run_cycles` iterates that for multi-cycle stimulus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from ..netlist.cell_library import GateType
from ..netlist.netlist import Netlist, NetlistError
from .levelize import topological_gate_order
from .logic import _EVALUATORS, evaluate_gate


class SimulationError(Exception):
    """Raised for inconsistent stimulus (missing inputs, shape mismatch)."""


@dataclass
class SimulationResult:
    """Values of every net for one evaluation batch.

    Attributes:
        net_values: Mapping net name -> boolean array ``(n_vectors,)``.
        next_state: Mapping DFF output net -> value captured at the clock
            edge (i.e. the DFF input values of this evaluation).
        n_vectors: Batch size.
    """

    net_values: Dict[str, np.ndarray]
    next_state: Dict[str, np.ndarray]
    n_vectors: int

    def output_values(self, netlist: Netlist) -> Dict[str, np.ndarray]:
        """Values of the netlist's primary outputs."""
        return {net: self.net_values[net] for net in netlist.primary_outputs}

    def gate_output(self, netlist: Netlist, gate_name: str) -> np.ndarray:
        """Value of the output net of ``gate_name``."""
        return self.net_values[netlist.gate(gate_name).output]


class LogicSimulator:
    """Reusable simulator bound to one netlist.

    The topological gate order is computed once in the constructor; each
    :meth:`evaluate` call is then a linear sweep over the gates.
    """

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self._order: List[str] = topological_gate_order(netlist)
        self._dff_gates = list(netlist.sequential_gates())
        # Compile the evaluation sweep once: resolve each gate's evaluator,
        # input tuple and output-inversion flag so the per-batch loop is a
        # straight run of vectorised ufunc calls.  Gates whose operand
        # counts cannot be validated statically keep the checked
        # :func:`evaluate_gate` path (and its lazy errors).
        self._compiled = []
        for name in self._order:
            gate = netlist.gate(name)
            evaluator = _EVALUATORS.get(gate.gate_type)
            n_inputs = len(gate.inputs)
            valid = (evaluator is not None and n_inputs >= 1
                     and not (gate.gate_type is GateType.MUX and n_inputs != 3)
                     and not (gate.gate_type in (GateType.NOT, GateType.BUF)
                              and n_inputs != 1))
            if not valid:
                evaluator = (lambda operands, gate_type=gate.gate_type:
                             evaluate_gate(gate_type, operands))
            # Masked composites that replaced an inverting primitive
            # (NAND/NOR/XNOR) fold the inversion into their recombination
            # stage; honour that through the transform's attribute.
            inverted = bool(gate.gate_type.is_masked
                            and gate.attributes.get("inverted_output"))
            self._compiled.append(
                (evaluator, tuple(gate.inputs), gate.output, inverted))

    # ------------------------------------------------------------------
    def evaluate(
        self,
        input_values: Mapping[str, np.ndarray],
        state: Optional[Mapping[str, np.ndarray]] = None,
    ) -> SimulationResult:
        """Evaluate the combinational logic for a batch of input vectors.

        Args:
            input_values: Mapping from primary-input net name to a boolean
                array; all arrays must share the same length.
            state: Optional mapping from DFF output net to its current
                value; missing registers default to 0.

        Returns:
            A :class:`SimulationResult` with every net's value and the next
            register state.

        Raises:
            SimulationError: if inputs are missing or shapes disagree.
        """
        n_vectors = self._batch_size(input_values)
        values: Dict[str, np.ndarray] = {}
        for net in self.netlist.primary_inputs:
            if net not in input_values:
                raise SimulationError(f"missing stimulus for primary input {net!r}")
            values[net] = np.asarray(input_values[net], dtype=bool)

        # One shared default buffer backs every undriven net and DFF
        # default; it is marked read-only so an in-place mutation by a
        # caller (or engine code) raises instead of silently corrupting
        # unrelated nets across cycles.
        zeros = np.zeros(n_vectors, dtype=bool)
        zeros.setflags(write=False)
        for gate in self._dff_gates:
            if state is not None and gate.output in state:
                value = np.asarray(state[gate.output], dtype=bool)
                if value.shape != (n_vectors,):
                    raise SimulationError(
                        f"state for register {gate.output!r} has shape "
                        f"{value.shape}; expected ({n_vectors},)")
                values[gate.output] = value
            else:
                values[gate.output] = zeros

        for evaluator, inputs, output_net, inverted in self._compiled:
            operands = []
            for net in inputs:
                value = values.get(net)
                if value is None:
                    # Undriven net: treat as constant 0 (matches common EDA
                    # semantics for floating inputs after optimisation).
                    values[net] = zeros
                    value = zeros
                operands.append(value)
            output = evaluator(operands)
            if inverted:
                output = np.logical_not(output)
            values[output_net] = output

        next_state: Dict[str, np.ndarray] = {}
        for gate in self._dff_gates:
            data_net = gate.inputs[0]
            # Export a private copy: callers may mutate the returned state
            # (e.g. to force register values) without aliasing net values
            # still referenced by this result or by the shared zero buffer.
            next_state[gate.output] = values.get(data_net, zeros).copy()
        return SimulationResult(values, next_state, n_vectors)

    def run_cycles(
        self,
        stimulus: Iterable[Mapping[str, np.ndarray]],
        initial_state: Optional[Mapping[str, np.ndarray]] = None,
    ) -> List[SimulationResult]:
        """Simulate several clock cycles of a sequential design.

        Args:
            stimulus: One input mapping per cycle.
            initial_state: Register state before the first cycle.

        Returns:
            One :class:`SimulationResult` per cycle, in order.
        """
        state = dict(initial_state) if initial_state else {}
        results: List[SimulationResult] = []
        for cycle_inputs in stimulus:
            result = self.evaluate(cycle_inputs, state)
            results.append(result)
            state = result.next_state
        return results

    # ------------------------------------------------------------------
    def _batch_size(self, input_values: Mapping[str, np.ndarray]) -> int:
        if not input_values:
            raise SimulationError("no input stimulus provided")
        sizes = set()
        scalars = []
        for net, value in input_values.items():
            array = np.asarray(value)
            if array.ndim >= 1:
                sizes.add(array.shape[0])
            else:
                scalars.append(net)
        if not sizes:
            raise SimulationError(
                f"scalar stimulus for input(s) {sorted(scalars)}; expected "
                f"1-D arrays (wrap single values as length-1 arrays/lists)")
        if len(sizes) != 1:
            raise SimulationError(f"inconsistent stimulus lengths: {sorted(sizes)}")
        return sizes.pop()


def simulate(netlist: Netlist, input_values: Mapping[str, np.ndarray],
             state: Optional[Mapping[str, np.ndarray]] = None) -> SimulationResult:
    """One-shot convenience wrapper around :class:`LogicSimulator`."""
    return LogicSimulator(netlist).evaluate(input_values, state)


def functional_equivalent(
    netlist_a: Netlist,
    netlist_b: Netlist,
    n_vectors: int = 256,
    seed: int = 0,
) -> bool:
    """Check (by random simulation) that two netlists compute the same outputs.

    Both netlists must share primary input and output names.  Used to verify
    that the masking transform preserves functionality.
    """
    if set(netlist_a.primary_inputs) != set(netlist_b.primary_inputs):
        raise NetlistError("netlists have different primary inputs")
    common_outputs = set(netlist_a.primary_outputs) & set(netlist_b.primary_outputs)
    if not common_outputs:
        raise NetlistError("netlists share no primary outputs")
    rng = np.random.default_rng(seed)
    matrix = rng.integers(0, 2, size=(n_vectors, len(netlist_a.primary_inputs)),
                          dtype=np.uint8).astype(bool)
    stimulus = {net: matrix[:, i]
                for i, net in enumerate(netlist_a.primary_inputs)}
    result_a = simulate(netlist_a, stimulus)
    result_b = simulate(netlist_b, stimulus)
    for net in common_outputs:
        if not np.array_equal(result_a.net_values[net], result_b.net_values[net]):
            return False
    return True
