"""Fused levelised simulation kernel: the plan/execute split.

The reference simulator (:class:`~repro.simulation.simulator.LogicSimulator`
with ``backend="loop"``) evaluates one gate per Python iteration.  Each
iteration is a vectorised numpy call, but the loop itself — operand list
construction, evaluator dispatch, dictionary stores — runs under the GIL and
dominates once designs reach a few hundred gates.  That loop is what capped
the thread-executor scaling of sharded TVLA campaigns
(``microbench_sharded_tvla_scaling``).

This module removes the per-gate loop with a classic plan/execute split:

* **Plan** (:class:`CompiledNetlist`) — walk
  :func:`~repro.simulation.levelize.level_groups` once and greedily fuse
  the gates into homogeneous :class:`GateSegment` batches.  A segment
  groups gates that share ``(kernel, fan-in, inversion)`` — NAND fuses
  with AND, masked composites with their unmasked Boolean function — and a
  gate joins the earliest such segment scheduled after all of its operand
  producers, so same-kernel work merges *across* levels and the segment
  count tracks same-kernel dependency-chain depth rather than the raw
  level count.  Each segment stores

  - one ``(fanin, n_gates)`` operand-row index array into the state matrix,
  - one kernel selector (``bitwise_and.reduce`` / ``bitwise_or.reduce`` /
    ``bitwise_xor.reduce``, negation, copy, or the 2:1-mux select), and
  - one contiguous output row slice, so the kernel writes straight into the
    state matrix.

* **Execute** (:meth:`CompiledNetlist.execute_packed`) — run a handful of
  large fused numpy calls per level.  The sweep is **bit-parallel**: the
  batch dimension is packed eight vectors to a byte (``numpy.packbits``),
  so every signal is a ``(n_vectors / 8)``-byte row, every gate evaluation
  is a bitwise byte operation, and the whole sweep touches 8x less memory
  than a boolean evaluation would.  ``execute_packed`` returns that packed
  ``(n_signals, ceil(n_vectors / 8))`` byte matrix directly — consumers
  that can work on packed bits (the power engine's
  ``power_backend="packed"`` toggle extraction) never pay an unpack at
  all, while :meth:`CompiledNetlist.unpack` (or the convenience
  :meth:`CompiledNetlist.execute`) materialises the boolean
  ``(n_signals, n_vectors)`` state matrix for everyone else.  Every call
  operates on whole segments, so numpy releases the GIL for the bulk of
  each chunk's work and thread-pool shards (:mod:`repro.tvla.sharding`)
  genuinely overlap.

The plan is immutable after construction and ``execute`` allocates fresh
buffers per call, so one plan can be shared by concurrent threads.  Netlists
the planner cannot fuse (malformed arities, port pseudo-cells instantiated
as gates) raise :class:`CompilationError`; the simulator then falls back to
the per-gate loop, which preserves the reference engine's lazy error
behaviour.  The loop backend remains the oracle: the two backends are
bit-identical on every net (pinned by ``tests/test_compiled_backend.py``).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..netlist.cell_library import GateType
from ..netlist.netlist import Gate, Netlist
from .levelize import level_groups
from .logic import supports_static_dispatch

#: Row index of the shared constant-zero signal (undriven nets, register
#: defaults); row 0 of every state matrix.
ZERO_ROW = 0

# Kernel selectors; one per fused numpy operation the executor knows.
_K_COPY = 0    # BUF: gather the operand row
_K_NOT = 1     # NOT: negated gather
_K_AND = 2     # AND family (n-ary bitwise_and.reduce)
_K_OR = 3      # OR family
_K_XOR = 4     # XOR family
_K_MUX = 5     # MUX(d0, d1, sel): (d0 & ~sel) | (d1 & sel)

_BINARY_UFUNC = {_K_AND: np.bitwise_and, _K_OR: np.bitwise_or,
                 _K_XOR: np.bitwise_xor}

# Executor opcodes: kernel with the fan-in class folded in (resolved once
# at plan time so the execute loop dispatches on a single integer).
(_OP_AND2, _OP_OR2, _OP_XOR2, _OP_COPY, _OP_NOT,
 _OP_ANDN, _OP_ORN, _OP_XORN, _OP_MUX) = range(9)

_REDUCE_UFUNC = {_OP_ANDN: np.bitwise_and, _OP_ORN: np.bitwise_or,
                 _OP_XORN: np.bitwise_xor}

#: Kernel and output inversion per gate type.  Masked composites compute the
#: unmasked Boolean function of their two data inputs (randomness inputs are
#: ignored for the logical value, mirroring :mod:`repro.simulation.logic`).
_GATE_KERNELS: Dict[GateType, Tuple[int, bool]] = {
    GateType.BUF: (_K_COPY, False),
    GateType.NOT: (_K_NOT, False),
    GateType.AND: (_K_AND, False),
    GateType.NAND: (_K_AND, True),
    GateType.OR: (_K_OR, False),
    GateType.NOR: (_K_OR, True),
    GateType.XOR: (_K_XOR, False),
    GateType.XNOR: (_K_XOR, True),
    GateType.MUX: (_K_MUX, False),
    GateType.MASKED_AND: (_K_AND, False),
    GateType.MASKED_OR: (_K_OR, False),
    GateType.MASKED_XOR: (_K_XOR, False),
    GateType.MASKED_AND_DOM: (_K_AND, False),
}


class CompilationError(Exception):
    """Raised when a netlist cannot be fused into levelised segments.

    The simulator treats this as "use the per-gate reference loop", which
    keeps the loop backend's lazy error semantics for malformed gates.
    """


class GateSegment:
    """One homogeneous fused batch of gates.

    All gates in a segment share a kernel, a fan-in and an
    output-inversion flag, and every operand is produced by an earlier
    segment (or is a level-0 source), so a single numpy kernel evaluates
    the whole segment: gather the operand rows, reduce (or select), write
    the contiguous output slice of the state matrix.

    Attributes:
        level: Logic level at which the segment first became executable
            (the level of the gate that opened it; 1 = fed by sources).
        kernel: Kernel selector (internal; AND/OR/XOR reduce, copy,
            negation, or mux select).
        operand_rows: ``(fanin, n_gates)`` state-matrix row indices; column
            ``j`` holds the operand rows of the segment's ``j``-th gate.
        out_start: First state-matrix row written by this segment.
        out_stop: One past the last row written (``out_stop - out_start ==
            n_gates``).
        invert: Whether the kernel result is negated before the store
            (NAND/NOR/XNOR and masked composites replacing them).
    """

    __slots__ = ("level", "kernel", "operand_rows", "out_start", "out_stop",
                 "invert")

    def __init__(self, level: int, kernel: int, operand_rows: np.ndarray,
                 out_start: int, out_stop: int, invert: bool) -> None:
        self.level = level
        self.kernel = kernel
        self.operand_rows = operand_rows
        self.out_start = out_start
        self.out_stop = out_stop
        self.invert = invert

    @property
    def n_gates(self) -> int:
        """Number of gates fused into this segment."""
        return self.out_stop - self.out_start


def _plan_gate(gate: Gate) -> Tuple[int, List[str], bool]:
    """Resolve one gate to ``(kernel, operand nets, invert)``.

    Mirrors the validity conditions of the reference loop's static compile
    step; anything the loop would defer to the checked (lazily raising)
    :func:`~repro.simulation.logic.evaluate_gate` path is rejected here so
    the simulator falls back to the loop wholesale.

    Raises:
        CompilationError: for gate arities/types the fused kernels do not
            cover.
    """
    gate_type = gate.gate_type
    n_inputs = len(gate.inputs)
    if not supports_static_dispatch(gate_type, n_inputs):
        raise CompilationError(
            f"gate {gate.name!r} ({gate_type.value}, {n_inputs} inputs) "
            f"cannot be fused")
    kernel, invert = _GATE_KERNELS[gate_type]
    if gate_type.is_masked:
        if n_inputs < 2:
            raise CompilationError(
                f"masked gate {gate.name!r} has {n_inputs} input(s)")
        operands = list(gate.inputs[:2])
        # Masked composites that replaced an inverting primitive fold the
        # inversion into their recombination stage (transform attribute).
        invert = bool(gate.attributes.get("inverted_output"))
    else:
        operands = list(gate.inputs)
    return kernel, operands, invert


class CompiledNetlist:
    """Executable levelised plan for one netlist.

    The constructor performs the **plan** step: assign every signal a row in
    the state matrix (row 0 is the shared constant-zero signal, then primary
    inputs, then flip-flop outputs, then one contiguous row range per fused
    :class:`GateSegment` in level order) and precompute each segment's
    operand-row indices and kernel.

    Args:
        netlist: The design to compile.  Sequential designs are supported:
            flip-flop outputs are level-0 signals like primary inputs.

    Raises:
        CompilationError: if any combinational gate cannot be fused (the
            caller should fall back to the per-gate reference loop).
        LevelizationError: if the netlist has a combinational loop.

    Example (doctest)::

        >>> from repro.netlist import GateType, Netlist
        >>> from repro.simulation import CompiledNetlist
        >>> n = Netlist("tiny")
        >>> for net in ("a", "b", "c"):
        ...     n.add_primary_input(net)
        >>> _ = n.add_gate("g1", GateType.AND, ["a", "b"], "n1")
        >>> _ = n.add_gate("g2", GateType.AND, ["b", "c"], "n2")
        >>> _ = n.add_gate("g3", GateType.XOR, ["n1", "n2"], "y")
        >>> plan = CompiledNetlist(n)
        >>> plan.n_levels, plan.n_segments  # the two ANDs fuse into one
        (2, 2)
    """

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        row_of: Dict[str, int] = {}
        next_row = ZERO_ROW + 1

        input_items: List[Tuple[str, int]] = []
        for net in netlist.primary_inputs:
            row_of[net] = next_row
            input_items.append((net, next_row))
            next_row += 1

        dff_gates = list(netlist.sequential_gates())
        for gate in dff_gates:
            if len(gate.inputs) != 1:
                raise CompilationError(
                    f"register {gate.name!r} has {len(gate.inputs)} inputs")
            row_of[gate.output] = next_row
            next_row += 1
        #: Contiguous row range holding the register outputs.
        self._dff_rows = (next_row - len(dff_gates), next_row)
        self._dff_outputs: Tuple[str, ...] = tuple(
            gate.output for gate in dff_gates)

        # Schedule pass: walk the levelised gates once and greedily fuse
        # them into homogeneous segments.  A gate may join an existing
        # segment with the same (kernel, fan-in, inversion) key as long as
        # every one of its operand producers runs in a strictly earlier
        # segment; otherwise a fresh segment is appended.  This merges
        # same-kernel work *across* levels (a level-5 XOR whose operands
        # were produced by level-1 gates rides in the first XOR segment
        # that runs late enough), so the segment count tracks the depth of
        # same-kernel dependency chains rather than the raw level count.
        #: scheduled segments: [key, level, [(gate, operands), ...]]
        scheduled: List[List] = []
        by_key: Dict[Tuple[int, int, bool], List[int]] = {}
        #: net -> index of the segment producing it (-1 for level-0 sources)
        producer: Dict[str, int] = {}
        depth = 0
        for level, names in level_groups(netlist):
            depth = level
            for name in names:
                gate = netlist.gate(name)
                kernel, operands, invert = _plan_gate(gate)
                key = (kernel, len(operands), invert)
                ready_after = max(
                    (producer.get(net, -1) for net in operands), default=-1)
                target = -1
                for index in by_key.get(key, ()):
                    if index > ready_after:
                        target = index
                        break
                if target < 0:
                    target = len(scheduled)
                    scheduled.append([key, level, []])
                    by_key.setdefault(key, []).append(target)
                scheduled[target][2].append((gate, operands))
                producer[gate.output] = target

        segments: List[GateSegment] = []
        for (kernel, fanin, invert), level, members in scheduled:
            rows = np.empty((fanin, len(members)), dtype=np.intp)
            out_start = next_row
            for j, (gate, operands) in enumerate(members):
                for i, net in enumerate(operands):
                    # Unseen operands are undriven (drivers always live in
                    # earlier segments): share the constant-zero row.
                    rows[i, j] = row_of.setdefault(net, ZERO_ROW)
                # Ignored trailing inputs (masked-composite randomness
                # nets) still surface in net_values, like the loop does.
                for net in gate.inputs[len(operands):]:
                    row_of.setdefault(net, ZERO_ROW)
                row_of[gate.output] = next_row
                next_row += 1
            segments.append(GateSegment(level, kernel, rows, out_start,
                                        next_row, invert))

        #: (register output net, its row, its data-input row) triplets; the
        #: data row falls back to the zero row for undriven data nets.
        self._dff_next_items: Tuple[Tuple[str, int, int], ...] = tuple(
            (gate.output, row_of[gate.output],
             row_of.get(gate.inputs[0], ZERO_ROW))
            for gate in dff_gates)
        self._input_items: Tuple[Tuple[str, int], ...] = tuple(input_items)
        self._segments: Tuple[GateSegment, ...] = tuple(segments)
        self._row_of = row_of
        self._depth = depth
        self.n_signals = next_row

        # Flat dispatch list: one (opcode, operand rows, out start, out
        # stop, invert) tuple per segment, with the fan-in class folded
        # into the opcode so the executor's inner loop is a single
        # tuple-unpack plus an if-chain ordered by frequency.
        self._exec: List[Tuple[int, np.ndarray, int, int, bool]] = []
        for seg in segments:
            rows = seg.operand_rows
            fanin = rows.shape[0]
            if seg.kernel == _K_COPY or fanin == 1:
                opcode = (_OP_NOT if seg.kernel == _K_NOT else _OP_COPY)
                operand = rows[0]
            elif seg.kernel == _K_MUX:
                opcode = _OP_MUX
                operand = rows
            elif fanin == 2:
                opcode = {_K_AND: _OP_AND2, _K_OR: _OP_OR2,
                          _K_XOR: _OP_XOR2}[seg.kernel]
                operand = rows
            else:
                opcode = {_K_AND: _OP_ANDN, _K_OR: _OP_ORN,
                          _K_XOR: _OP_XORN}[seg.kernel]
                operand = rows
            self._exec.append((opcode, operand, seg.out_start, seg.out_stop,
                               seg.invert))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def segments(self) -> Tuple[GateSegment, ...]:
        """The fused segments in execution (level) order."""
        return self._segments

    @property
    def n_segments(self) -> int:
        """Total number of fused segments (numpy-kernel batches)."""
        return len(self._segments)

    @property
    def n_levels(self) -> int:
        """Combinational depth of the design (number of logic levels).

        Taken from the levelisation, not from the segments: cross-level
        fusion can absorb a whole level into an earlier segment, so the
        distinct segment-opening levels would understate the depth.
        """
        return self._depth

    @property
    def n_gates(self) -> int:
        """Number of combinational gates covered by the plan."""
        return sum(segment.n_gates for segment in self._segments)

    @property
    def signal_index(self) -> Mapping[str, int]:
        """Mapping net name -> state-matrix row for every net in the plan.

        Covers the reference loop's ``net_values`` key set: primary inputs,
        register outputs, every gate input (undriven ones share the zero
        row) and every gate output.
        """
        return self._row_of

    def rows_for(self, nets: Sequence[str]) -> np.ndarray:
        """State-matrix rows of ``nets`` (zero row for unknown nets).

        Consumers that repeatedly read the same net set resolve their rows
        once and gather ``state_matrix[rows]`` per evaluation instead of
        walking a dict.  (The power engine goes one step further and adopts
        :attr:`signal_index` numbering for its whole plan, making its net
        matrix a zero-copy view.)
        """
        return np.asarray([self._row_of.get(net, ZERO_ROW) for net in nets],
                          dtype=np.intp)

    def describe(self) -> Dict[str, float]:
        """Plan statistics (used by benches and the architecture docs)."""
        n_gates = self.n_gates
        n_segments = self.n_segments
        return {
            "n_signals": self.n_signals,
            "n_gates": n_gates,
            "n_levels": self.n_levels,
            "n_segments": n_segments,
            "gates_per_segment": n_gates / n_segments if n_segments else 0.0,
        }

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        input_values: Mapping[str, np.ndarray],
        state: Optional[Mapping[str, np.ndarray]] = None,
        n_vectors: Optional[int] = None,
    ) -> np.ndarray:
        """Run the levelised sweep and unpack the boolean state matrix.

        Convenience wrapper: :meth:`execute_packed` followed by
        :meth:`unpack`.  Consumers that can work on packed bits (the power
        engine's packed toggle extraction) call ``execute_packed`` directly
        and skip the unpack entirely.

        Args:
            input_values: Boolean array per primary input, shape
                ``(n_vectors,)`` each (the caller validates completeness
                and shape consistency).
            state: Optional register values (output net -> boolean array);
                missing registers default to 0.
            n_vectors: Batch size; inferred from the first input when
                omitted.

        Returns:
            The filled ``(n_signals, n_vectors)`` boolean state matrix,
            marked read-only.  Fresh buffers are allocated per call, so
            results from successive calls never alias and the plan is safe
            to share across threads.
        """
        if n_vectors is None:
            first = next(iter(input_values.values()))
            n_vectors = int(np.asarray(first).shape[0])
        packed = self.execute_packed(input_values, state, n_vectors)
        return self.unpack(packed, n_vectors)

    def execute_packed(
        self,
        input_values: Mapping[str, np.ndarray],
        state: Optional[Mapping[str, np.ndarray]] = None,
        n_vectors: Optional[int] = None,
    ) -> np.ndarray:
        """Run the bit-parallel sweep and return the **packed** state matrix.

        Inputs are packed eight vectors to a byte and every segment kernel
        is a fused bitwise byte operation; no unpack happens here.  Bit
        ``j`` (MSB first, ``numpy.packbits`` order) of byte ``k`` in a row
        holds vector ``8 * k + j`` of that signal; bits beyond
        ``n_vectors`` in the last byte are padding with **unspecified**
        values (inverting kernels flip them), so consumers must mask or
        drop them — :meth:`unpack` and
        :func:`repro.power.bitops.popcount_rows` both do.

        Args/threading contract: as :meth:`execute`.

        Returns:
            The ``(n_signals, ceil(n_vectors / 8))`` uint8 matrix, marked
            read-only (row views of it are shared with lazy consumers).
        """
        if n_vectors is None:
            first = next(iter(input_values.values()))
            n_vectors = int(np.asarray(first).shape[0])
        n_bytes = (n_vectors + 7) // 8
        # calloc'd: row 0 (constant zero), register defaults and undriven
        # rows are already correct.  Padding bits beyond n_vectors in the
        # last byte are dropped by the final unpack.
        packed = np.zeros((self.n_signals, n_bytes), dtype=np.uint8)

        if self._input_items:
            stacked = np.empty((len(self._input_items), n_vectors),
                               dtype=bool)
            for i, (net, _) in enumerate(self._input_items):
                stacked[i] = input_values[net]
            first_row = self._input_items[0][1]
            packed[first_row:first_row + len(self._input_items)] = (
                np.packbits(stacked, axis=1))
        if state:
            start, stop = self._dff_rows
            stacked = np.zeros((stop - start, n_vectors), dtype=bool)
            for i, net in enumerate(self._dff_outputs):
                value = state.get(net)
                if value is not None:
                    stacked[i] = value
            packed[start:stop] = np.packbits(stacked, axis=1)

        band, bor, bxor = np.bitwise_and, np.bitwise_or, np.bitwise_xor
        bnot, copyto = np.bitwise_not, np.copyto
        for opcode, rows, start, stop, invert in self._exec:
            out = packed[start:stop]
            if opcode == _OP_AND2:
                # The dominant cases: one gather, one fused binary op.
                operands = packed[rows]
                band(operands[0], operands[1], out=out)
            elif opcode == _OP_XOR2:
                operands = packed[rows]
                bxor(operands[0], operands[1], out=out)
            elif opcode == _OP_OR2:
                operands = packed[rows]
                bor(operands[0], operands[1], out=out)
            elif opcode == _OP_COPY:
                copyto(out, packed[rows])
            elif opcode == _OP_NOT:
                bnot(packed[rows], out=out)
            elif opcode == _OP_MUX:
                # MUX(d0, d1, sel) = (d0 & ~sel) | (d1 & sel); the gathered
                # operands are private copies, mutated freely.
                d0, d1, sel = packed[rows]
                band(d1, sel, out=d1)
                bnot(sel, out=sel)
                band(d0, sel, out=d0)
                bor(d0, d1, out=out)
            else:
                _REDUCE_UFUNC[opcode].reduce(packed[rows], axis=0, out=out)
            if invert:
                bnot(out, out=out)

        packed.setflags(write=False)
        return packed

    @staticmethod
    def unpack(packed: np.ndarray, n_vectors: int) -> np.ndarray:
        """Unpack a matrix from :meth:`execute_packed` to boolean form.

        Returns:
            The ``(n_signals, n_vectors)`` boolean state matrix, marked
            read-only: every exported net value is a view of this matrix,
            so an in-place mutation by a caller raises instead of silently
            corrupting other nets (same contract as the loop backend's
            shared zero buffer, extended to all signals).
        """
        matrix = np.unpackbits(packed, axis=1, count=n_vectors).view(bool)
        matrix.setflags(write=False)
        return matrix

    def next_state(self, state_matrix: np.ndarray) -> Dict[str, np.ndarray]:
        """Extract the register next-state from an executed state matrix.

        Returns private copies (callers may mutate the returned state
        without aliasing the read-only matrix), mirroring the loop backend.
        """
        return {net: state_matrix[data_row].copy()
                for net, _, data_row in self._dff_next_items}

    def next_state_packed(self, packed: np.ndarray,
                          n_vectors: int) -> Dict[str, np.ndarray]:
        """Register next-state straight from a packed state matrix.

        Unpacks only the register data rows, so multi-cycle runs on the
        packed path never force a full-matrix unpack just to advance the
        clock.  Returns fresh writable arrays, like :meth:`next_state`.
        """
        if not self._dff_next_items:
            return {}
        data_rows = np.asarray([row for _, _, row in self._dff_next_items],
                               dtype=np.intp)
        values = np.unpackbits(packed[data_rows], axis=1,
                               count=n_vectors).view(bool)
        return {net: values[i]
                for i, (net, _, _) in enumerate(self._dff_next_items)}
