"""Vectorised gate-level logic simulation (levelise → compile → execute)."""

from .logic import MASKED_DATA_INPUTS, evaluate_gate, gate_truth_table
from .levelize import (
    LevelizationError,
    gate_levels,
    level_groups,
    topological_gate_order,
)
from .compiled import CompilationError, CompiledNetlist, GateSegment
from .simulator import (
    SIM_BACKENDS,
    LogicSimulator,
    SimulationError,
    SimulationResult,
    functional_equivalent,
    simulate,
)
from .vectors import (
    TraceCampaign,
    fixed_vector,
    fixed_vs_fixed_campaigns,
    fixed_vs_random_campaigns,
    input_matrix_to_dict,
    random_vectors,
)
from .switching import (
    design_switching_summary,
    switching_activity,
    toggle_counts,
    toggle_matrix,
)

__all__ = [
    "MASKED_DATA_INPUTS",
    "evaluate_gate",
    "gate_truth_table",
    "LevelizationError",
    "gate_levels",
    "level_groups",
    "topological_gate_order",
    "CompilationError",
    "CompiledNetlist",
    "GateSegment",
    "SIM_BACKENDS",
    "LogicSimulator",
    "SimulationError",
    "SimulationResult",
    "functional_equivalent",
    "simulate",
    "TraceCampaign",
    "fixed_vector",
    "fixed_vs_fixed_campaigns",
    "fixed_vs_random_campaigns",
    "input_matrix_to_dict",
    "random_vectors",
    "design_switching_summary",
    "switching_activity",
    "toggle_counts",
    "toggle_matrix",
]
