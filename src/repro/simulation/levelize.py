"""Levelisation: topological ordering of a netlist's combinational gates.

The simulator evaluates gates level by level; flip-flop outputs and primary
inputs form level 0, and every combinational gate is placed after all of its
drivers.  The ordering is computed once per netlist and reused across all
simulation batches.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx

from ..netlist.graph import combinational_graph
from ..netlist.netlist import Netlist


class LevelizationError(Exception):
    """Raised when a netlist cannot be levelised (combinational loops)."""


def _sorted_combinational_dag(netlist: Netlist):
    """Build the combinational DAG once and topologically sort it.

    Shared by the public helpers below so a levelisation query costs one
    graph construction instead of one per helper.

    Raises:
        LevelizationError: if the combinational portion contains a cycle.
    """
    dag = combinational_graph(netlist)
    try:
        order = list(nx.topological_sort(dag))
    except nx.NetworkXUnfeasible as exc:
        raise LevelizationError(
            f"netlist {netlist.name!r} has a combinational loop"
        ) from exc
    return dag, order


def topological_gate_order(netlist: Netlist) -> List[str]:
    """Return combinational gate names in dependency order.

    Raises:
        LevelizationError: if the combinational portion contains a cycle.
    """
    _, order = _sorted_combinational_dag(netlist)
    return [name for name in order if name in netlist]


def gate_levels(netlist: Netlist) -> Dict[str, int]:
    """Map each combinational gate to its logic level (1 = fed by sources)."""
    dag, order = _sorted_combinational_dag(netlist)
    levels: Dict[str, int] = {}
    for name in order:
        if name not in netlist:
            continue
        preds = dag.predecessors(name)
        levels[name] = 1 + max((levels.get(p, 0) for p in preds), default=0)
    return levels


def level_groups(netlist: Netlist) -> List[Tuple[int, List[str]]]:
    """Group combinational gates by level, sorted by level ascending."""
    levels = gate_levels(netlist)
    grouped: Dict[int, List[str]] = {}
    for name, level in levels.items():
        grouped.setdefault(level, []).append(name)
    return [(level, sorted(names)) for level, names in sorted(grouped.items())]
