"""Input-vector generation for simulation and TVLA campaigns.

TVLA (paper §II-A) compares the power distribution of two groups of traces:

* **fixed vs random** — one group repeatedly applies the same "fixed" input
  (e.g. a chosen plaintext/key), the other applies uniformly random inputs;
* **fixed vs fixed** — both groups apply fixed inputs chosen to exercise a
  known intermediate-value difference.

This module generates those campaigns as numpy boolean matrices of shape
``(n_traces, n_inputs)`` together with the per-trace *previous* state used by
the Hamming-distance power model (each trace models the transition from a
precharge/previous vector to the target vector).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..netlist.netlist import Netlist


@dataclass(frozen=True)
class TraceCampaign:
    """A set of stimulus pairs for one TVLA group.

    Attributes:
        label: Group label (``"fixed"`` or ``"random"``).
        previous: Boolean matrix ``(n_traces, n_inputs)`` applied first.
        current: Boolean matrix ``(n_traces, n_inputs)`` applied second; the
            power of a trace is derived from the transition previous→current.
        input_names: Primary-input order corresponding to the columns.
    """

    label: str
    previous: np.ndarray
    current: np.ndarray
    input_names: Tuple[str, ...]

    @property
    def n_traces(self) -> int:
        """Number of traces in the campaign."""
        return int(self.previous.shape[0])

    def as_dicts(self) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray]]:
        """Return (previous, current) as input-name keyed dictionaries."""
        prev = {name: self.previous[:, i] for i, name in enumerate(self.input_names)}
        cur = {name: self.current[:, i] for i, name in enumerate(self.input_names)}
        return prev, cur

    def slice(self, start: int, stop: int) -> "TraceCampaign":
        """Return the sub-campaign covering traces ``[start, stop)``.

        The stimulus matrices are views (no copy); used by the streaming
        TVLA driver to process a campaign in bounded-memory chunks.
        """
        if not 0 <= start <= stop <= self.n_traces:
            raise ValueError(
                f"invalid trace slice [{start}, {stop}) for a campaign of "
                f"{self.n_traces} traces")
        return TraceCampaign(self.label, self.previous[start:stop],
                             self.current[start:stop], self.input_names)


#: Fallback seed of :func:`random_vectors` when no generator is injected.
#: Stimulus generation must never be silently nondeterministic: an unseeded
#: ``default_rng()`` here once made "random"-group traces unreproducible
#: whenever a caller forgot to pass ``rng`` (polaris-lint PL001's first
#: real catch).
_DEFAULT_STIMULUS_SEED = 0x51A7


def random_vectors(n_vectors: int, n_bits: int,
                   rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Uniformly random boolean matrix of shape ``(n_vectors, n_bits)``.

    Args:
        n_vectors: Number of rows (stimulus vectors).
        n_bits: Number of columns (input bits).
        rng: Generator for the draws.  The TVLA campaign builders always
            inject their seeded generator; without one the draws come from
            a **fixed** seed (:data:`_DEFAULT_STIMULUS_SEED`) rather than
            OS entropy, so repeated bare calls return the same matrix —
            deterministic by default, never silently irreproducible.
    """
    if n_vectors < 1 or n_bits < 1:
        raise ValueError("n_vectors and n_bits must be >= 1")
    rng = rng if rng is not None else np.random.default_rng(
        _DEFAULT_STIMULUS_SEED)
    return rng.integers(0, 2, size=(n_vectors, n_bits), dtype=np.uint8).astype(bool)


def fixed_vector(n_bits: int, seed: int = 0) -> np.ndarray:
    """A deterministic 'fixed' stimulus of ``n_bits`` bits (seeded)."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=n_bits, dtype=np.uint8).astype(bool)


def input_matrix_to_dict(matrix: np.ndarray,
                         input_names: Sequence[str]) -> Dict[str, np.ndarray]:
    """Convert a ``(n, len(input_names))`` matrix to a name-keyed dict."""
    matrix = np.asarray(matrix, dtype=bool)
    if matrix.ndim != 2 or matrix.shape[1] != len(input_names):
        raise ValueError("matrix shape does not match input_names")
    return {name: matrix[:, i] for i, name in enumerate(input_names)}


def fixed_vs_random_campaigns(
    netlist: Netlist,
    n_traces: int,
    seed: int = 0,
    fixed_seed: int = 1,
    fixed_precharge: bool = True,
) -> Tuple[TraceCampaign, TraceCampaign]:
    """Build the fixed and random TVLA groups for ``netlist``.

    The fixed group repeatedly applies the same target vector; the random
    group applies fresh uniform vectors.  With ``fixed_precharge=True`` (the
    default, matching the classic fixed-vs-random methodology where the whole
    operation sequence of the fixed group is identical) the fixed group also
    re-uses a constant *previous* vector, so its power is data-deterministic
    up to noise.  With ``fixed_precharge=False`` the previous vectors of both
    groups are random, which only exposes second-order toggle-probability
    differences (a strictly harder detection setting).

    Returns:
        ``(fixed_campaign, random_campaign)`` each with ``n_traces`` traces.
    """
    if n_traces < 2:
        raise ValueError("n_traces must be >= 2")
    inputs = netlist.primary_inputs
    if not inputs:
        raise ValueError(f"netlist {netlist.name!r} has no primary inputs")
    rng = np.random.default_rng(seed)
    n_bits = len(inputs)

    fixed_value = fixed_vector(n_bits, seed=fixed_seed)
    fixed_current = np.tile(fixed_value, (n_traces, 1))
    if fixed_precharge:
        precharge_value = fixed_vector(n_bits, seed=fixed_seed + 7919)
        fixed_previous = np.tile(precharge_value, (n_traces, 1))
    else:
        fixed_previous = random_vectors(n_traces, n_bits, rng)
    random_current = random_vectors(n_traces, n_bits, rng)
    random_previous = random_vectors(n_traces, n_bits, rng)

    fixed = TraceCampaign("fixed", fixed_previous, fixed_current, inputs)
    random_group = TraceCampaign("random", random_previous, random_current, inputs)
    return fixed, random_group


def fixed_vs_fixed_campaigns(
    netlist: Netlist,
    n_traces: int,
    seed: int = 0,
    fixed_seed_a: int = 1,
    fixed_seed_b: int = 2,
) -> Tuple[TraceCampaign, TraceCampaign]:
    """Build two fixed-input TVLA groups differing in their target vector."""
    if n_traces < 2:
        raise ValueError("n_traces must be >= 2")
    inputs = netlist.primary_inputs
    if not inputs:
        raise ValueError(f"netlist {netlist.name!r} has no primary inputs")
    rng = np.random.default_rng(seed)
    n_bits = len(inputs)

    value_a = fixed_vector(n_bits, seed=fixed_seed_a)
    value_b = fixed_vector(n_bits, seed=fixed_seed_b)
    if bool(np.all(value_a == value_b)):
        value_b = np.logical_not(value_b)
    previous_a = random_vectors(n_traces, n_bits, rng)
    previous_b = random_vectors(n_traces, n_bits, rng)
    group_a = TraceCampaign("fixed_a", previous_a, np.tile(value_a, (n_traces, 1)),
                            inputs)
    group_b = TraceCampaign("fixed_b", previous_b, np.tile(value_b, (n_traces, 1)),
                            inputs)
    return group_a, group_b
