"""Switching-activity analysis.

Dynamic power in CMOS is dominated by output toggles, so the power model
(:mod:`repro.power.model`) needs, for every gate and every trace, whether the
gate's output changed between the previous and the current stimulus.  This
module computes those per-gate toggle matrices and aggregate switching
statistics from two :class:`~repro.simulation.simulator.SimulationResult`
batches.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import numpy as np

from ..netlist.netlist import Netlist
from .simulator import SimulationResult


def toggle_matrix(netlist: Netlist, previous: SimulationResult,
                  current: SimulationResult) -> Dict[str, np.ndarray]:
    """Per-gate boolean toggle matrix between two evaluation batches.

    Returns:
        Mapping gate name -> boolean array ``(n_traces,)`` that is ``True``
        where the gate's output differs between the two batches.

    Raises:
        ValueError: if the two results have different batch sizes.
    """
    if previous.n_vectors != current.n_vectors:
        raise ValueError("previous and current batches have different sizes")
    toggles: Dict[str, np.ndarray] = {}
    for gate in netlist.gates:
        before = previous.net_values[gate.output]
        after = current.net_values[gate.output]
        toggles[gate.name] = np.logical_xor(before, after)
    return toggles


def toggle_counts(netlist: Netlist, previous: SimulationResult,
                  current: SimulationResult) -> Dict[str, int]:
    """Total number of toggles per gate across the batch.

    When both results carry a packed state matrix from the same compiled
    plan, the counts come straight from ``popcount(prev_row ^ cur_row)``
    on the packed bytes (:func:`repro.power.bitops.popcount_rows`) — no
    boolean unpack, 8x less memory touched, bit-identical totals.
    """
    plan = previous.plan
    if (plan is not None and plan is current.plan
            and previous.packed_matrix is not None
            and current.packed_matrix is not None):
        if previous.n_vectors != current.n_vectors:
            raise ValueError(
                "previous and current batches have different sizes")
        from ..power.bitops import popcount_rows
        gates = list(netlist.gates)
        rows = plan.rows_for([gate.output for gate in gates])
        counts = popcount_rows(
            previous.packed_matrix[rows] ^ current.packed_matrix[rows],
            previous.n_vectors)
        return {gate.name: int(count) for gate, count in zip(gates, counts)}
    return {name: int(matrix.sum())
            for name, matrix in toggle_matrix(netlist, previous, current).items()}


def switching_activity(netlist: Netlist, previous: SimulationResult,
                       current: SimulationResult) -> Dict[str, float]:
    """Per-gate toggle probability (toggles / traces) between two batches."""
    n = max(1, previous.n_vectors)
    return {name: count / n
            for name, count in toggle_counts(netlist, previous, current).items()}


def design_switching_summary(activity: Mapping[str, float]) -> Dict[str, float]:
    """Aggregate statistics of a per-gate switching-activity mapping."""
    if not activity:
        return {"mean": 0.0, "max": 0.0, "min": 0.0, "total": 0.0}
    values = np.array(list(activity.values()), dtype=float)
    return {
        "mean": float(values.mean()),
        "max": float(values.max()),
        "min": float(values.min()),
        "total": float(values.sum()),
    }
