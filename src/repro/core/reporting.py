"""Result formatting and experiment recording.

The benchmark harness reproduces the paper's tables as lists of row
dictionaries; this module renders them as aligned text / Markdown tables and
persists them as JSON so EXPERIMENTS.md can reference concrete runs.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

Number = Union[int, float]


def _format_cell(value: object, precision: int = 2) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 precision: int = 2) -> str:
    """Render an aligned plain-text table."""
    rendered = [[_format_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str],
                          rows: Sequence[Sequence[object]],
                          precision: int = 2) -> str:
    """Render a GitHub-Markdown table."""
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(_format_cell(c, precision) for c in row) + " |")
    return "\n".join(lines)


def rows_from_dicts(records: Sequence[Mapping[str, object]],
                    columns: Sequence[str]) -> List[List[object]]:
    """Project a list of dictionaries onto an ordered column list."""
    return [[record.get(column, "") for column in columns] for record in records]


@dataclass
class ExperimentRecord:
    """One recorded experiment (a reproduced table or figure).

    Attributes:
        experiment_id: Paper artefact identifier (e.g. ``"table2"``).
        description: One-line description of what was reproduced.
        parameters: The knob values used for the run.
        rows: The result rows (list of flat dictionaries).
        created_at: Unix timestamp of the run.
    """

    experiment_id: str
    description: str
    parameters: Dict[str, object] = field(default_factory=dict)
    rows: List[Dict[str, object]] = field(default_factory=list)
    created_at: float = field(default_factory=time.time)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation."""
        return {
            "experiment_id": self.experiment_id,
            "description": self.description,
            "parameters": self.parameters,
            "rows": self.rows,
            "created_at": self.created_at,
        }


class ExperimentRecorder:
    """Collects :class:`ExperimentRecord` objects and writes them to disk."""

    def __init__(self, output_dir: Union[str, Path] = "results") -> None:
        self.output_dir = Path(output_dir)
        self.records: List[ExperimentRecord] = []

    def record(self, record: ExperimentRecord) -> ExperimentRecord:
        """Add a record to the in-memory collection."""
        self.records.append(record)
        return record

    def save(self, filename: Optional[str] = None) -> Path:
        """Write all records to a JSON file and return its path."""
        self.output_dir.mkdir(parents=True, exist_ok=True)
        name = filename or f"experiments_{int(time.time())}.json"
        path = self.output_dir / name
        payload = [record.to_dict() for record in self.records]
        path.write_text(json.dumps(payload, indent=2, default=str))
        return path

    @staticmethod
    def load(path: Union[str, Path]) -> List[ExperimentRecord]:
        """Load records previously written by :meth:`save`."""
        raw = json.loads(Path(path).read_text())
        return [
            ExperimentRecord(
                experiment_id=item["experiment_id"],
                description=item["description"],
                parameters=item.get("parameters", {}),
                rows=item.get("rows", []),
                created_at=item.get("created_at", 0.0),
            )
            for item in raw
        ]
