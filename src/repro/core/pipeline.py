"""End-to-end POLARIS pipeline.

Ties the three stages of Fig. 2 together:

1. *Knowledge extraction* — cognition generation over the training designs
   and model training (:func:`train_polaris`).
2. *Model interpretability* — SHAP explanations of the trained model and
   rule extraction (:meth:`TrainedPolaris.explain` /
   :meth:`TrainedPolaris.extract_rules`).
3. *Masking* — protecting an unseen design with the trained model
   (:func:`protect_design`), reporting leakage reduction, runtime and
   area/power/delay overheads.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..features.dataset import Dataset
from ..features.encoding import GateTypeEncoder
from ..ml.base import BaseClassifier
from ..netlist.netlist import Netlist
from ..power.overhead import DesignMetrics, analyze_design, overhead_report
from ..tvla.assessment import (
    LeakageAssessment,
    assess_leakage,
    campaign_schedule,
    compare_assessments,
)
from ..tvla.sharding import assess_leakage_sharded
from ..xai.explain import Explanation
from ..xai.rules import RuleExtractor, RuleSet
from ..xai.tree_shap import TreeShapExplainer
from .cognition import CognitionReport, generate_cognition, train_masking_model
from .config import PolarisConfig
from .masking import PolarisMaskingOutcome, polaris_mask


@dataclass
class TrainedPolaris:
    """A trained POLARIS instance ready to protect designs.

    Attributes:
        model: The fitted masking model ``M``.
        dataset: The cognition dataset the model was trained on.
        cognition_report: Bookkeeping from Algorithm 1.
        config: The configuration used end to end.
        encoder: Gate-type encoder shared between training and inference.
        rules: XAI-extracted rule set (empty until
            :meth:`extract_rules` is called, or populated by
            :func:`train_polaris` when ``config.use_rules`` is set).
        training_seconds: Wall-clock time of cognition + model fitting.
    """

    model: BaseClassifier
    dataset: Dataset
    cognition_report: CognitionReport
    config: PolarisConfig
    encoder: GateTypeEncoder
    rules: RuleSet = field(default_factory=RuleSet)
    training_seconds: float = 0.0

    # ------------------------------------------------------------------
    def explain(self, samples: Optional[np.ndarray] = None,
                max_samples: int = 25) -> List[Explanation]:
        """SHAP-explain model predictions (defaults to training samples).

        Uses :meth:`TreeShapExplainer.explain_matrix`, which evaluates
        coalition expectations once per tree for the whole sample matrix
        (bit-identical to explaining each row individually).
        """
        explainer = TreeShapExplainer(
            self.model, feature_names=self.dataset.feature_names)
        if samples is None:
            count = min(max_samples, self.dataset.n_samples)
            samples = self.dataset.features[:count]
        return explainer.explain_matrix(samples)

    def extract_rules(self, max_samples: int = 40,
                      extractor: Optional[RuleExtractor] = None) -> RuleSet:
        """Generate the human-readable rule set (paper Table V) via SHAP."""
        explanations = self.explain(max_samples=max_samples)
        extractor = extractor if extractor is not None else RuleExtractor()
        self.rules = extractor.extract(explanations)
        return self.rules

    def feature_importance(self) -> List[Tuple[str, float]]:
        """Model feature importances paired with feature names."""
        importances = getattr(self.model, "feature_importances_", None)
        if importances is None:
            return []
        order = np.argsort(-importances)
        return [(self.dataset.feature_names[i], float(importances[i]))
                for i in order]


@dataclass
class ProtectionReport:
    """Outcome of protecting one design with POLARIS.

    Attributes:
        design_name: Name of the protected design.
        outcome: The Algorithm-2 masking outcome.
        before: TVLA assessment of the original design.
        after: TVLA assessment of the protected design (None if evaluation
            was skipped).
        leakage: Summary dict from
            :func:`repro.tvla.assessment.compare_assessments`; when the
            TVLA configuration evaluates higher orders it additionally
            carries ``order{k}_before_leaky`` / ``order{k}_after_leaky`` /
            ``order{k}_mean_abs_t_reduction_pct`` entries.
        original_metrics: Area/power/delay of the original design.
        masked_metrics: Area/power/delay of the protected design.
        overheads: Flat overhead report (Table IV layout).
        polaris_seconds: POLARIS decision runtime (features + inference +
            ranking + rewrite), the Table II "Time (s)" quantity.
    """

    design_name: str
    outcome: PolarisMaskingOutcome
    before: LeakageAssessment
    after: Optional[LeakageAssessment]
    leakage: Dict[str, float]
    original_metrics: DesignMetrics
    masked_metrics: DesignMetrics
    overheads: Dict[str, float]
    polaris_seconds: float

    @property
    def leakage_reduction_pct(self) -> float:
        """Total leakage reduction percentage (Table II metric)."""
        return float(self.leakage.get("leakage_reduction_pct", 0.0))

    def order_results(self) -> Dict[int, Dict[str, float]]:
        """Per-TVLA-order before/after summary (orders 2+ when evaluated)."""
        orders: Dict[int, Dict[str, float]] = {}
        if self.after is None:
            return orders
        for order in sorted(set(self.before.order_t_values)
                            & set(self.after.order_t_values)):
            orders[order] = {
                "before_leaky": self.leakage.get(f"order{order}_before_leaky", 0),
                "after_leaky": self.leakage.get(f"order{order}_after_leaky", 0),
                "mean_abs_t_reduction_pct": self.leakage.get(
                    f"order{order}_mean_abs_t_reduction_pct", 0.0),
            }
        return orders


def train_polaris(designs: Sequence[Netlist],
                  config: Optional[PolarisConfig] = None) -> TrainedPolaris:
    """Run cognition generation and model training over ``designs``."""
    config = config if config is not None else PolarisConfig()
    encoder = GateTypeEncoder()
    start = time.perf_counter()
    dataset, report = generate_cognition(designs, config, encoder)
    model = train_masking_model(dataset, config)
    trained = TrainedPolaris(
        model=model,
        dataset=dataset,
        cognition_report=report,
        config=config,
        encoder=encoder,
        training_seconds=time.perf_counter() - start,
    )
    if config.use_rules:
        trained.extract_rules()
    return trained


def protect_design(
    netlist: Netlist,
    trained: TrainedPolaris,
    mask_fraction: float = 1.0,
    budget_from_leaky: bool = True,
    evaluate: bool = True,
    before: Optional[LeakageAssessment] = None,
    n_shards: int = 1,
    executor: str = "thread",
    store: Optional[object] = None,
) -> ProtectionReport:
    """Protect ``netlist`` with a trained POLARIS instance.

    Args:
        netlist: The (unseen) design to protect.
        trained: Output of :func:`train_polaris`.
        mask_fraction: The paper's "X % Mask": fraction of the mask budget
            to spend.
        budget_from_leaky: When True (paper semantics) the 100 % budget is
            the number of *leaky* gates found by a TVLA assessment of the
            original design; when False it is the number of maskable gates.
        evaluate: Run a TVLA assessment of the protected design (reporting).
        before: Optionally reuse an existing baseline assessment instead of
            re-running TVLA on the original design.
        n_shards: Split each TVLA campaign into this many parallel shards
            (see :mod:`repro.tvla.sharding`); 1 keeps the serial driver.
        executor: Shard executor selector when ``n_shards > 1``.
        store: Optional :class:`repro.campaign.store.ResultStore` (or its
            root path).  The before and after assessments are looked up by
            their :class:`~repro.campaign.spec.CampaignSpec` content hash
            — repeated protection runs of an unchanged (netlist, config,
            seed) skip TVLA entirely and are served bit-identically from
            the cache; fresh assessments are stored on the way out.

    Returns:
        A :class:`ProtectionReport`.
    """
    config = trained.config
    if store is not None:
        # Function-level import: repro.campaign depends on repro.tvla,
        # which this package re-drives, so keep the edge call-time only.
        from ..campaign.store import as_result_store
        store = as_result_store(store)
    # Build the stimulus schedule lazily and at most once: masking
    # preserves the primary inputs, so the exact same campaigns drive the
    # before and the after assessment (identical stimulus, no
    # regeneration).
    schedule = None

    def shared_schedule():
        """Build the stimulus schedule on first use, then reuse it."""
        nonlocal schedule
        if schedule is None:
            schedule = campaign_schedule(netlist, config.tvla)
        return schedule

    def run_assessment(design, campaigns_fn):
        """Assess ``design`` with the configured (possibly sharded) driver,
        serving and feeding the content-addressed store when one is given.

        ``campaigns_fn`` builds (or reuses) the stimulus schedule and is
        only invoked on a cache miss: when both assessments hit the store,
        no stimulus arrays are ever materialised.
        """
        spec_hash = None
        if store is not None:
            from ..campaign.spec import CampaignSpec
            spec = CampaignSpec.from_netlist(design, config.tvla,
                                             n_shards=n_shards,
                                             force_streaming=n_shards > 1)
            spec_hash = spec.content_hash
            hit = store.get(spec_hash)
            if hit is not None:
                return hit
        campaigns = campaigns_fn()
        if n_shards > 1:
            assessment = assess_leakage_sharded(design, config.tvla,
                                                n_shards=n_shards,
                                                executor=executor,
                                                campaigns=campaigns)
        else:
            assessment = assess_leakage(design, config.tvla,
                                        campaigns=campaigns)
        if spec_hash is not None:
            store.put(spec_hash, assessment)
        return assessment

    if before is None:
        before = run_assessment(netlist, shared_schedule)

    if budget_from_leaky:
        budget = int(round(mask_fraction * before.n_leaky))
    else:
        budget = None

    outcome = polaris_mask(
        netlist,
        trained.model,
        mask_budget=budget,
        mask_fraction=None if budget is not None else mask_fraction,
        config=config,
        rules=trained.rules if config.use_rules else None,
        encoder=trained.encoder,
    )

    after: Optional[LeakageAssessment] = None
    if evaluate:
        masked_netlist = outcome.masked_netlist
        reuse = (tuple(masked_netlist.primary_inputs)
                 == tuple(netlist.primary_inputs))
        after = run_assessment(
            masked_netlist,
            shared_schedule if reuse else lambda: None)
        leakage = compare_assessments(before, after)
    else:
        leakage = {"before_mean_leakage": before.mean_leakage}

    original_metrics = analyze_design(netlist)
    masked_metrics = analyze_design(outcome.masked_netlist)
    overheads = overhead_report(original_metrics, masked_metrics)

    return ProtectionReport(
        design_name=netlist.name,
        outcome=outcome,
        before=before,
        after=after,
        leakage=leakage,
        original_metrics=original_metrics,
        masked_metrics=masked_metrics,
        overheads=overheads,
        polaris_seconds=outcome.inference_seconds,
    )
