"""Configuration of the POLARIS framework.

The paper parameterises POLARIS with the mask size ``Msize``, the locality
``L``, the iteration budget ``itr`` and the labelling threshold ``theta_r``
(§V-A: ``Msize = 200``, ``L = 7``, ``itr = 100``, ``theta_r = 0.70``), plus
the choice of ML model (Random Forest / XGBoost / AdaBoost, Table III) and
its learning rate (0.01).  :class:`PolarisConfig` gathers all of those knobs
together with the TVLA campaign settings used during cognition generation.

The dataclass defaults follow the paper; the benches override ``msize`` /
``iterations`` / trace counts downwards so the full experiment matrix runs
in CI-scale time, which is documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..power.model import PowerModelConfig
from ..tvla.assessment import TvlaConfig

#: Model identifiers accepted by :func:`repro.core.cognition.train_masking_model`.
SUPPORTED_MODELS = ("adaboost", "xgboost", "random_forest")


@dataclass(frozen=True)
class ModelConfig:
    """Hyper-parameters of the masking model.

    Attributes:
        model_type: One of :data:`SUPPORTED_MODELS`.
        learning_rate: Boosting learning rate (the paper uses 0.01 for both
            XGBoost and AdaBoost).
        n_estimators: Ensemble size.
        max_depth: Depth of the weak learners / trees.
        use_smote: Oversample the minority class with SMOTE (the paper does
            this for Random Forest).
        class_weighted: Use inverse-frequency sample weights (the paper's
            "weighted training" for the boosted models).
        random_state: Seed for all stochastic model components.
    """

    model_type: str = "adaboost"
    learning_rate: float = 0.01
    n_estimators: int = 120
    max_depth: int = 2
    use_smote: bool = False
    class_weighted: bool = True
    random_state: int = 7

    def __post_init__(self) -> None:
        if self.model_type not in SUPPORTED_MODELS:
            raise ValueError(
                f"model_type must be one of {SUPPORTED_MODELS}, "
                f"got {self.model_type!r}"
            )


@dataclass(frozen=True)
class PolarisConfig:
    """Top-level POLARIS configuration (Algorithm 1 + Algorithm 2 knobs).

    Attributes:
        msize: Number of gates randomly masked per cognition round
            (``Msize`` in Algorithm 1); also the default mask budget unit.
        locality: BFS neighbourhood size ``L`` for structural features.
        iterations: Maximum cognition rounds per training design (``itr``).
        theta_r: Leakage-reduction ratio above which a random masking of a
            gate is labelled "good" (1).
        tvla: TVLA campaign configuration used by ``leak_estimate``.
        model: Masking-model hyper-parameters.
        use_dom: Use DOM composites instead of Trichina AND gates.
        use_rules: Combine model predictions with extracted XAI rules during
            masking (Algorithm 2's ``RL`` input).
        rule_weight: Blend factor between model score and rule score when
            ``use_rules`` is enabled (0 = model only, 1 = rules only).
        seed: Global seed for sampling during cognition generation.
    """

    msize: int = 200
    locality: int = 7
    iterations: int = 100
    theta_r: float = 0.70
    tvla: TvlaConfig = field(default_factory=TvlaConfig)
    model: ModelConfig = field(default_factory=ModelConfig)
    use_dom: bool = False
    use_rules: bool = False
    rule_weight: float = 0.3
    seed: int = 11

    def __post_init__(self) -> None:
        if self.msize < 1:
            raise ValueError("msize must be >= 1")
        if self.locality < 1:
            raise ValueError("locality must be >= 1")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if not 0.0 < self.theta_r <= 1.0:
            raise ValueError("theta_r must be in (0, 1]")
        if not 0.0 <= self.rule_weight <= 1.0:
            raise ValueError("rule_weight must be in [0, 1]")

    def with_model(self, model_type: str, **overrides) -> "PolarisConfig":
        """Return a copy configured for a different model family.

        Convenience used by the Table III bench: Random Forest enables
        SMOTE, the boosted models enable weighted training, matching §V-B.
        """
        if model_type == "random_forest":
            model = ModelConfig(model_type=model_type, use_smote=True,
                                class_weighted=False,
                                n_estimators=overrides.pop("n_estimators", 60),
                                max_depth=overrides.pop("max_depth", 8),
                                random_state=self.model.random_state,
                                **overrides)
        else:
            model = ModelConfig(model_type=model_type,
                                learning_rate=self.model.learning_rate,
                                n_estimators=overrides.pop("n_estimators",
                                                           self.model.n_estimators),
                                max_depth=overrides.pop("max_depth",
                                                        3 if model_type == "xgboost"
                                                        else self.model.max_depth),
                                use_smote=False, class_weighted=True,
                                random_state=self.model.random_state,
                                **overrides)
        return replace(self, model=model)

    def with_tvla_order(self, tvla_order: int) -> "PolarisConfig":
        """Return a copy whose TVLA campaigns evaluate up to ``tvla_order``.

        Higher-order (order-2 variance / order-3 skewness) t-tests are what
        masked designs are evaluated against in practice; the knob threads
        straight into :class:`repro.tvla.TvlaConfig` so cognition
        generation, before/after protection assessments and the sharded
        drivers all report the configured orders.
        """
        return replace(self, tvla=replace(self.tvla, tvla_order=tvla_order))


def paper_configuration(chunk_traces: int = 2048,
                        streaming: Optional[bool] = None,
                        tvla_order: int = 1,
                        sim_backend: str = "compiled",
                        power_backend: str = "packed",
                        sampler: str = "counter") -> PolarisConfig:
    """The exact parameterisation reported in §V-A of the paper.

    (10,000 TVLA traces, ``Msize = 200``, ``L = 7``, ``itr = 100``,
    ``theta_r = 0.7``, AdaBoost with learning rate 0.01.)

    Args:
        chunk_traces: Trace-block size of the chunked TVLA driver.  At the
            paper's 10,000 traces per group the campaigns exceed one chunk,
            so assessments run in one-pass streaming mode by default and
            trace memory stays ``O(chunk_traces × n_gates)``.
        streaming: Force (True/False) or auto-select (None) the streaming
            accumulator path; see :class:`repro.tvla.TvlaConfig`.
        tvla_order: Highest TVLA order assessed (1, 2 or 3).  The paper
            reports first-order TVLA; orders 2/3 evaluate the masked
            results against the Schneider & Moradi higher-order tests.
        sim_backend: Logic-simulation backend (``"compiled"`` fused kernel
            or the ``"loop"`` reference sweep); both generate bit-identical
            traces, see :class:`repro.tvla.TvlaConfig`.
        power_backend: Toggle-extraction backend of the power engine
            (``"packed"`` — consume the bit-packed state matrix directly,
            default — or ``"unpacked"``, the bool-matrix oracle); both
            generate bit-identical traces, see
            :class:`repro.tvla.TvlaConfig`.
        sampler: Mask/noise sampling discipline (``"counter"`` — stateless
            Philox draws keyed by ``(seed, class, group, chunk, lane)``
            coordinates, bitwise layout-invariant across shard counts —
            or ``"sequence"``, the legacy per-chunk ``SeedSequence``
            streams).  The two disciplines draw *different* traces, so
            they hash to different campaigns; see
            :mod:`repro.power.ctrsample`.
    """
    return PolarisConfig(
        msize=200,
        locality=7,
        iterations=100,
        theta_r=0.70,
        tvla=TvlaConfig(n_traces=10_000, power=PowerModelConfig(),
                        chunk_traces=chunk_traces, streaming=streaming,
                        tvla_order=tvla_order, sim_backend=sim_backend,
                        power_backend=power_backend, sampler=sampler),
        model=ModelConfig(model_type="adaboost", learning_rate=0.01),
    )
