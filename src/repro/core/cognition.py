"""Cognition generation and model training (paper Algorithm 1).

"Cognition generation" is the paper's name for POLARIS's unsupervised
training-data construction: random subsets of gates are masked, the design's
per-gate leakage is re-estimated with TVLA, and every masked gate receives a
binary label — "good masking candidate" if its leakage dropped by at least
``theta_r``, "bad" otherwise.  The gate's *structural features* become the
sample; no human labelling or external dataset is involved, which is the
paper's answer to the training-data problem of DL-LA / Netlist Whisperer.

This module implements that loop plus :func:`train_masking_model`, which
turns the collected dataset into one of the three model families compared in
Table III (Random Forest + SMOTE, XGBoost-style gradient boosting, AdaBoost),
with weighted training for the boosted models as described in §V-B.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..features.dataset import Dataset
from ..features.encoding import GateTypeEncoder
from ..features.structural import StructuralFeatureExtractor
from ..masking.transform import apply_masking, maskable_gates
from ..ml.adaboost import AdaBoostClassifier
from ..ml.base import BaseClassifier
from ..ml.forest import RandomForestClassifier
from ..ml.gradient_boosting import GradientBoostingClassifier
from ..ml.smote import Smote
from ..netlist.netlist import Netlist
from ..tvla.assessment import LeakageAssessment, assess_leakage
from .config import ModelConfig, PolarisConfig


@dataclass
class CognitionReport:
    """Bookkeeping of one cognition-generation run.

    Attributes:
        designs: Names of the training designs used.
        samples_per_design: Number of labelled samples contributed by each.
        positive_fraction: Fraction of "good masking" labels in the dataset.
        rounds: Total random-masking rounds executed.
        tvla_runs: Number of TVLA campaigns executed (1 baseline per design
            plus 1 per round).
        elapsed_seconds: Wall-clock time of the whole run.
    """

    designs: Tuple[str, ...]
    samples_per_design: Dict[str, int]
    positive_fraction: float
    rounds: int
    tvla_runs: int
    elapsed_seconds: float


def leakage_reduction_ratio(before: float, after: float) -> float:
    """The ``rRatio`` of Algorithm 1: relative per-gate leakage reduction.

    Defined as ``(before - after) / before`` and clamped to ``[-inf, 1]``;
    gates whose baseline leakage is (numerically) zero return 0 because
    masking them cannot demonstrate a reduction.
    """
    if before <= 1e-12:
        return 0.0
    return (before - after) / before


def generate_cognition(
    designs: Sequence[Netlist],
    config: Optional[PolarisConfig] = None,
    encoder: Optional[GateTypeEncoder] = None,
) -> Tuple[Dataset, CognitionReport]:
    """Run Algorithm 1 over ``designs`` and return the labelled dataset.

    Args:
        designs: Training netlists (the paper uses six ISCAS-85 designs).
        config: POLARIS configuration (``msize``, ``iterations``,
            ``theta_r``, locality, TVLA settings).
        encoder: Shared gate-type encoder so feature columns align with the
            later masking phase.

    Returns:
        ``(dataset, report)``.

    Raises:
        ValueError: if no designs are provided.
    """
    if not designs:
        raise ValueError("at least one training design is required")
    config = config if config is not None else PolarisConfig()
    encoder = encoder if encoder is not None else GateTypeEncoder()
    rng = np.random.default_rng(config.seed)

    start = time.perf_counter()
    rows: List[Tuple[np.ndarray, int]] = []
    feature_names: Optional[Tuple[str, ...]] = None
    samples_per_design: Dict[str, int] = {}
    rounds = 0
    tvla_runs = 0

    for design in designs:
        extractor = StructuralFeatureExtractor(design, config.locality, encoder)
        if feature_names is None:
            feature_names = extractor.feature_names
        baseline: LeakageAssessment = assess_leakage(design, config.tvla)
        tvla_runs += 1
        baseline_map = baseline.as_dict()

        remaining = list(maskable_gates(design))
        rng.shuffle(remaining)
        design_samples = 0
        run = 0
        msize = min(config.msize, max(1, len(remaining)))
        while msize <= len(remaining) and run <= config.iterations:
            selected = [remaining.pop() for _ in range(msize)]
            masked = apply_masking(design, selected, use_dom=config.use_dom)
            modified_assessment = assess_leakage(masked.netlist, config.tvla)
            tvla_runs += 1
            modified_map = modified_assessment.as_dict()
            # One batched featurisation per round instead of one extract()
            # call per gate; rows line up with ``selected``.
            feature_matrix = extractor.extract_many(selected)
            for gate_index, gate_name in enumerate(selected):
                features = feature_matrix[gate_index]
                gate_before = baseline_map.get(gate_name, 0.0)
                ratio = leakage_reduction_ratio(
                    gate_before, modified_map.get(gate_name, 0.0))
                # A masking is "good" when it removed at least theta_r of the
                # gate's leakage *and* the gate was actually failing TVLA to
                # begin with; masking an already-quiet gate only adds
                # overhead, so it never earns a positive label (this resolves
                # the paper's ambiguity between the absolute "difference" of
                # Algorithm 1 and the relative "reduction of 70%" of §V-A).
                was_leaky = gate_before >= 1.0
                label = 1 if (was_leaky and ratio >= config.theta_r) else 0
                rows.append((features, label))
                design_samples += 1
            run += 1
            rounds += 1
        samples_per_design[design.name] = design_samples

    dataset = Dataset.from_rows(rows, feature_names or (),
                                metadata={"theta_r": config.theta_r,
                                          "locality": config.locality})
    report = CognitionReport(
        designs=tuple(d.name for d in designs),
        samples_per_design=samples_per_design,
        positive_fraction=dataset.positive_fraction(),
        rounds=rounds,
        tvla_runs=tvla_runs,
        elapsed_seconds=time.perf_counter() - start,
    )
    return dataset, report


# ----------------------------------------------------------------------
# Model training
# ----------------------------------------------------------------------
def _class_weights(labels: np.ndarray) -> np.ndarray:
    """Inverse-frequency sample weights (the paper's 'weighted training')."""
    weights = np.ones(labels.shape[0], dtype=float)
    classes, counts = np.unique(labels, return_counts=True)
    frequency = {cls: count for cls, count in zip(classes, counts)}
    total = labels.shape[0]
    for cls in classes:
        weights[labels == cls] = total / (len(classes) * frequency[cls])
    return weights


def build_model(model_config: ModelConfig) -> BaseClassifier:
    """Instantiate an unfitted model for ``model_config``."""
    if model_config.model_type == "adaboost":
        return AdaBoostClassifier(
            n_estimators=model_config.n_estimators,
            learning_rate=model_config.learning_rate,
            max_depth=model_config.max_depth,
            random_state=model_config.random_state,
        )
    if model_config.model_type == "xgboost":
        return GradientBoostingClassifier(
            n_estimators=model_config.n_estimators,
            learning_rate=model_config.learning_rate,
            max_depth=model_config.max_depth,
            random_state=model_config.random_state,
        )
    return RandomForestClassifier(
        n_estimators=model_config.n_estimators,
        max_depth=model_config.max_depth,
        random_state=model_config.random_state,
    )


def train_masking_model(dataset: Dataset,
                        config: Optional[PolarisConfig] = None) -> BaseClassifier:
    """Train the masking model ``M`` on a cognition dataset.

    Random Forest training applies SMOTE to rebalance the classes; the
    boosted models use inverse-frequency sample weights instead, matching
    the paper's handling of the theta_r imbalance.

    Raises:
        ValueError: if the dataset is empty.
    """
    if dataset.n_samples == 0:
        raise ValueError("cannot train on an empty dataset")
    config = config if config is not None else PolarisConfig()
    model_config = config.model
    model = build_model(model_config)

    features = dataset.features
    labels = dataset.labels
    sample_weight = None
    if model_config.use_smote and len(np.unique(labels)) > 1:
        features, labels = Smote(
            random_state=model_config.random_state).fit_resample(features, labels)
    elif model_config.class_weighted and len(np.unique(labels)) > 1:
        sample_weight = _class_weights(labels)

    model.fit(features, labels, sample_weight=sample_weight)
    return model
