"""POLARIS masking (paper Algorithm 2).

Given a trained masking model ``M`` (and optionally the XAI-extracted rules
``RL``), Algorithm 2 sweeps every gate of the target design, extracts its
structural features, predicts a masking-benefit score, sorts the gates by
score and masks the top of the ranking.  Unlike the VALIANT baseline no TVLA
run is needed to make the decision, which is where POLARIS's speed advantage
comes from; a final ``leak_estimate`` is only used to *report* the achieved
protection.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..features.encoding import GateTypeEncoder
from ..features.structural import StructuralFeatureExtractor
from ..masking.transform import MaskingResult, apply_masking, maskable_gates
from ..ml.base import BaseClassifier
from ..netlist.netlist import Netlist
from ..xai.rules import RuleSet
from .config import PolarisConfig


@dataclass
class GateScore:
    """Model (and rule) score of one candidate gate."""

    gate_name: str
    model_score: float
    rule_score: Optional[float]
    combined_score: float


@dataclass
class PolarisMaskingOutcome:
    """Result of running Algorithm 2 on one design.

    Attributes:
        masked_netlist: The protected design.
        scores: Per-candidate scores sorted by decreasing combined score.
        selected_gates: Gates that were actually masked (the ``Ctop`` set).
        mask_budget: Number of gates Algorithm 2 was asked to mask.
        inference_seconds: Time spent on feature extraction + model
            inference + ranking + netlist rewriting (the POLARIS runtime
            reported in Table II; it deliberately excludes the TVLA
            campaign used only for post-hoc reporting).
    """

    masked_netlist: Netlist
    scores: List[GateScore]
    selected_gates: Tuple[str, ...]
    mask_budget: int
    inference_seconds: float

    @property
    def n_masked(self) -> int:
        """Number of gates masked."""
        return len(self.selected_gates)


def rank_gates(
    netlist: Netlist,
    model: BaseClassifier,
    config: Optional[PolarisConfig] = None,
    rules: Optional[RuleSet] = None,
    encoder: Optional[GateTypeEncoder] = None,
) -> List[GateScore]:
    """Score every maskable gate of ``netlist`` with the model (and rules).

    The whole gate-feature matrix is scored in one ``positive_score`` call,
    which descends the ensemble's flat-array trees for every row at once
    (see :class:`repro.ml.FlatTree`) rather than gate by gate.

    Returns the scores sorted by decreasing combined score (the ``C`` set of
    Algorithm 2 after ``sort_descending``).
    """
    config = config if config is not None else PolarisConfig()
    encoder = encoder if encoder is not None else GateTypeEncoder()
    extractor = StructuralFeatureExtractor(netlist, config.locality, encoder)
    candidates = list(maskable_gates(netlist))
    if not candidates:
        return []
    features = extractor.extract_many(candidates)
    model_scores = model.positive_score(features)

    use_rules = config.use_rules and rules is not None and len(rules) > 0
    scores: List[GateScore] = []
    for index, gate_name in enumerate(candidates):
        model_score = float(model_scores[index])
        rule_score: Optional[float] = None
        combined = model_score
        if use_rules:
            rule_score = rules.predict_score(features[index])
            combined = ((1.0 - config.rule_weight) * model_score
                        + config.rule_weight * rule_score)
        scores.append(GateScore(gate_name, model_score, rule_score, combined))
    scores.sort(key=lambda s: (-s.combined_score, s.gate_name))
    return scores


def polaris_mask(
    netlist: Netlist,
    model: BaseClassifier,
    mask_budget: Optional[int] = None,
    mask_fraction: Optional[float] = None,
    config: Optional[PolarisConfig] = None,
    rules: Optional[RuleSet] = None,
    encoder: Optional[GateTypeEncoder] = None,
) -> PolarisMaskingOutcome:
    """Run Algorithm 2: rank gates with the model and mask the top ranks.

    Args:
        netlist: Design to protect (not modified).
        model: Trained masking model ``M``.
        mask_budget: Absolute number of gates to mask (``Msize`` of
            Algorithm 2).  Takes precedence over ``mask_fraction``.
        mask_fraction: Fraction of the *maskable* gates to mask; used when
            no absolute budget is given.  Defaults to 1.0.
        config: POLARIS configuration (locality, rule blending, DOM cells).
        rules: Optional XAI rule set (Algorithm 2's ``RL``).
        encoder: Gate-type encoder; must match the one used for training.

    Returns:
        A :class:`PolarisMaskingOutcome`.

    Raises:
        ValueError: if ``mask_fraction`` is outside [0, 1].
    """
    config = config if config is not None else PolarisConfig()
    start = time.perf_counter()
    scores = rank_gates(netlist, model, config, rules, encoder)

    if mask_budget is None:
        fraction = 1.0 if mask_fraction is None else mask_fraction
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("mask_fraction must be within [0, 1]")
        mask_budget = int(round(fraction * len(scores)))
    mask_budget = max(0, min(mask_budget, len(scores)))

    selected = tuple(score.gate_name for score in scores[:mask_budget])
    result: MaskingResult = apply_masking(netlist, selected,
                                          use_dom=config.use_dom)
    elapsed = time.perf_counter() - start
    return PolarisMaskingOutcome(
        masked_netlist=result.netlist,
        scores=scores,
        selected_gates=result.masked_gates,
        mask_budget=mask_budget,
        inference_seconds=elapsed,
    )
