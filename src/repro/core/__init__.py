"""POLARIS core: configuration, cognition generation, masking, pipeline."""

from .config import ModelConfig, PolarisConfig, SUPPORTED_MODELS, paper_configuration
from .cognition import (
    CognitionReport,
    build_model,
    generate_cognition,
    leakage_reduction_ratio,
    train_masking_model,
)
from .masking import GateScore, PolarisMaskingOutcome, polaris_mask, rank_gates
from .pipeline import (
    ProtectionReport,
    TrainedPolaris,
    protect_design,
    train_polaris,
)
from .reporting import (
    ExperimentRecord,
    ExperimentRecorder,
    format_markdown_table,
    format_table,
    rows_from_dicts,
)

__all__ = [
    "ModelConfig",
    "PolarisConfig",
    "SUPPORTED_MODELS",
    "paper_configuration",
    "CognitionReport",
    "build_model",
    "generate_cognition",
    "leakage_reduction_ratio",
    "train_masking_model",
    "GateScore",
    "PolarisMaskingOutcome",
    "polaris_mask",
    "rank_gates",
    "ProtectionReport",
    "TrainedPolaris",
    "protect_design",
    "train_polaris",
    "ExperimentRecord",
    "ExperimentRecorder",
    "format_markdown_table",
    "format_table",
    "rows_from_dicts",
]
