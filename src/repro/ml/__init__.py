"""From-scratch ML substrate: trees, ensembles, SMOTE, metrics, selection."""

from .base import BaseClassifier, NotFittedError
from .tree import (
    LEAF,
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    FlatTree,
    TreeNode,
)
from .forest import RandomForestClassifier
from .adaboost import AdaBoostClassifier
from .gradient_boosting import GradientBoostingClassifier
from .smote import Smote
from .scaling import StandardScaler
from .metrics import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
    roc_auc_score,
)
from .model_selection import cross_val_score, stratified_k_fold, train_test_split

__all__ = [
    "BaseClassifier",
    "NotFittedError",
    "LEAF",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "FlatTree",
    "TreeNode",
    "RandomForestClassifier",
    "AdaBoostClassifier",
    "GradientBoostingClassifier",
    "Smote",
    "StandardScaler",
    "accuracy_score",
    "classification_report",
    "confusion_matrix",
    "f1_score",
    "precision_score",
    "recall_score",
    "roc_auc_score",
    "cross_val_score",
    "stratified_k_fold",
    "train_test_split",
]
