"""Random forest classifier (bagged CART trees with feature subsampling)."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .base import (
    BaseClassifier,
    NotFittedError,
    check_features,
    check_labels,
    check_sample_weight,
)
from .tree import DecisionTreeClassifier


class RandomForestClassifier(BaseClassifier):
    """Bootstrap-aggregated decision trees.

    Each tree is trained on a bootstrap resample of the training data and
    considers a random subset of features at every split (``max_features``,
    default ``sqrt(n_features)``), the standard Breiman recipe.  Predicted
    probabilities are the average of the per-tree leaf distributions.

    Args:
        n_estimators: Number of trees.
        max_depth: Depth limit per tree.
        min_samples_leaf: Minimum samples per leaf.
        max_features: Features per split; ``None`` selects ``sqrt``.
        random_state: Seed controlling bootstraps and feature subsampling.
    """

    def __init__(self, n_estimators: int = 50, max_depth: Optional[int] = None,
                 min_samples_leaf: int = 1, max_features: Optional[int] = None,
                 random_state: int = 0) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.estimators_: List[DecisionTreeClassifier] = []
        self.classes_: np.ndarray = np.array([])
        self.n_features_: int = 0

    def fit(self, features: np.ndarray, labels: np.ndarray,
            sample_weight: Optional[np.ndarray] = None) -> "RandomForestClassifier":
        features = check_features(features)
        labels = check_labels(labels, features.shape[0])
        self.classes_ = np.unique(labels)
        self.n_features_ = features.shape[1]
        n_samples = features.shape[0]
        rng = np.random.default_rng(self.random_state)
        max_features = self.max_features
        if max_features is None:
            max_features = max(1, int(np.sqrt(self.n_features_)))

        # check_sample_weight rejects negative and zero-sum weights with a
        # clear error (a raw zero-sum vector used to surface as NaN
        # bootstrap probabilities inside rng.choice) and returns the
        # normalised vector, which is exactly the bootstrap distribution.
        probabilities = None
        if sample_weight is not None:
            probabilities = check_sample_weight(sample_weight, n_samples)

        self.estimators_ = []
        for index in range(self.n_estimators):
            bootstrap = rng.choice(n_samples, size=n_samples, replace=True,
                                   p=probabilities)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                random_state=self.random_state + index + 1,
            )
            tree.fit(features[bootstrap], labels[bootstrap])
            self.estimators_.append(tree)
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if not self.estimators_:
            raise NotFittedError("RandomForestClassifier is not fitted")
        features = check_features(features)
        total = np.zeros((features.shape[0], len(self.classes_)))
        for tree in self.estimators_:
            proba = tree.predict_proba(features)
            # Align tree classes (a bootstrap may miss a class entirely);
            # classes_ is sorted (np.unique), so searchsorted maps each
            # tree column to its forest column in one shot.
            aligned = np.zeros_like(total)
            aligned[:, np.searchsorted(self.classes_, tree.classes_)] = proba
            total += aligned
        return total / len(self.estimators_)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Mean impurity-based importances across the forest."""
        if not self.estimators_:
            raise NotFittedError("RandomForestClassifier is not fitted")
        return np.mean([tree.feature_importances_ for tree in self.estimators_],
                       axis=0)
