"""AdaBoost classifier (SAMME) over shallow CART trees.

AdaBoost is the model family the paper ultimately selects for POLARIS
(Table III: best average leakage reduction).  This implementation follows
the discrete SAMME algorithm with a configurable ``learning_rate`` (the
paper sets alpha = 0.01) and supports per-sample weights for the weighted
training used to counter the theta_r class imbalance.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .base import (
    BaseClassifier,
    NotFittedError,
    check_features,
    check_labels,
    check_sample_weight,
)
from .tree import DecisionTreeClassifier


class AdaBoostClassifier(BaseClassifier):
    """Discrete SAMME AdaBoost with decision-tree weak learners.

    Args:
        n_estimators: Maximum number of boosting rounds.
        learning_rate: Shrinkage applied to each estimator's weight.
        max_depth: Depth of each weak learner (1 = decision stumps).
        random_state: Seed (forwarded to the weak learners).
    """

    def __init__(self, n_estimators: int = 100, learning_rate: float = 0.01,
                 max_depth: int = 2, random_state: int = 0) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.random_state = random_state
        self.estimators_: List[DecisionTreeClassifier] = []
        self.estimator_weights_: List[float] = []
        self.classes_: np.ndarray = np.array([])

    def fit(self, features: np.ndarray, labels: np.ndarray,
            sample_weight: Optional[np.ndarray] = None) -> "AdaBoostClassifier":
        features = check_features(features)
        labels = check_labels(labels, features.shape[0])
        weights = check_sample_weight(sample_weight, features.shape[0]).copy()
        self.classes_ = np.unique(labels)
        n_classes = len(self.classes_)
        if n_classes < 2:
            # Degenerate training set: always predict the single class.
            self.estimators_ = []
            self.estimator_weights_ = []
            return self

        self.estimators_ = []
        self.estimator_weights_ = []
        for round_index in range(self.n_estimators):
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                random_state=self.random_state + round_index,
            )
            tree.fit(features, labels, sample_weight=weights)
            predictions = tree.predict(features)
            incorrect = predictions != labels
            error = float(np.sum(weights * incorrect))
            error = min(max(error, 1e-12), 1.0 - 1e-12)
            if error >= 1.0 - 1.0 / n_classes:
                # Weak learner no better than chance: stop boosting.
                if not self.estimators_:
                    self.estimators_.append(tree)
                    self.estimator_weights_.append(1.0)
                break
            alpha = self.learning_rate * (
                np.log((1.0 - error) / error) + np.log(n_classes - 1.0))
            self.estimators_.append(tree)
            self.estimator_weights_.append(float(alpha))
            weights = weights * np.exp(alpha * incorrect.astype(float))
            total = weights.sum()
            if total <= 0:
                break
            weights = weights / total
            if error <= 1e-10:
                break
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Per-class weighted vote matrix ``(n_samples, n_classes)``."""
        if self.classes_.size == 0:
            raise NotFittedError("AdaBoostClassifier is not fitted")
        features = check_features(features)
        if not self.estimators_:
            # Degenerate single-class training: unanimous vote for that class.
            return np.ones((features.shape[0], len(self.classes_)))
        votes = np.zeros((features.shape[0], len(self.classes_)))
        rows = np.arange(features.shape[0])
        for tree, alpha in zip(self.estimators_, self.estimator_weights_):
            # Each weak learner's vote depends only on which leaf a sample
            # lands in, so resolve argmax + label -> vote-column on the
            # tiny per-node table once (classes_ is sorted, np.unique) and
            # gather it by leaf index, instead of materialising the full
            # probability matrix and mapping every sample's label.
            flat = tree.tree_.flat
            node_votes = np.searchsorted(self.classes_, tree.classes_)[
                np.argmax(flat.value, axis=1)]
            votes[rows, node_votes[tree.tree_.leaf_indices(features)]] += alpha
        return votes

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        votes = self.decision_function(features)
        total = votes.sum(axis=1, keepdims=True)
        total[total == 0] = 1.0
        return votes / total

    @property
    def feature_importances_(self) -> np.ndarray:
        """Weight-averaged importances of the weak learners."""
        if not self.estimators_:
            raise NotFittedError("AdaBoostClassifier is not fitted")
        weights = np.asarray(self.estimator_weights_, dtype=float)
        weights = weights / weights.sum() if weights.sum() > 0 else weights
        stacked = np.vstack([tree.feature_importances_ for tree in self.estimators_])
        return (weights[:, None] * stacked).sum(axis=0)
