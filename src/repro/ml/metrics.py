"""Classification metrics used for model evaluation and reporting."""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


def _validate(y_true: np.ndarray, y_pred: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    if y_true.size == 0:
        raise ValueError("metrics require at least one sample")
    return y_true, y_pred


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exactly matching predictions."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """Confusion matrix with rows = true class, columns = predicted class.

    Classes are the sorted union of labels appearing in either vector.
    """
    y_true, y_pred = _validate(y_true, y_pred)
    classes = np.unique(np.concatenate([y_true, y_pred]))
    index = {cls: i for i, cls in enumerate(classes)}
    matrix = np.zeros((classes.size, classes.size), dtype=int)
    for truth, prediction in zip(y_true, y_pred):
        matrix[index[truth], index[prediction]] += 1
    return matrix


def precision_score(y_true: np.ndarray, y_pred: np.ndarray,
                    positive_label: int = 1) -> float:
    """Precision of the positive class (0 when nothing was predicted positive)."""
    y_true, y_pred = _validate(y_true, y_pred)
    predicted_positive = y_pred == positive_label
    if not np.any(predicted_positive):
        return 0.0
    true_positive = np.sum(predicted_positive & (y_true == positive_label))
    return float(true_positive / predicted_positive.sum())


def recall_score(y_true: np.ndarray, y_pred: np.ndarray,
                 positive_label: int = 1) -> float:
    """Recall of the positive class (0 when no positive samples exist)."""
    y_true, y_pred = _validate(y_true, y_pred)
    actual_positive = y_true == positive_label
    if not np.any(actual_positive):
        return 0.0
    true_positive = np.sum(actual_positive & (y_pred == positive_label))
    return float(true_positive / actual_positive.sum())


def f1_score(y_true: np.ndarray, y_pred: np.ndarray,
             positive_label: int = 1) -> float:
    """Harmonic mean of precision and recall (0 when both are 0)."""
    precision = precision_score(y_true, y_pred, positive_label)
    recall = recall_score(y_true, y_pred, positive_label)
    if precision + recall == 0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def roc_auc_score(y_true: np.ndarray, scores: np.ndarray,
                  positive_label: int = 1) -> float:
    """Area under the ROC curve via the rank (Mann–Whitney U) formulation."""
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=float)
    if y_true.shape != scores.shape:
        raise ValueError("y_true and scores must have the same shape")
    positive = y_true == positive_label
    n_positive = int(positive.sum())
    n_negative = int((~positive).sum())
    if n_positive == 0 or n_negative == 0:
        return 0.5
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty_like(order, dtype=float)
    ranks[order] = np.arange(1, scores.size + 1)
    # Average ranks for ties.
    sorted_scores = scores[order]
    start = 0
    while start < scores.size:
        end = start
        while end + 1 < scores.size and sorted_scores[end + 1] == sorted_scores[start]:
            end += 1
        if end > start:
            ranks[order[start:end + 1]] = np.mean(ranks[order[start:end + 1]])
        start = end + 1
    rank_sum = float(ranks[positive].sum())
    auc = (rank_sum - n_positive * (n_positive + 1) / 2.0) / (n_positive * n_negative)
    return float(auc)


def classification_report(y_true: np.ndarray, y_pred: np.ndarray,
                          positive_label: int = 1) -> Dict[str, float]:
    """Dictionary with accuracy/precision/recall/F1 for quick reporting."""
    return {
        "accuracy": accuracy_score(y_true, y_pred),
        "precision": precision_score(y_true, y_pred, positive_label),
        "recall": recall_score(y_true, y_pred, positive_label),
        "f1": f1_score(y_true, y_pred, positive_label),
    }
