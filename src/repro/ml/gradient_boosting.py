"""Gradient-boosted decision trees (the "XGBoost" model of Table III).

The offline environment has no xgboost, so this module implements binary
gradient boosting with logistic loss over CART regression trees, including
the features the paper's configuration relies on: a configurable learning
rate (alpha = 0.01), per-sample weights (used for the weighted training
that counters the theta_r class imbalance), subsampling, and second-order
(Newton) leaf estimates in the XGBoost style.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .base import (
    BaseClassifier,
    NotFittedError,
    check_features,
    check_labels,
    check_sample_weight,
)
from .tree import DecisionTreeRegressor


def _sigmoid(values: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(values, -60.0, 60.0)))


class GradientBoostingClassifier(BaseClassifier):
    """Binary gradient boosting with logistic loss.

    Each round fits a regression tree to the negative gradient (residuals)
    of the logistic loss and applies a Newton step per leaf, matching the
    additive-model formulation popularised by XGBoost.

    Args:
        n_estimators: Boosting rounds.
        learning_rate: Shrinkage per round.
        max_depth: Depth of each regression tree.
        subsample: Row subsampling fraction per round (1.0 = none).
        min_samples_leaf: Minimum samples per leaf in the trees.
        random_state: Seed for subsampling and tree feature selection.
    """

    def __init__(self, n_estimators: int = 150, learning_rate: float = 0.01,
                 max_depth: int = 3, subsample: float = 1.0,
                 min_samples_leaf: int = 1, random_state: int = 0) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.subsample = subsample
        self.min_samples_leaf = min_samples_leaf
        self.random_state = random_state
        self.estimators_: List[DecisionTreeRegressor] = []
        self.initial_score_: float = 0.0
        #: Explicit not-fitted flag: ``initial_score_`` legitimately stays
        #: 0.0 after a perfectly balanced fit, so it cannot double as the
        #: sentinel.
        self.fitted_: bool = False
        self.classes_: np.ndarray = np.array([])

    def fit(self, features: np.ndarray, labels: np.ndarray,
            sample_weight: Optional[np.ndarray] = None) -> "GradientBoostingClassifier":
        features = check_features(features)
        labels = check_labels(labels, features.shape[0])
        weights = check_sample_weight(sample_weight, features.shape[0])
        self.classes_ = np.unique(labels)
        if len(self.classes_) > 2:
            raise ValueError("GradientBoostingClassifier supports binary labels only")
        if len(self.classes_) == 1:
            self.initial_score_ = 20.0 if self.classes_[0] == 1 else -20.0
            self.estimators_ = []
            self.fitted_ = True
            return self
        # Map labels to {0, 1}; the positive class is the larger label value.
        positive = labels == self.classes_[-1]
        targets = positive.astype(float)

        base_rate = float(np.clip(np.average(targets, weights=weights), 1e-6, 1 - 1e-6))
        self.initial_score_ = float(np.log(base_rate / (1.0 - base_rate)))

        rng = np.random.default_rng(self.random_state)
        scores = np.full(features.shape[0], self.initial_score_)
        self.estimators_ = []
        for round_index in range(self.n_estimators):
            probabilities = _sigmoid(scores)
            gradient = targets - probabilities
            hessian = probabilities * (1.0 - probabilities)

            rows = np.arange(features.shape[0])
            if self.subsample < 1.0:
                n_rows = max(2, int(round(self.subsample * rows.size)))
                rows = rng.choice(rows.size, size=n_rows, replace=False)

            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                random_state=self.random_state + round_index,
            )
            tree.fit(features[rows], gradient[rows], sample_weight=weights[rows])
            self._newton_adjust_leaves(tree, features[rows], gradient[rows],
                                       hessian[rows], weights[rows])
            update = tree.predict(features)
            scores = scores + self.learning_rate * update
            self.estimators_.append(tree)
        self.fitted_ = True
        return self

    def _newton_adjust_leaves(self, tree: DecisionTreeRegressor,
                              features: np.ndarray, gradient: np.ndarray,
                              hessian: np.ndarray, weights: np.ndarray) -> None:
        """Replace leaf means with Newton steps ``sum(g) / sum(h)``."""
        assert tree.tree_ is not None
        leaf_for_sample = tree.tree_.leaf_indices(features)
        for leaf_index in np.unique(leaf_for_sample):
            mask = leaf_for_sample == leaf_index
            numerator = float(np.sum(weights[mask] * gradient[mask]))
            denominator = float(np.sum(weights[mask] * hessian[mask])) + 1e-12
            tree.tree_.set_node_value(int(leaf_index),
                                      np.array([numerator / denominator]))

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Raw additive score (log-odds of the positive class)."""
        if not self.fitted_:
            raise NotFittedError("GradientBoostingClassifier is not fitted")
        features = check_features(features)
        scores = np.full(features.shape[0], self.initial_score_)
        for tree in self.estimators_:
            scores = scores + self.learning_rate * tree.predict(features)
        return scores

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        scores = self.decision_function(features)
        positive = _sigmoid(scores)
        if len(self.classes_) == 1:
            return np.ones((features.shape[0] if features.ndim > 1 else 1, 1))
        return np.column_stack([1.0 - positive, positive])

    @property
    def feature_importances_(self) -> np.ndarray:
        """Mean impurity-based importances over all boosting rounds."""
        if not self.estimators_:
            raise NotFittedError("GradientBoostingClassifier is not fitted")
        return np.mean([tree.feature_importances_ for tree in self.estimators_], axis=0)
