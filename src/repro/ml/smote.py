"""SMOTE: Synthetic Minority Over-sampling Technique.

The theta_r labelling threshold of Algorithm 1 produces imbalanced training
data (few "good masking" samples); the paper applies SMOTE before training
the Random Forest model.  This is the classic Chawla et al. algorithm:
each synthetic minority sample is created by interpolating between a
minority sample and one of its k nearest minority neighbours.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class Smote:
    """SMOTE over-sampler for binary (or multi-class) datasets.

    Args:
        k_neighbors: Number of nearest minority neighbours to interpolate
            with (reduced automatically when the minority class is tiny).
        target_ratio: Desired minority/majority size ratio after resampling
            (1.0 = fully balanced).
        random_state: RNG seed.
    """

    def __init__(self, k_neighbors: int = 5, target_ratio: float = 1.0,
                 random_state: int = 0) -> None:
        if k_neighbors < 1:
            raise ValueError("k_neighbors must be >= 1")
        if not 0.0 < target_ratio <= 1.0:
            raise ValueError("target_ratio must be in (0, 1]")
        self.k_neighbors = k_neighbors
        self.target_ratio = target_ratio
        self.random_state = random_state

    def fit_resample(self, features: np.ndarray,
                     labels: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return an over-sampled ``(features, labels)`` pair.

        The majority class is left untouched; every minority class is
        over-sampled up to ``target_ratio`` times the majority count.  If a
        minority class has a single sample it is duplicated (interpolation
        is impossible).
        """
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels)
        if features.ndim != 2 or labels.shape != (features.shape[0],):
            raise ValueError("features must be 2-D and labels must match rows")
        classes, counts = np.unique(labels, return_counts=True)
        if classes.size < 2:
            return features.copy(), labels.copy()
        majority_count = int(counts.max())
        rng = np.random.default_rng(self.random_state)

        new_features = [features]
        new_labels = [labels]
        for cls, count in zip(classes, counts):
            target = int(round(self.target_ratio * majority_count))
            deficit = target - int(count)
            if deficit <= 0:
                continue
            members = features[labels == cls]
            synthetic = self._synthesize(members, deficit, rng)
            new_features.append(synthetic)
            new_labels.append(np.full(deficit, cls, dtype=labels.dtype))
        return np.vstack(new_features), np.concatenate(new_labels)

    def _synthesize(self, members: np.ndarray, count: int,
                    rng: np.random.Generator) -> np.ndarray:
        if members.shape[0] == 1:
            return np.repeat(members, count, axis=0)
        k = min(self.k_neighbors, members.shape[0] - 1)
        # Pairwise distances within the minority class.
        deltas = members[:, None, :] - members[None, :, :]
        distances = np.sqrt((deltas ** 2).sum(axis=2))
        np.fill_diagonal(distances, np.inf)
        neighbor_indices = np.argsort(distances, axis=1)[:, :k]

        synthetic = np.zeros((count, members.shape[1]))
        seeds = rng.integers(0, members.shape[0], size=count)
        for row, seed in enumerate(seeds):
            neighbor = neighbor_indices[seed][rng.integers(0, k)]
            gap = rng.random()
            synthetic[row] = members[seed] + gap * (members[neighbor] - members[seed])
        return synthetic
