"""Common estimator interface for the from-scratch ML substrate.

The offline environment provides only numpy/scipy, so the models the paper
uses (Random Forest, XGBoost-style gradient boosting, AdaBoost, plus SMOTE
and SHAP) are implemented in this package.  All estimators follow a small
scikit-learn-like protocol so the POLARIS pipeline, the SHAP explainers and
the benches can treat them interchangeably.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence, Tuple

import numpy as np


class NotFittedError(RuntimeError):
    """Raised when ``predict`` is called before ``fit``."""


def check_features(features: np.ndarray) -> np.ndarray:
    """Validate and coerce a feature matrix to 2-D float."""
    features = np.asarray(features, dtype=float)
    if features.ndim == 1:
        features = features.reshape(1, -1)
    if features.ndim != 2:
        raise ValueError("features must be a 2-D matrix")
    return features


def check_labels(labels: np.ndarray, n_samples: int) -> np.ndarray:
    """Validate integer labels against the number of samples."""
    labels = np.asarray(labels)
    if labels.shape != (n_samples,):
        raise ValueError("labels must be a vector matching the feature rows")
    return labels


def check_sample_weight(sample_weight: Optional[np.ndarray],
                        n_samples: int) -> np.ndarray:
    """Return validated sample weights (uniform when ``None``)."""
    if sample_weight is None:
        return np.full(n_samples, 1.0 / n_samples)
    sample_weight = np.asarray(sample_weight, dtype=float)
    if sample_weight.shape != (n_samples,):
        raise ValueError("sample_weight must match the number of samples")
    if np.any(sample_weight < 0):
        raise ValueError("sample_weight must be non-negative")
    total = sample_weight.sum()
    if total <= 0:
        raise ValueError("sample_weight must not sum to zero")
    return sample_weight / total


class BaseClassifier(abc.ABC):
    """Minimal binary/multi-class classifier protocol."""

    classes_: np.ndarray

    @abc.abstractmethod
    def fit(self, features: np.ndarray, labels: np.ndarray,
            sample_weight: Optional[np.ndarray] = None) -> "BaseClassifier":
        """Fit the model and return ``self``."""

    @abc.abstractmethod
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class-probability matrix of shape ``(n_samples, n_classes)``."""

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Most probable class per sample."""
        probabilities = self.predict_proba(features)
        return self.classes_[np.argmax(probabilities, axis=1)]

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Mean accuracy on the given data."""
        predictions = self.predict(features)
        labels = np.asarray(labels)
        return float(np.mean(predictions == labels))

    def positive_score(self, features: np.ndarray) -> np.ndarray:
        """Probability of the positive class (label 1, or the last class)."""
        probabilities = self.predict_proba(features)
        classes = list(self.classes_)
        column = classes.index(1) if 1 in classes else len(classes) - 1
        return probabilities[:, column]
