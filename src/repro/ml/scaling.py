"""Feature scaling utilities."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import NotFittedError


class StandardScaler:
    """Zero-mean / unit-variance feature scaler.

    Columns with zero variance are left centred but unscaled, so one-hot
    features that happen to be constant in a dataset do not blow up.
    """

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray) -> "StandardScaler":
        """Learn per-column mean and standard deviation."""
        features = np.asarray(features, dtype=float)
        if features.ndim != 2:
            raise ValueError("features must be a 2-D matrix")
        self.mean_ = features.mean(axis=0)
        scale = features.std(axis=0)
        scale[scale == 0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Scale ``features`` with the fitted statistics."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler is not fitted")
        features = np.asarray(features, dtype=float)
        return (features - self.mean_) / self.scale_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(features).transform(features)

    def inverse_transform(self, features: np.ndarray) -> np.ndarray:
        """Undo :meth:`transform`."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler is not fitted")
        features = np.asarray(features, dtype=float)
        return features * self.scale_ + self.mean_
