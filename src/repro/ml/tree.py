"""CART decision trees (classification and regression).

The trees are grown with the classic CART procedure: at every node the best
axis-aligned split is chosen by exhaustive search over features and
thresholds, scoring candidate splits with the weighted Gini impurity
(classification) or weighted variance (regression).

A fitted tree carries two synchronised representations:

* a ``List[TreeNode]`` of dataclasses — the builder's output and the
  structure the *per-sample oracles* (:meth:`_FittedTree.predict_value`,
  :meth:`_FittedTree.decision_path`) walk one row at a time, and
* a :class:`FlatTree` — parallel ``feature``/``threshold``/``left``/
  ``right``/``value``/``cover`` numpy node arrays built once at the end of
  ``fit``, which the vectorised batch paths (:meth:`_FittedTree.predict_batch`,
  :meth:`_FittedTree.leaf_indices`) descend frontier-by-frontier over the
  whole ``(n_samples, n_features)`` matrix, and which the Tree SHAP
  explainer (:mod:`repro.xai.tree_shap`) traverses.

The batch paths are bit-identical to the per-sample oracles (same float64
comparisons, same leaf values); the pairing is pinned by
``tests/test_ml_vectorised.py`` and enforced by polaris-lint PL002.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .base import (
    BaseClassifier,
    NotFittedError,
    check_features,
    check_labels,
    check_sample_weight,
)

#: Sentinel feature index marking a leaf node.
LEAF = -1


@dataclass
class TreeNode:
    """One node of a fitted tree.

    Attributes:
        feature: Split feature index, or :data:`LEAF` for leaves.
        threshold: Split threshold (samples with ``x <= threshold`` go left).
        left: Index of the left child (or -1).
        right: Index of the right child (or -1).
        value: Node prediction — class-probability vector for classifiers,
            single-element array with the mean target for regressors.
        cover: Total sample weight that reached the node.
        impurity: Node impurity (Gini or variance).
        depth: Node depth (root = 0).
    """

    feature: int
    threshold: float
    left: int
    right: int
    value: np.ndarray
    cover: float
    impurity: float
    depth: int

    @property
    def is_leaf(self) -> bool:
        """Whether the node is a leaf."""
        return self.feature == LEAF


@dataclass
class _SplitCandidate:
    feature: int
    threshold: float
    score: float
    left_mask: np.ndarray


class _TreeBuilder:
    """Shared CART growing logic for classification and regression."""

    def __init__(self, criterion: str, max_depth: Optional[int],
                 min_samples_split: int, min_samples_leaf: int,
                 max_features: Optional[int],
                 rng: Optional[np.random.Generator]) -> None:
        if criterion not in ("gini", "mse"):
            raise ValueError("criterion must be 'gini' or 'mse'")
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = max(2, min_samples_split)
        self.min_samples_leaf = max(1, min_samples_leaf)
        self.max_features = max_features
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.nodes: List[TreeNode] = []

    # -- impurity ------------------------------------------------------
    def _node_value(self, targets: np.ndarray, weights: np.ndarray,
                    n_classes: int) -> np.ndarray:
        if self.criterion == "gini":
            value = np.zeros(n_classes)
            for k in range(n_classes):
                value[k] = weights[targets == k].sum()
            total = value.sum()
            return value / total if total > 0 else np.full(n_classes, 1.0 / n_classes)
        total = weights.sum()
        mean = float(np.average(targets, weights=weights)) if total > 0 else 0.0
        return np.array([mean])

    def _impurity(self, targets: np.ndarray, weights: np.ndarray,
                  n_classes: int) -> float:
        total = weights.sum()
        if total <= 0:
            return 0.0
        if self.criterion == "gini":
            probabilities = np.array(
                [weights[targets == k].sum() for k in range(n_classes)]) / total
            return float(1.0 - np.sum(probabilities ** 2))
        mean = np.average(targets, weights=weights)
        return float(np.average((targets - mean) ** 2, weights=weights))

    # -- split search --------------------------------------------------
    def _best_split(self, features: np.ndarray, targets: np.ndarray,
                    weights: np.ndarray, n_classes: int) -> Optional[_SplitCandidate]:
        n_samples, n_features = features.shape
        feature_indices = np.arange(n_features)
        if self.max_features is not None and self.max_features < n_features:
            feature_indices = self.rng.choice(
                n_features, size=self.max_features, replace=False)

        best: Optional[_SplitCandidate] = None
        for feature in feature_indices:
            column = features[:, feature]
            order = np.argsort(column, kind="mergesort")
            sorted_values = column[order]
            sorted_weights = weights[order]
            sorted_targets = targets[order]
            # Candidate split positions: between distinct consecutive values.
            distinct = np.nonzero(np.diff(sorted_values) > 1e-12)[0]
            if distinct.size == 0:
                continue
            score, position = self._scan_splits(
                sorted_targets, sorted_weights, distinct, n_classes)
            if position is None:
                continue
            if best is None or score < best.score:
                threshold = 0.5 * (sorted_values[position]
                                   + sorted_values[position + 1])
                best = _SplitCandidate(int(feature), float(threshold), float(score),
                                       column <= threshold)
        return best

    def _scan_splits(self, targets: np.ndarray, weights: np.ndarray,
                     positions: np.ndarray,
                     n_classes: int) -> Tuple[float, Optional[int]]:
        """Vectorised scan of candidate split positions on a sorted column.

        Positions whose left/right child would fall below
        ``min_samples_leaf`` are masked out *before* the argmin, so a
        feature whose best-scoring position violates the leaf constraint
        still yields its best valid position rather than being discarded.
        """
        n_samples = targets.size
        # Split at position p sends samples [0, p] left and (p, n) right.
        leaf_ok = ((positions + 1 >= self.min_samples_leaf)
                   & (n_samples - positions - 1 >= self.min_samples_leaf))
        total_weight = weights.sum()
        if self.criterion == "gini":
            # Cumulative weighted class counts.
            one_hot = np.zeros((targets.size, n_classes))
            one_hot[np.arange(targets.size), targets] = weights
            left_counts = np.cumsum(one_hot, axis=0)[positions]
            total_counts = one_hot.sum(axis=0)
            right_counts = total_counts - left_counts
            left_weight = left_counts.sum(axis=1)
            right_weight = right_counts.sum(axis=1)
            valid = (left_weight > 0) & (right_weight > 0) & leaf_ok
            if not np.any(valid):
                return np.inf, None
            with np.errstate(divide="ignore", invalid="ignore"):
                gini_left = 1.0 - np.sum(
                    (left_counts / np.maximum(left_weight[:, None], 1e-300)) ** 2,
                    axis=1)
                gini_right = 1.0 - np.sum(
                    (right_counts / np.maximum(right_weight[:, None], 1e-300)) ** 2,
                    axis=1)
            score = (left_weight * gini_left + right_weight * gini_right) / total_weight
        else:
            cum_weight = np.cumsum(weights)[positions]
            cum_target = np.cumsum(weights * targets)[positions]
            cum_square = np.cumsum(weights * targets ** 2)[positions]
            total_target = float(np.sum(weights * targets))
            total_square = float(np.sum(weights * targets ** 2))
            left_weight = cum_weight
            right_weight = total_weight - cum_weight
            valid = (left_weight > 0) & (right_weight > 0) & leaf_ok
            if not np.any(valid):
                return np.inf, None
            with np.errstate(divide="ignore", invalid="ignore"):
                var_left = cum_square - cum_target ** 2 / np.maximum(left_weight, 1e-300)
                var_right = ((total_square - cum_square)
                             - (total_target - cum_target) ** 2
                             / np.maximum(right_weight, 1e-300))
            score = (var_left + var_right) / total_weight
        score = np.where(valid, score, np.inf)
        best_index = int(np.argmin(score))
        if not np.isfinite(score[best_index]):
            return np.inf, None
        return float(score[best_index]), int(positions[best_index])

    # -- recursion ------------------------------------------------------
    def build(self, features: np.ndarray, targets: np.ndarray,
              weights: np.ndarray, n_classes: int) -> List[TreeNode]:
        self.nodes = []
        self._grow(features, targets, weights, n_classes, depth=0)
        return self.nodes

    def _grow(self, features: np.ndarray, targets: np.ndarray,
              weights: np.ndarray, n_classes: int, depth: int) -> int:
        node_index = len(self.nodes)
        value = self._node_value(targets, weights, n_classes)
        impurity = self._impurity(targets, weights, n_classes)
        node = TreeNode(feature=LEAF, threshold=0.0, left=-1, right=-1,
                        value=value, cover=float(weights.sum()),
                        impurity=impurity, depth=depth)
        self.nodes.append(node)

        n_samples = features.shape[0]
        stop = (
            n_samples < self.min_samples_split
            or impurity <= 1e-12
            or (self.max_depth is not None and depth >= self.max_depth)
        )
        if stop:
            return node_index
        split = self._best_split(features, targets, weights, n_classes)
        if split is None or split.score >= impurity - 1e-12:
            return node_index

        left_mask = split.left_mask
        right_mask = ~left_mask
        node.feature = split.feature
        node.threshold = split.threshold
        node.left = self._grow(features[left_mask], targets[left_mask],
                               weights[left_mask], n_classes, depth + 1)
        node.right = self._grow(features[right_mask], targets[right_mask],
                                weights[right_mask], n_classes, depth + 1)
        return node_index


@dataclass
class FlatTree:
    """Structure-of-arrays form of a fitted tree (one entry per node).

    Attributes:
        feature: Split feature per node (:data:`LEAF` for leaves).
        threshold: Split threshold per node (``x <= threshold`` goes left).
        left: Left-child index per node (-1 for leaves).
        right: Right-child index per node (-1 for leaves).
        value: ``(n_nodes, n_outputs)`` node predictions.
        cover: Total sample weight that reached each node.
        step_feature: Like ``feature`` but 0 at leaves — safe to gather.
        step_threshold: Like ``threshold`` but ``+inf`` at leaves.
        step_left: Like ``left`` but leaves point back at themselves.
        step_right: Like ``right`` but leaves point back at themselves.
        max_depth: Depth of the deepest node (descent iteration count).

    The ``step_*`` views make leaves self-looping: a row already on its
    leaf compares ``x <= +inf``, goes "left" and stays put, so the batch
    descent can sweep all rows level-synchronously for ``max_depth``
    iterations with no per-level active-set bookkeeping.

    Children always have larger indices than their parent (the builder
    appends parents before recursing), so index order is a topological
    order — the vectorised Tree SHAP expectation relies on this.
    """

    feature: np.ndarray
    threshold: np.ndarray
    left: np.ndarray
    right: np.ndarray
    value: np.ndarray
    cover: np.ndarray
    step_feature: np.ndarray
    step_threshold: np.ndarray
    step_left: np.ndarray
    step_right: np.ndarray
    max_depth: int

    @classmethod
    def from_nodes(cls, nodes: List[TreeNode]) -> "FlatTree":
        """Flatten a builder node list into parallel arrays."""
        feature = np.array([node.feature for node in nodes], dtype=np.intp)
        threshold = np.array([node.threshold for node in nodes], dtype=float)
        left = np.array([node.left for node in nodes], dtype=np.intp)
        right = np.array([node.right for node in nodes], dtype=np.intp)
        leaf = feature == LEAF
        self_index = np.arange(len(nodes), dtype=np.intp)
        return cls(
            feature=feature,
            threshold=threshold,
            left=left,
            right=right,
            value=np.vstack([node.value for node in nodes]).astype(float),
            cover=np.array([node.cover for node in nodes], dtype=float),
            step_feature=np.where(leaf, 0, feature),
            step_threshold=np.where(leaf, np.inf, threshold),
            step_left=np.where(leaf, self_index, left),
            step_right=np.where(leaf, self_index, right),
            max_depth=max(node.depth for node in nodes),
        )

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return self.feature.shape[0]


class _FittedTree:
    """Prediction and introspection over a fitted tree.

    Holds both representations: the :class:`TreeNode` list walked by the
    per-sample oracles and the :class:`FlatTree` arrays descended by the
    vectorised batch paths.  :meth:`set_node_value` keeps the two in sync
    (gradient boosting rewrites leaf values with Newton steps after
    fitting).
    """

    def __init__(self, nodes: List[TreeNode], n_features: int) -> None:
        self.nodes = nodes
        self.n_features = n_features
        self.flat = FlatTree.from_nodes(nodes)

    def set_node_value(self, index: int, value: np.ndarray) -> None:
        """Replace one node's prediction in both representations."""
        value = np.asarray(value, dtype=float)
        self.nodes[index].value = value
        self.flat.value[index] = value

    def predict_value(self, features: np.ndarray) -> np.ndarray:
        """Per-sample oracle: walk the node list one row at a time.

        Bit-identical to :meth:`predict_batch`, which replaces it on the
        hot path (oracle pair ``tree-predict``, polaris-lint PL002).
        """
        features = check_features(features)
        outputs = np.zeros((features.shape[0], self.nodes[0].value.shape[0]))
        for row in range(features.shape[0]):
            node = self.nodes[0]
            while not node.is_leaf:
                if features[row, node.feature] <= node.threshold:
                    node = self.nodes[node.left]
                else:
                    node = self.nodes[node.right]
            outputs[row] = node.value
        return outputs

    def _descend(self, features: np.ndarray) -> np.ndarray:
        """Level-synchronous descent: leaf index reached by every row.

        Rows that reach a leaf early self-loop via the ``step_*`` arrays
        (see :class:`FlatTree`), so the sweep runs exactly ``max_depth``
        full-width iterations — for the shallow trees on the scoring hot
        path that beats filtering a shrinking active set every level.
        """
        flat = self.flat
        indices = np.zeros(features.shape[0], dtype=np.intp)
        rows = np.arange(features.shape[0])
        for _ in range(flat.max_depth):
            go_left = (features[rows, flat.step_feature[indices]]
                       <= flat.step_threshold[indices])
            indices = np.where(go_left, flat.step_left[indices],
                               flat.step_right[indices])
        return indices

    def predict_batch(self, features: np.ndarray) -> np.ndarray:
        """Leaf value per sample via iterative descent over the flat arrays.

        One ``(n_samples,)``-wide comparison per tree level instead of a
        Python loop per row; bit-identical to :meth:`predict_value`.
        """
        features = check_features(features)
        return self.flat.value[self._descend(features)]

    def leaf_indices(self, features: np.ndarray) -> np.ndarray:
        """Leaf node index reached by every row (batched
        ``decision_path(row)[-1]``)."""
        return self._descend(check_features(features))

    def decision_path(self, sample: np.ndarray) -> List[int]:
        """Indices of the nodes visited by ``sample`` (root to leaf).

        Per-sample oracle for :meth:`leaf_indices` (its last element is the
        leaf the batch descent returns for the same row).
        """
        sample = np.asarray(sample, dtype=float).ravel()
        path = [0]
        node = self.nodes[0]
        while not node.is_leaf:
            if sample[node.feature] <= node.threshold:
                next_index = node.left
            else:
                next_index = node.right
            path.append(next_index)
            node = self.nodes[next_index]
        return path

    def feature_importances(self) -> np.ndarray:
        """Impurity-decrease feature importances (normalised to sum to 1)."""
        importances = np.zeros(self.n_features)
        for node in self.nodes:
            if node.is_leaf:
                continue
            left = self.nodes[node.left]
            right = self.nodes[node.right]
            decrease = (node.cover * node.impurity
                        - left.cover * left.impurity
                        - right.cover * right.impurity)
            importances[node.feature] += max(0.0, decrease)
        total = importances.sum()
        return importances / total if total > 0 else importances

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the tree."""
        return len(self.nodes)

    @property
    def max_depth(self) -> int:
        """Depth of the deepest node."""
        return max(node.depth for node in self.nodes)


class DecisionTreeClassifier(BaseClassifier):
    """CART classification tree with Gini impurity.

    Args:
        max_depth: Maximum tree depth (``None`` = unlimited).
        min_samples_split: Minimum samples required to attempt a split.
        min_samples_leaf: Minimum samples required in each child.
        max_features: Features considered per split (``None`` = all); used
            by the random forest for decorrelation.
        random_state: Seed for the per-split feature subsampling.
    """

    def __init__(self, max_depth: Optional[int] = None, min_samples_split: int = 2,
                 min_samples_leaf: int = 1, max_features: Optional[int] = None,
                 random_state: int = 0) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.tree_: Optional[_FittedTree] = None
        self.classes_: np.ndarray = np.array([])
        self.n_features_: int = 0

    def fit(self, features: np.ndarray, labels: np.ndarray,
            sample_weight: Optional[np.ndarray] = None) -> "DecisionTreeClassifier":
        features = check_features(features)
        labels = check_labels(labels, features.shape[0])
        weights = check_sample_weight(sample_weight, features.shape[0])
        self.classes_, encoded = np.unique(labels, return_inverse=True)
        self.n_features_ = features.shape[1]
        builder = _TreeBuilder("gini", self.max_depth, self.min_samples_split,
                               self.min_samples_leaf, self.max_features,
                               np.random.default_rng(self.random_state))
        nodes = builder.build(features, encoded, weights, len(self.classes_))
        self.tree_ = _FittedTree(nodes, self.n_features_)
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self.tree_ is None:
            raise NotFittedError("DecisionTreeClassifier is not fitted")
        return self.tree_.predict_batch(features)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Impurity-based feature importances."""
        if self.tree_ is None:
            raise NotFittedError("DecisionTreeClassifier is not fitted")
        return self.tree_.feature_importances()


class DecisionTreeRegressor:
    """CART regression tree with variance (MSE) splitting."""

    def __init__(self, max_depth: Optional[int] = None, min_samples_split: int = 2,
                 min_samples_leaf: int = 1, max_features: Optional[int] = None,
                 random_state: int = 0) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.tree_: Optional[_FittedTree] = None
        self.n_features_: int = 0

    def fit(self, features: np.ndarray, targets: np.ndarray,
            sample_weight: Optional[np.ndarray] = None) -> "DecisionTreeRegressor":
        features = check_features(features)
        targets = np.asarray(targets, dtype=float)
        if targets.shape != (features.shape[0],):
            raise ValueError("targets must match the number of feature rows")
        weights = check_sample_weight(sample_weight, features.shape[0])
        self.n_features_ = features.shape[1]
        builder = _TreeBuilder("mse", self.max_depth, self.min_samples_split,
                               self.min_samples_leaf, self.max_features,
                               np.random.default_rng(self.random_state))
        nodes = builder.build(features, targets, weights, n_classes=1)
        self.tree_ = _FittedTree(nodes, self.n_features_)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.tree_ is None:
            raise NotFittedError("DecisionTreeRegressor is not fitted")
        return self.tree_.predict_batch(features)[:, 0]

    @property
    def feature_importances_(self) -> np.ndarray:
        """Impurity-based feature importances."""
        if self.tree_ is None:
            raise NotFittedError("DecisionTreeRegressor is not fitted")
        return self.tree_.feature_importances()
