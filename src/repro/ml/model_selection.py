"""Train/test splitting and cross-validation helpers."""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

import numpy as np

from .metrics import accuracy_score


def train_test_split(features: np.ndarray, labels: np.ndarray,
                     test_fraction: float = 0.2, seed: int = 0,
                     stratify: bool = True) -> Tuple[np.ndarray, np.ndarray,
                                                     np.ndarray, np.ndarray]:
    """Split arrays into train/test partitions.

    Args:
        features: Feature matrix.
        labels: Label vector.
        test_fraction: Fraction of samples assigned to the test split.
        seed: RNG seed.
        stratify: Preserve per-class proportions in both splits.  Every
            class keeps at least one training member: a singleton class
            goes entirely to the train split (sending it to test would
            make the class unlearnable).

    Returns:
        ``(features_train, features_test, labels_train, labels_test)``.
    """
    features = np.asarray(features)
    labels = np.asarray(labels)
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    if features.shape[0] != labels.shape[0]:
        raise ValueError("features and labels must have the same length")
    rng = np.random.default_rng(seed)
    n_samples = features.shape[0]

    if stratify:
        test_indices: List[int] = []
        for cls in np.unique(labels):
            members = np.flatnonzero(labels == cls)
            members = rng.permutation(members)
            # Cap the per-class test count so at least one member stays in
            # the train split; max(1, ...) alone sent singleton classes
            # entirely to test, so the train split lost the class.
            n_test = min(max(1, int(round(test_fraction * members.size))),
                         members.size - 1)
            test_indices.extend(members[:n_test].tolist())
        test_mask = np.zeros(n_samples, dtype=bool)
        test_mask[test_indices] = True
    else:
        order = rng.permutation(n_samples)
        n_test = max(1, int(round(test_fraction * n_samples)))
        test_mask = np.zeros(n_samples, dtype=bool)
        test_mask[order[:n_test]] = True

    return (features[~test_mask], features[test_mask],
            labels[~test_mask], labels[test_mask])


def stratified_k_fold(labels: np.ndarray, n_folds: int = 5,
                      seed: int = 0) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Return ``(train_indices, test_indices)`` pairs for stratified k-fold CV.

    Folds that receive no test samples (possible when ``n_folds`` exceeds
    the sample count) are skipped rather than returned empty, so consumers
    such as :func:`cross_val_score` never score an empty test split.

    Raises:
        ValueError: if ``n_folds < 2``, or if fewer than two usable folds
            remain (both fold sides must be non-empty to be usable).
    """
    labels = np.asarray(labels)
    if n_folds < 2:
        raise ValueError("n_folds must be >= 2")
    rng = np.random.default_rng(seed)
    fold_of = np.zeros(labels.shape[0], dtype=int)
    for cls in np.unique(labels):
        members = rng.permutation(np.flatnonzero(labels == cls))
        for position, index in enumerate(members):
            fold_of[index] = position % n_folds
    folds = []
    for fold in range(n_folds):
        test_mask = fold_of == fold
        if not test_mask.any() or test_mask.all():
            continue
        folds.append((np.flatnonzero(~test_mask), np.flatnonzero(test_mask)))
    if len(folds) < 2:
        raise ValueError(
            f"stratified {n_folds}-fold split of {labels.shape[0]} sample(s) "
            f"leaves fewer than two usable folds; reduce n_folds or provide "
            f"more samples")
    return folds


def cross_val_score(model_factory: Callable[[], object], features: np.ndarray,
                    labels: np.ndarray, n_folds: int = 5, seed: int = 0,
                    scorer: Callable[[np.ndarray, np.ndarray], float] = accuracy_score,
                    ) -> np.ndarray:
    """Cross-validated scores of a model built by ``model_factory``.

    The factory is called once per fold so folds never share fitted state.
    One score is returned per *usable* fold (see :func:`stratified_k_fold`:
    empty folds are skipped), so the result can be shorter than ``n_folds``
    on very small datasets.
    """
    features = np.asarray(features)
    labels = np.asarray(labels)
    scores = []
    for train_indices, test_indices in stratified_k_fold(labels, n_folds, seed):
        model = model_factory()
        model.fit(features[train_indices], labels[train_indices])
        predictions = model.predict(features[test_indices])
        scores.append(scorer(labels[test_indices], predictions))
    return np.asarray(scores, dtype=float)
