"""Optional distributed-executor adapters (dask / MPI) behind guarded imports.

The sharded TVLA drivers accept any :class:`concurrent.futures.Executor`,
so clusters that already run `dask.distributed` or MPI can serve shards
without the SQLite queue.  Neither library is a dependency of this
package: the factories import lazily and raise a clear
:class:`OptionalDependencyError` when the backend is absent, so importing
:mod:`repro.campaign` never requires them.

Both adapters wrap the foreign executor in :class:`CrossProcessExecutor`,
which advertises ``cross_process = True`` — the sharding drivers then ship
pickled netlists and let every worker rebuild its own trace generator,
exactly as they do for process pools.
"""

from __future__ import annotations

from concurrent.futures import Executor, Future
from typing import Callable, Optional


class OptionalDependencyError(ImportError):
    """An optional distributed backend is not installed."""


class CrossProcessExecutor(Executor):
    """Delegating wrapper that marks an executor as crossing processes.

    Foreign executors (dask's ``ClientExecutor``, ``MPIPoolExecutor``)
    cannot always take new attributes, so the marker lives on this proxy.
    ``shutdown`` is forwarded only when the proxy owns the inner executor.
    """

    cross_process = True

    def __init__(self, inner: Executor, owns_inner: bool = True) -> None:
        self._inner = inner
        self._owns_inner = owns_inner

    def submit(self, fn: Callable, /, *args, **kwargs) -> Future:
        return self._inner.submit(fn, *args, **kwargs)

    def shutdown(self, wait: bool = True, *,
                 cancel_futures: bool = False) -> None:
        if self._owns_inner:
            try:
                self._inner.shutdown(wait=wait, cancel_futures=cancel_futures)
            except TypeError:
                # Older executor implementations predate cancel_futures.
                self._inner.shutdown(wait=wait)


def dask_executor(client: Optional[object] = None,
                  **client_kwargs) -> CrossProcessExecutor:
    """An executor backed by a ``dask.distributed`` cluster.

    Args:
        client: An existing ``distributed.Client``; when None a new one is
            created from ``client_kwargs`` (e.g. ``address=...`` for a
            running scheduler, or nothing for a local cluster).

    Raises:
        OptionalDependencyError: when ``dask.distributed`` is missing.
    """
    try:
        from distributed import Client
    except ImportError as exc:
        raise OptionalDependencyError(
            "the dask adapter needs the 'distributed' package "
            "(pip install 'dask[distributed]'); the built-in QueueExecutor "
            "works without it") from exc
    owns = client is None
    if client is None:
        client = Client(**client_kwargs)
    return CrossProcessExecutor(client.get_executor(), owns_inner=owns)


def mpi_executor(max_workers: Optional[int] = None,
                 **pool_kwargs) -> CrossProcessExecutor:
    """An executor backed by ``mpi4py.futures.MPIPoolExecutor``.

    Raises:
        OptionalDependencyError: when ``mpi4py`` is missing.
    """
    try:
        from mpi4py.futures import MPIPoolExecutor
    except ImportError as exc:
        raise OptionalDependencyError(
            "the MPI adapter needs the 'mpi4py' package; the built-in "
            "QueueExecutor works without it") from exc
    return CrossProcessExecutor(
        MPIPoolExecutor(max_workers=max_workers, **pool_kwargs),
        owns_inner=True)
