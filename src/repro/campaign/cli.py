"""``polaris-campaign`` — the campaign orchestration command line.

Subcommands over a shared campaign root directory::

    polaris-campaign submit --root RUNS --benchmark des3 --traces 600 \\
        --chunk-traces 128 --shards 4
    polaris-campaign work   --root RUNS --drain          # run on N hosts
    polaris-campaign work   --root RUNS --forever --max-idle 300   # daemon
    polaris-campaign status --root RUNS [--json]
    polaris-campaign result --root RUNS <spec-hash>
    polaris-campaign gc     --root RUNS --max-age-days 30 --shards

``submit`` registers the campaign (idempotent; cache hits short-circuit),
``work`` serves the queue until stopped or drained (``--forever`` turns it
into a daemon with exponential poll backoff; ``--max-idle`` bounds how
long an idle worker lives, the CI-friendly cutoff), ``status`` shows shard
progress (``--json`` emits the stable machine-readable form), ``result``
waits for completion, merges the shard checkpoints, stores the assessment
content-addressed, and prints the verdict, and ``gc`` evicts old store
objects and redundant shard checkpoints.

The live-service verbs (see ``docs/service.md``)::

    polaris-campaign serve  --root RUNS --port 7611
    polaris-campaign work   --root RUNS --connect HOST:PORT --forever
    polaris-campaign submit --root RUNS ... --follow --connect HOST:PORT
    polaris-campaign watch  --connect HOST:PORT --tenant lab <spec-hash>

``serve`` runs the asyncio front-end, ``work --connect`` attaches a
worker that streams shard partials + heartbeats, ``submit --follow``
submits through the service and renders the live interim t-value stream,
and ``watch`` subscribes to an already-running campaign.  See
``docs/campaigns.md`` for the batch walkthrough.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..netlist.benchmarks import load_benchmark
from ..netlist.parser import parse_bench_file
from ..power.traces import POWER_BACKENDS
from ..power.ctrsample import SAMPLERS
from ..tvla.assessment import SUPPORTED_TVLA_ORDERS, TvlaConfig
from .queue import run_worker
from .runner import (
    CampaignError,
    campaign_queue,
    campaign_status,
    collect_result,
    gc_campaign_root,
    list_campaigns,
    submit_campaign,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="polaris-campaign",
        description="Distributed, resumable TVLA campaign orchestration.")
    commands = parser.add_subparsers(dest="command", required=True)

    submit = commands.add_parser(
        "submit", help="register a campaign and enqueue its missing shards")
    submit.add_argument("--root", required=True, type=Path,
                        help="shared campaign root directory")
    source = submit.add_mutually_exclusive_group(required=True)
    source.add_argument("--benchmark",
                        help="built-in benchmark design name (e.g. des3)")
    source.add_argument("--bench-file", type=Path,
                        help="path to a BENCH netlist file")
    submit.add_argument("--scale", type=float, default=1.0,
                        help="benchmark size multiplier (with --benchmark)")
    submit.add_argument("--design-seed", type=int, default=2025,
                        help="benchmark generator seed (with --benchmark)")
    submit.add_argument("--shards", type=int, default=2,
                        help="shard count (capped at the chunk count)")
    submit.add_argument("--traces", type=int, default=1000,
                        help="traces per campaign group")
    submit.add_argument("--chunk-traces", type=int, default=2048,
                        help="trace-chunk size (shard/RNG granularity)")
    submit.add_argument("--classes", type=int, default=4,
                        help="number of fixed input classes")
    submit.add_argument("--seed", type=int, default=0,
                        help="campaign stimulus/noise seed")
    submit.add_argument("--order", type=int, default=1,
                        choices=SUPPORTED_TVLA_ORDERS,
                        help="highest TVLA order to evaluate")
    submit.add_argument("--mode", default="fixed_vs_random",
                        choices=("fixed_vs_random", "fixed_vs_fixed"))
    submit.add_argument("--power-backend", default="packed",
                        choices=POWER_BACKENDS,
                        help="power-engine toggle extraction (packed = "
                             "bit-packed fast path, unpacked = oracle; "
                             "bit-identical results, different hashes)")
    submit.add_argument("--sampler", default="counter",
                        choices=SAMPLERS,
                        help="mask/noise sampling discipline (counter = "
                             "Philox coordinate draws, bitwise layout-"
                             "invariant; sequence = legacy SeedSequence "
                             "streams; different samplers draw different "
                             "traces and hash differently)")
    submit.add_argument("--tenant", default=None,
                        help="tenant id: campaign lives under "
                             "<root>/tenants/<tenant> with namespaced "
                             "queue keys (default: the plain root)")
    submit.add_argument("--follow", action="store_true",
                        help="submit through a running service and stream "
                             "live progress (requires --connect)")
    submit.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="service endpoint for --follow")

    work = commands.add_parser(
        "work", help="serve the queue: claim, execute and ack shard tasks")
    work.add_argument("--root", required=True, type=Path)
    work.add_argument("--worker", default=None,
                      help="worker id recorded on leases (default: pid)")
    work.add_argument("--max-tasks", type=int, default=None,
                      help="exit after this many tasks")
    work.add_argument("--lease-seconds", type=float, default=None,
                      help="per-claim lease override")
    work.add_argument("--poll-interval", type=float, default=0.1,
                      help="idle sleep between empty claims (initial "
                           "sleep in --forever mode)")
    work.add_argument("--drain", action="store_true",
                      help="exit once no outstanding work remains "
                           "(waits out other workers' live leases)")
    work.add_argument("--forever", action="store_true",
                      help="daemon mode: never exit on an empty queue; "
                           "idle polls back off exponentially up to "
                           "--max-poll-interval")
    work.add_argument("--max-poll-interval", type=float, default=5.0,
                      help="backoff ceiling of --forever mode (seconds)")
    work.add_argument("--max-idle", type=float, default=None,
                      help="exit after this many seconds without claiming "
                           "a task (CI cutoff for daemon workers)")
    work.add_argument("--connect", default=None, metavar="HOST:PORT",
                      help="attach to a running service: stream shard "
                           "partials and heartbeats while draining the "
                           "shared queue")
    work.add_argument("--no-renew", action="store_true",
                      help="disable half-lease heartbeat renewal "
                           "(simulates pre-renewal workers; leases must "
                           "then outlast one shard)")
    work.add_argument("--fault-plan", default=None, metavar="PLAN",
                      help="deterministic fault-injection plan for this "
                           "worker process (grammar in "
                           "docs/reliability.md; equivalent to setting "
                           "POLARIS_FAULT_PLAN)")

    serve = commands.add_parser(
        "serve", help="run the live assessment service (asyncio TCP)")
    serve.add_argument("--root", required=True, type=Path,
                       help="shared service root (queue + tenant subroots)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port (0 picks a free port; the bound "
                            "port is printed on stdout)")

    watch = commands.add_parser(
        "watch", help="stream a running campaign's live progress")
    watch.add_argument("--connect", required=True, metavar="HOST:PORT")
    watch.add_argument("--tenant", default=None,
                       help="tenant id (default: the shared default tenant)")
    watch.add_argument("spec_hash")

    gc = commands.add_parser(
        "gc", help="evict old store results and redundant shard checkpoints")
    gc.add_argument("--root", required=True, type=Path)
    age = gc.add_mutually_exclusive_group(required=True)
    age.add_argument("--max-age", type=float, default=None,
                     help="evict results older than this many seconds")
    age.add_argument("--max-age-days", type=float, default=None,
                     help="evict results older than this many days")
    age.add_argument("--all", action="store_true", dest="evict_all",
                     help="evict every result not listed in --keep")
    gc.add_argument("--keep", action="append", default=[], metavar="HASH",
                    help="content hash to retain regardless of age "
                         "(repeatable)")
    gc.add_argument("--shards", action="store_true", dest="prune_shards",
                    help="also delete shard checkpoints of campaigns "
                         "whose merged result is stored")
    gc.add_argument("--dry-run", action="store_true",
                    help="report what would be removed without deleting")

    status = commands.add_parser(
        "status", help="show campaign progress under a root")
    status.add_argument("--root", required=True, type=Path)
    status.add_argument("spec_hash", nargs="?", default=None,
                        help="restrict to one campaign")
    status.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable output: a JSON array of "
                             "{spec_hash, state, design, n_traces, "
                             "n_shards_done, n_shards_total, complete, "
                             "failed_shards} objects (stable keys, see "
                             "docs/campaigns.md)")
    status.add_argument("--tenant", default=None,
                        help="inspect one tenant's sub-root")

    result = commands.add_parser(
        "result", help="wait for, merge, store and print a campaign result")
    result.add_argument("--root", required=True, type=Path)
    result.add_argument("spec_hash")
    result.add_argument("--timeout", type=float, default=None,
                        help="give up after this many seconds")
    result.add_argument("--json", action="store_true", dest="as_json",
                        help="print the full result as JSON")
    result.add_argument("--tenant", default=None,
                        help="collect from one tenant's sub-root")
    result.add_argument("--allow-partial", action="store_true",
                        help="degrade instead of failing once every "
                             "missing shard has exhausted its retries: "
                             "merge the completed shards and report the "
                             "failed ones (the partial result is not "
                             "stored)")
    return parser


def _parse_endpoint(value: str) -> tuple:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"error: --connect expects HOST:PORT, got {value!r}")
    return host, int(port)


def _tenant_scope(root: Path, tenant: Optional[str]):
    """(campaign_root, queue, key_prefix) of one tenant under ``root``."""
    if tenant is None:
        return root, None, ""
    from ..service.protocol import tenant_key_prefix, tenant_root
    return (tenant_root(root, tenant), campaign_queue(root),
            tenant_key_prefix(tenant))


def _submit(args: argparse.Namespace) -> int:
    if args.follow and args.connect is None:
        print("error: --follow needs --connect HOST:PORT", file=sys.stderr)
        return 2
    if args.benchmark is not None:
        netlist = load_benchmark(args.benchmark, scale=args.scale,
                                 seed=args.design_seed)
    else:
        netlist = parse_bench_file(args.bench_file)
    config = TvlaConfig(n_traces=args.traces, mode=args.mode,
                        n_fixed_classes=args.classes, seed=args.seed,
                        chunk_traces=args.chunk_traces,
                        tvla_order=args.order,
                        power_backend=args.power_backend,
                        sampler=args.sampler)
    if args.follow:
        return _submit_follow(args, netlist, config)
    root, queue, prefix = _tenant_scope(args.root, args.tenant)
    outcome = submit_campaign(root, netlist=netlist, config=config,
                              n_shards=args.shards, queue=queue,
                              shard_key_prefix=prefix)
    print(f"{outcome.status} {outcome.spec_hash}")
    print(f"  design       {outcome.spec.design_name}")
    print(f"  shards       {outcome.n_shards_done}/{outcome.n_shards_total} "
          f"done, {outcome.n_enqueued} newly enqueued")
    if outcome.status == "cached":
        print("  result is already in the store; "
              "`polaris-campaign result` serves it without re-simulating")
    return 0


def _submit_follow(args: argparse.Namespace, netlist, config) -> int:
    from ..service.client import ServiceClient
    from ..service.protocol import DEFAULT_TENANT
    from .spec import CampaignSpec

    host, port = _parse_endpoint(args.connect)
    tenant = args.tenant or DEFAULT_TENANT
    spec = CampaignSpec.from_netlist(netlist, config, n_shards=args.shards,
                                     force_streaming=True)
    with ServiceClient(host, port) as client:
        accepted = client.submit(tenant, spec.to_json(), follow=True)
        print(f"{accepted.status} {accepted.spec_hash} (tenant {tenant})",
              flush=True)
        return _render_stream(client)


def _render_stream(client) -> int:
    """Print live frames until the campaign completes (or errors)."""
    from ..service.protocol import (CampaignComplete, CampaignProgress,
                                    ServiceError)
    from .serialize import assessment_from_dict

    for frame in client.events():
        if isinstance(frame, CampaignProgress):
            shards = len(frame.shards_done)
            print(f"progress {shards}/{frame.n_shards_total} shards  "
                  f"max|t|={frame.max_abs_t:.3f}  "
                  f"leaky={len(frame.leaking_gates)}", flush=True)
        elif isinstance(frame, CampaignComplete):
            assessment = assessment_from_dict(frame.assessment)
            summary = assessment.summary()
            print(f"complete {frame.spec_hash}")
            print(f"  leaky gates  {assessment.n_leaky}/{summary['gates']}")
            print(f"  max |t|      {summary['max_abs_t']:.3f}")
            return 0
        elif isinstance(frame, ServiceError):
            print(f"service error [{frame.code}]: {frame.message}",
                  file=sys.stderr, flush=True)
            if frame.code != "internal":
                return 1
    print("stream closed before completion", file=sys.stderr)
    return 1


def _work(args: argparse.Namespace) -> int:
    if args.forever and args.drain:
        print("error: --forever and --drain are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.fault_plan is not None:
        from ..reliability.faults import FaultPlan, set_fault_plan
        # Parse eagerly so a bad plan is a CLI error, not a mid-shard one.
        try:
            set_fault_plan(FaultPlan.parse(args.fault_plan))
        except ValueError as error:
            print(f"error: bad --fault-plan: {error}", file=sys.stderr)
            return 2
    worker_kwargs = dict(worker=args.worker,
                         max_tasks=args.max_tasks,
                         poll_interval=args.poll_interval,
                         lease_seconds=args.lease_seconds,
                         drain=args.drain,
                         forever=args.forever,
                         max_poll_interval=args.max_poll_interval,
                         max_idle=args.max_idle,
                         renew_leases=not args.no_renew)
    if args.connect is not None:
        from ..service.worker import run_service_worker
        host, port = _parse_endpoint(args.connect)
        executed = run_service_worker(args.root, host, port,
                                      **worker_kwargs)
    else:
        queue = campaign_queue(args.root)
        executed = run_worker(queue, **worker_kwargs)
    print(f"worker exit: {executed} task(s) executed")
    return 0


def _serve(args: argparse.Namespace) -> int:
    from ..service.server import serve as run_service

    def announce(host: str, port: int) -> None:
        print(f"serving on {host}:{port}", flush=True)

    run_service(args.root, host=args.host, port=args.port,
                ready_callback=announce)
    return 0


def _watch(args: argparse.Namespace) -> int:
    from ..service.client import ServiceClient
    from ..service.protocol import DEFAULT_TENANT

    host, port = _parse_endpoint(args.connect)
    with ServiceClient(host, port) as client:
        client.watch(args.tenant or DEFAULT_TENANT, args.spec_hash)
        return _render_stream(client)


def _gc(args: argparse.Namespace) -> int:
    if args.evict_all:
        max_age = None  # no age filter: evict everything not in --keep
    elif args.max_age_days is not None:
        max_age = args.max_age_days * 86400.0
    else:
        max_age = args.max_age
    outcome = gc_campaign_root(args.root, max_age=max_age,
                               keep_hashes=args.keep,
                               prune_shards=args.prune_shards,
                               dry_run=args.dry_run)
    verb = "would evict" if outcome.dry_run else "evicted"
    print(f"{verb} {len(outcome.pruned_results)} result(s), "
          f"kept {outcome.kept_results}")
    for key in outcome.pruned_results:
        print(f"  result {key[:12]}…")
    for key in outcome.pruned_shard_dirs:
        print(f"  shards {key[:12]}… "
              f"({'would be ' if outcome.dry_run else ''}removed: "
              f"merged result is stored)")
    return 0


def _status(args: argparse.Namespace) -> int:
    root, queue, prefix = _tenant_scope(args.root, args.tenant)
    if args.spec_hash is not None:
        statuses = [campaign_status(root, args.spec_hash, queue=queue,
                                    shard_key_prefix=prefix)]
    else:
        statuses = list_campaigns(root, queue=queue,
                                  shard_key_prefix=prefix)
    if args.as_json:
        # The stable machine-readable form (documented in
        # docs/campaigns.md): a JSON array, one object per campaign,
        # exactly these keys.  CI scripts parse this instead of scraping
        # the human text below.
        print(json.dumps([{
            "spec_hash": status.spec_hash,
            "state": status.state,
            "design": status.design_name,
            "n_traces": status.n_traces,
            "n_shards_done": status.n_shards_done,
            "n_shards_total": status.n_shards_total,
            "complete": status.complete,
            "failed_shards": list(status.failed_shards),
        } for status in statuses], indent=2))
        return 0
    if not statuses:
        print("no campaigns submitted under this root")
        return 0
    for status in statuses:
        print(f"{status.spec_hash[:12]}  {status.state:9s} "
              f"{status.n_shards_done}/{status.n_shards_total} shards  "
              f"{status.design_name} ({status.n_traces} traces)")
        for shard in status.failed_shards:
            print(f"  shard {shard}: FAILED (see queue error)")
    return 0


def _result(args: argparse.Namespace) -> int:
    root, queue, prefix = _tenant_scope(args.root, args.tenant)
    try:
        assessment = collect_result(root, args.spec_hash,
                                    timeout=args.timeout, queue=queue,
                                    shard_key_prefix=prefix,
                                    allow_partial=args.allow_partial)
    except (CampaignError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if assessment.failed_shards:
        print(f"warning: degraded result — shard(s) "
              f"{list(assessment.failed_shards)} failed and are excluded "
              f"(not stored)", file=sys.stderr)
    if args.as_json:
        from .serialize import assessment_to_dict
        print(json.dumps(assessment_to_dict(assessment), indent=2))
        return 0
    summary = assessment.summary()
    print(f"design         {assessment.design_name}")
    print(f"gates          {summary['gates']}")
    print(f"leaky gates    {assessment.n_leaky}")
    print(f"mean leakage   {assessment.mean_leakage:.4f}")
    print(f"max |t|        {summary['max_abs_t']:.3f}")
    print(f"n_traces       {assessment.n_traces}")
    print(f"n_shards       {assessment.n_shards}")
    for order in sorted(assessment.order_t_values):
        print(f"order-{order} leaky  {assessment.n_leaky_for_order(order)}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``polaris-campaign`` console script."""
    args = _build_parser().parse_args(argv)
    handlers = {"submit": _submit, "work": _work, "status": _status,
                "result": _result, "gc": _gc, "serve": _serve,
                "watch": _watch}
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
