"""Campaign specifications with stable content hashes.

A :class:`CampaignSpec` is the self-contained, serialisable description of
one TVLA campaign: the netlist (as BENCH text), the full
:class:`~repro.tvla.assessment.TvlaConfig` and the shard layout.  Its
:attr:`~CampaignSpec.content_hash` is a SHA-256 over a canonical JSON
payload, which gives the campaign subsystem its two core properties:

* **Work units are pure functions of the spec.**  A worker anywhere can
  rebuild the netlist, the stimulus schedule and every chunk's RNG stream
  from the spec alone (the per-chunk ``SeedSequence`` scheme keys
  randomness to global chunk coordinates), so shard partials computed on
  different machines merge losslessly.
* **Results are content-addressed.**  Two submissions with the same hash
  are by construction the same campaign; the second is served from
  :class:`repro.campaign.store.ResultStore` bit-identically, without
  re-simulating.

The hash covers the *effective* configuration: ``streaming`` is resolved
to a concrete boolean (sharded and queue-backed drivers always stream
their accumulators, and a serial two-pass run differs from a streamed one
at the ~1e-12 level), so a cache hit always reproduces the exact driver
arithmetic of the run that produced it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from typing import Dict, Optional, Tuple

from ..netlist.netlist import Netlist
from ..netlist.parser import parse_bench
from ..netlist.writer import write_bench
from ..power.model import PowerModelConfig
from ..tvla.assessment import TvlaConfig
from ..tvla.sharding import shard_trace_ranges

#: Bumped whenever the hashed payload layout (or the semantics of any
#: hashed field) changes, so stale stores can never serve foreign results.
#: Format 2 added ``TvlaConfig.power_backend`` to the hashed config;
#: format 3 added ``TvlaConfig.sampler`` (the counter/sequence sampling
#: discipline — campaigns with different samplers draw different traces,
#: so the sampler must separate content hashes).
SPEC_FORMAT = 3

#: Older spec formats :meth:`CampaignSpec.from_json` still loads.  A
#: format-2 file predates the ``sampler`` knob and therefore describes a
#: ``sampler="sequence"`` campaign (the only discipline that existed);
#: its stored ``content_hash`` is verified against the format-2 payload
#: it was computed over.
_COMPAT_FORMATS = (2,)


def tvla_config_to_dict(config: TvlaConfig) -> Dict[str, object]:
    """Flatten a :class:`TvlaConfig` (power config included) to plain JSON."""
    data = {field.name: getattr(config, field.name)
            for field in fields(config) if field.name != "power"}
    data["power"] = {field.name: getattr(config.power, field.name)
                     for field in fields(PowerModelConfig)}
    return data


def tvla_config_from_dict(data: Dict[str, object]) -> TvlaConfig:
    """Rebuild a :class:`TvlaConfig` serialised by :func:`tvla_config_to_dict`."""
    data = dict(data)
    power = PowerModelConfig(**data.pop("power"))
    return TvlaConfig(power=power, **data)


@dataclass(frozen=True)
class CampaignSpec:
    """One TVLA campaign as a first-class, hashable job description.

    Attributes:
        design_name: Name of the assessed design (also embedded in the
            BENCH text).
        bench_text: The netlist serialised by
            :func:`repro.netlist.writer.write_bench`; workers parse it back
            rather than unpickling live objects, so specs are portable
            across processes, machines and library versions.
        tvla: The effective campaign configuration (``streaming`` already
            resolved to a concrete boolean, see :meth:`from_netlist`).
        n_shards: Requested shard count; the actual shard layout is the
            chunk-aligned :meth:`shard_ranges` (which caps at the chunk
            count, exactly like the in-process sharded driver).
    """

    design_name: str
    bench_text: str
    tvla: TvlaConfig
    n_shards: int

    @classmethod
    def from_netlist(cls, netlist: Netlist, config: Optional[TvlaConfig],
                     n_shards: int = 1,
                     force_streaming: bool = False) -> "CampaignSpec":
        """Build the spec of assessing ``netlist`` under ``config``.

        Args:
            netlist: The design to assess.
            config: Campaign configuration (defaults to ``TvlaConfig()``).
            n_shards: Shard layout of the campaign.  Normalised to the
                *effective* count (capped at the chunk count, like the
                in-process sharded driver), so requesting 8 shards of a
                5-chunk campaign hashes identically to requesting 5.
            force_streaming: Resolve ``streaming`` to True regardless of
                the config's own auto-selection.  Every sharded driver and
                the queue-backed runner stream their accumulators (partials
                are the checkpoint unit), so they force this; the serial
                driver passes the resolved value, keeping two-pass and
                streamed runs on different hashes — a cache hit always
                reproduces the exact arithmetic of the run that stored it.

        Raises:
            ValueError: for non-positive ``n_shards``.
        """
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        config = config if config is not None else TvlaConfig()
        n_shards = len(shard_trace_ranges(config.n_traces, n_shards,
                                          config.chunk_traces))
        streamed = (True if force_streaming or n_shards > 1
                    else config.resolved_streaming())
        return cls(design_name=netlist.name,
                   bench_text=write_bench(netlist),
                   tvla=replace(config, streaming=streamed),
                   n_shards=n_shards)

    # ------------------------------------------------------------------
    def netlist(self) -> Netlist:
        """Parse the spec's BENCH text back into a :class:`Netlist`."""
        return parse_bench(self.bench_text, name=self.design_name)

    def shard_ranges(self) -> Tuple[Tuple[int, int], ...]:
        """The chunk-aligned trace ranges of the campaign's shards."""
        return shard_trace_ranges(self.tvla.n_traces, self.n_shards,
                                  self.tvla.chunk_traces)

    def canonical_payload(self, spec_format: int = SPEC_FORMAT) -> str:
        """The canonical JSON string the content hash is computed over.

        ``spec_format`` selects the payload layout of an older format
        (used to verify the stored hash of a legacy spec file); format 2
        predates — and therefore omits — the ``sampler`` field.
        """
        tvla = tvla_config_to_dict(self.tvla)
        if spec_format < 3:
            tvla.pop("sampler", None)
        return json.dumps({
            "format": spec_format,
            "design_name": self.design_name,
            "bench_text": self.bench_text,
            "tvla": tvla,
            "n_shards": self.n_shards,
        }, sort_keys=True, separators=(",", ":"))

    @property
    def content_hash(self) -> str:
        """SHA-256 hex digest of :meth:`canonical_payload`.

        Stable across processes and hosts: the payload is canonical JSON
        (sorted keys, no whitespace) and Python's float repr round-trips
        exactly, so equal specs — and only equal specs — collide.
        """
        return hashlib.sha256(
            self.canonical_payload().encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialise the spec for ``spec.json`` in a campaign directory."""
        return json.dumps({
            "format": SPEC_FORMAT,
            "design_name": self.design_name,
            "bench_text": self.bench_text,
            "tvla": tvla_config_to_dict(self.tvla),
            "n_shards": self.n_shards,
            "content_hash": self.content_hash,
        }, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        """Rebuild a spec written by :meth:`to_json`.

        Specs of the formats in :data:`_COMPAT_FORMATS` load too: a
        format-2 file (pre-``sampler``) describes a
        ``sampler="sequence"`` campaign, and its stored hash is verified
        against the format-2 payload it was computed over, so legacy
        campaign directories keep resuming bit-identically.

        Raises:
            ValueError: for unknown format versions or a stored
                ``content_hash`` that no longer matches (corrupt or
                hand-edited spec files must never be silently trusted).
        """
        data = json.loads(text)
        spec_format = data.get("format")
        if spec_format != SPEC_FORMAT and spec_format not in _COMPAT_FORMATS:
            raise ValueError(
                f"unsupported campaign spec format {spec_format!r} "
                f"(this build understands {SPEC_FORMAT} and "
                f"{_COMPAT_FORMATS})")
        tvla_data = dict(data["tvla"])
        if spec_format < 3:
            # The sampler knob did not exist: every legacy campaign drew
            # through the SeedSequence discipline.
            tvla_data["sampler"] = "sequence"
        spec = cls(design_name=data["design_name"],
                   bench_text=data["bench_text"],
                   tvla=tvla_config_from_dict(tvla_data),
                   n_shards=data["n_shards"])
        stored = data.get("content_hash")
        if stored is not None:
            expected = hashlib.sha256(
                spec.canonical_payload(spec_format).encode("utf-8")
            ).hexdigest()
            if stored != expected:
                raise ValueError(
                    f"campaign spec hash mismatch: file says "
                    f"{stored[:12]}…, recomputed {expected[:12]}…")
        return spec
