"""Campaign orchestration: submit, work, checkpoint, resume, collect.

A campaign *root* is one directory shared by every participant (submitters
and workers — across processes, or across machines via a shared
filesystem)::

    <root>/
      queue.sqlite                 task queue (lease/ack/retry)
      store/objects/<hh>/<hash>.json   content-addressed results
      campaigns/<hash>/
        spec.json                  the CampaignSpec (self-contained)
        shards/shard_0000.moments  durable shard partials (checkpoints)

The unit of work is one chunk-aligned shard: a worker rebuilds the netlist
and stimulus schedule from ``spec.json``, folds its trace range into
partial :class:`~repro.tvla.moments.OnePassMoments`, and **atomically**
publishes the packed partial as ``shards/shard_NNNN.moments`` before
acking.  That file is the checkpoint: a campaign killed at any point
resumes by enqueueing only the shards whose partial is missing (idempotent
``{hash}:shard:{k}`` queue keys make double submission a no-op), and a
worker killed mid-shard simply loses its lease — the shard is redelivered
once the lease expires.  Because every chunk's randomness is keyed to its
global coordinates, the merged result matches the serial assessment to
floating-point merge error no matter how often work was re-attempted or
where it ran.
"""

from __future__ import annotations

import pickle
import shutil
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from ..netlist.netlist import Netlist
from ..reliability import faults
from ..reliability.atomic import atomic_write_bytes
from ..reliability.checkpoint import (
    CheckpointCorruptError,
    load_checkpoint,
    quarantine_checkpoint,
    seal_checkpoint,
)
from ..tvla.assessment import (
    LeakageAssessment,
    TvlaConfig,
    aggregate_class_results,
    campaign_schedule,
    resolve_generator,
)
from ..tvla.sharding import _shard_moments_rebuilt, merge_shard_partials
from .queue import TaskQueue
from .serialize import pack_shard_moments, unpack_shard_moments
from .spec import CampaignSpec
from .store import ResultStore


class CampaignError(RuntimeError):
    """A campaign cannot make progress (e.g. a shard exhausted retries)."""


@dataclass(frozen=True)
class CampaignPaths:
    """On-disk layout of one campaign under a shared root.

    ``key_prefix`` namespaces the campaign's *queue* keys without moving
    any files — the service layer sets it to ``tenant:<tenant>:`` so two
    tenants submitting the same spec into one shared queue get disjoint
    idempotency keys, while a given tenant's resubmissions still dedupe.
    """

    root: Path
    spec_hash: str
    key_prefix: str = ""

    @property
    def campaign_dir(self) -> Path:
        return self.root / "campaigns" / self.spec_hash

    @property
    def spec_path(self) -> Path:
        return self.campaign_dir / "spec.json"

    @property
    def shards_dir(self) -> Path:
        return self.campaign_dir / "shards"

    def shard_path(self, shard_index: int) -> Path:
        return self.shards_dir / f"shard_{shard_index:04d}.moments"

    def shard_key(self, shard_index: int) -> str:
        """Idempotency key of one shard's queue task."""
        return f"{self.key_prefix}{self.spec_hash}:shard:{shard_index}"


def campaign_queue(root: Union[str, Path], **kwargs) -> TaskQueue:
    """The shared task queue of a campaign root."""
    return TaskQueue(Path(root) / "queue.sqlite", **kwargs)


def campaign_store(root: Union[str, Path]) -> ResultStore:
    """The content-addressed result store of a campaign root."""
    return ResultStore(Path(root) / "store")


def verified_checkpoint(paths: CampaignPaths, shard_index: int,
                        queue: Optional[TaskQueue] = None
                        ) -> Optional[Tuple[bytes, tuple]]:
    """One shard's verified checkpoint: ``(payload, partials)`` or ``None``.

    Reads ``shards/shard_NNNN.moments``, checks its sha256 seal
    (:mod:`repro.reliability.checkpoint`) and unpacks the payload.  A file
    that fails either check — truncated by a torn write, tampered with, or
    foreign bytes — is **quarantined** (renamed aside with a ``.corrupt``
    suffix) and, when ``queue`` is given, the queue is mutated: the shard
    task is requeued under the campaign's idempotent key.  The campaign
    then heals by recomputing
    instead of crashing the merge or silently folding bad bytes.  Missing
    and quarantined checkpoints both return ``None``.
    """
    shard_path = paths.shard_path(shard_index)
    try:
        payload = load_checkpoint(shard_path)
        partials = unpack_shard_moments(payload)
    except FileNotFoundError:
        return None
    except (CheckpointCorruptError, ValueError):
        try:
            quarantine_checkpoint(shard_path)
        except FileNotFoundError:
            return None  # another participant quarantined it first
        if queue is not None:
            task = pickle.dumps(
                (run_shard_task,
                 (str(paths.root), paths.spec_hash, shard_index), {}),
                protocol=pickle.HIGHEST_PROTOCOL)
            queue.put(task, key=paths.shard_key(shard_index),
                      requeue_done=True)
        return None
    return payload, partials


def load_spec(root: Union[str, Path], spec_hash: str) -> CampaignSpec:
    """Load (and re-verify) a submitted campaign's spec.

    Raises:
        FileNotFoundError: for unknown campaign hashes.
        ValueError: when the stored spec no longer matches its hash.
    """
    paths = CampaignPaths(Path(root), spec_hash)
    spec = CampaignSpec.from_json(paths.spec_path.read_text())
    if spec.content_hash != spec_hash:
        raise ValueError(
            f"campaign directory {spec_hash[:12]}… holds a spec hashing to "
            f"{spec.content_hash[:12]}…")
    return spec


# ----------------------------------------------------------------------
# Submission
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SubmitOutcome:
    """What :func:`submit_campaign` did.

    Attributes:
        spec: The (normalised) submitted spec.
        spec_hash: Its content hash — the campaign's identity everywhere.
        status: ``"cached"`` (result already in the store — nothing to
            run), ``"resumed"`` (some shard checkpoints already existed) or
            ``"submitted"`` (fresh campaign).
        n_shards_total: Shards in the campaign's layout.
        n_shards_done: Shards whose checkpoint already exists.
        n_enqueued: Tasks newly enqueued by this call (idempotent keys may
            make this smaller than the number of missing shards).
    """

    spec: CampaignSpec
    spec_hash: str
    status: str
    n_shards_total: int
    n_shards_done: int
    n_enqueued: int


def submit_campaign(root: Union[str, Path],
                    netlist: Optional[Netlist] = None,
                    config: Optional[TvlaConfig] = None,
                    n_shards: int = 2,
                    spec: Optional[CampaignSpec] = None,
                    queue: Optional[TaskQueue] = None,
                    shard_key_prefix: str = "") -> SubmitOutcome:
    """Register a campaign under ``root`` and enqueue its missing shards.

    Pass either a pre-built ``spec`` or a ``netlist`` (+ optional
    ``config``/``n_shards``) to build one; the runner always resolves
    ``streaming=True`` — shard partials are streamed accumulators, the
    checkpoint unit.  Safe to call any number of times: completed shards
    are skipped, queued shards are not duplicated, and a campaign whose
    result is already in the store is reported ``"cached"`` without
    touching the queue.

    ``queue``/``shard_key_prefix`` let a caller route the shard tasks into
    a queue *other* than ``root/queue.sqlite`` under namespaced keys — the
    multi-tenant service keeps per-tenant roots but one shared fleet-wide
    queue.
    """
    root = Path(root)
    if spec is None:
        if netlist is None:
            raise ValueError("submit_campaign needs a netlist or a spec")
        spec = CampaignSpec.from_netlist(netlist, config, n_shards=n_shards,
                                         force_streaming=True)
    spec_hash = spec.content_hash
    paths = CampaignPaths(root, spec_hash, key_prefix=shard_key_prefix)
    ranges = spec.shard_ranges()

    if campaign_store(root).has(spec_hash):
        done = sum(1 for k in range(len(ranges))
                   if paths.shard_path(k).exists())
        return SubmitOutcome(spec=spec, spec_hash=spec_hash, status="cached",
                             n_shards_total=len(ranges), n_shards_done=done,
                             n_enqueued=0)

    paths.shards_dir.mkdir(parents=True, exist_ok=True)
    if not paths.spec_path.exists():
        atomic_write_bytes(paths.spec_path, spec.to_json().encode("utf-8"))

    if queue is None:
        queue = campaign_queue(root)
    # Corrupt checkpoints are quarantined here and count as missing; the
    # enqueue loop below then requeues them like any other absent shard.
    missing = [k for k in range(len(ranges))
               if verified_checkpoint(paths, k) is None]
    n_enqueued = 0
    for shard_index in missing:
        payload = pickle.dumps(
            (run_shard_task, (str(root), spec_hash, shard_index), {}),
            protocol=pickle.HIGHEST_PROTOCOL)
        # One transaction decides inserted/existing/requeued, so
        # concurrent submitters cannot double count — and a shard that
        # previously exhausted its retries (transient crash cause) gets a
        # fresh attempt budget instead of wedging the campaign forever.
        # requeue_done: this loop only reaches shards whose checkpoint is
        # missing, so a 'done' queue row here is a stale completion record
        # (the checkpoint was garbage-collected) and must not block the
        # recompute.
        outcome = queue.put(payload, key=paths.shard_key(shard_index),
                            requeue_done=True)
        if outcome.action in ("inserted", "requeued"):
            n_enqueued += 1
    done = len(ranges) - len(missing)
    return SubmitOutcome(spec=spec, spec_hash=spec_hash,
                         status="resumed" if done else "submitted",
                         n_shards_total=len(ranges), n_shards_done=done,
                         n_enqueued=n_enqueued)


# ----------------------------------------------------------------------
# The worker-side task (module-level: queue payloads must be picklable)
# ----------------------------------------------------------------------
# Per-process streaming seam: a service worker installs a hook that
# forwards every published shard checkpoint to the server as a
# ShardPartial frame.  The hook lives in the worker *process* (queue
# payloads are pickled at submit time, so they cannot carry callbacks)
# and is pure observation: the durable checkpoint is already on disk
# before the hook runs, and hook failures are swallowed — a flaky
# streaming socket must never fail or retry a finished shard.
ShardPartialHook = Callable[[str, str, int, bytes], None]
_shard_partial_hook: Optional[ShardPartialHook] = None


def set_shard_partial_hook(hook: Optional[ShardPartialHook]) -> None:
    """Install (or clear, with ``None``) this process's shard-partial hook.

    The hook is called as ``hook(root, spec_hash, shard_index,
    packed_bytes)`` after every shard checkpoint publish — including the
    skip path of a duplicate delivery, whose already-published bytes are
    re-announced so a server that missed the first announcement still
    converges.  ``root`` is the campaign root the task ran against (the
    service derives the tenant from it).
    """
    global _shard_partial_hook
    _shard_partial_hook = hook


def _notify_partial(root: str, spec_hash: str, shard_index: int,
                    packed: bytes) -> None:
    hook = _shard_partial_hook
    if hook is None:
        return
    try:
        hook(root, spec_hash, shard_index, packed)
    except Exception:
        pass  # observation only — never fail a checkpointed shard


def run_shard_task(root: str, spec_hash: str,
                   shard_index: int) -> Dict[str, object]:
    """Compute one shard's partial accumulators and checkpoint them.

    Rebuilds everything from ``spec.json`` (netlist, schedule, chunk RNG
    streams are all pure functions of the spec), folds the shard's trace
    range, and durably publishes the sha256-sealed packed partial.
    Idempotent: if a *verified* checkpoint already exists — e.g. this is a
    duplicate delivery whose first execution acked late — the recompute is
    skipped; a corrupt checkpoint is quarantined and recomputed in place.

    Fault sites (``POLARIS_FAULT_PLAN``, docs/reliability.md): the
    ``worker.shard`` site fires before compute (``delay`` stretches the
    shard, ``crash`` SIGKILLs the worker mid-shard, ``error`` fails the
    attempt so queue retries engage) and ``checkpoint.write`` mangles the
    published bytes.  The legacy ``POLARIS_SHARD_DELAY`` knob (seconds,
    float) is honoured as a ``worker.shard`` delay rule.
    """
    paths = CampaignPaths(Path(root), spec_hash)
    shard_path = paths.shard_path(shard_index)
    if shard_path.exists():
        try:
            payload = load_checkpoint(shard_path)
            unpack_shard_moments(payload)
        except (CheckpointCorruptError, ValueError):
            try:
                quarantine_checkpoint(shard_path)
            except FileNotFoundError:
                pass  # a concurrent participant quarantined it first
        else:
            _notify_partial(root, spec_hash, shard_index, payload)
            return {"spec_hash": spec_hash, "shard": shard_index,
                    "skipped": True}
    rule = faults.perturb("worker.shard")
    if rule is not None and rule.mode == "error":
        raise CampaignError(
            f"injected fault at worker.shard: shard {shard_index} of "
            f"campaign {spec_hash[:12]}… failed")
    spec = load_spec(root, spec_hash)
    config = spec.tvla
    netlist = spec.netlist()
    ranges = spec.shard_ranges()
    if not 0 <= shard_index < len(ranges):
        raise CampaignError(
            f"shard {shard_index} out of range for campaign "
            f"{spec_hash[:12]}… with {len(ranges)} shard(s)")
    start, stop = ranges[shard_index]
    campaigns = campaign_schedule(netlist, config)
    sliced = tuple((pair[0].slice(start, stop), pair[1].slice(start, stop))
                   for pair in campaigns)
    started = time.perf_counter()
    partials = _shard_moments_rebuilt(netlist, sliced, config,
                                      start // config.chunk_traces)
    packed = pack_shard_moments(partials)
    # Durable all-or-nothing publish (fsync before rename); duplicate
    # deliveries racing here each use a private temp file and produce
    # identical bytes.  The hook receives the *payload* — the seal trailer
    # is a property of the file, not of the streamed partial.
    atomic_write_bytes(shard_path, seal_checkpoint(packed),
                       fault_site="checkpoint.write")
    _notify_partial(root, spec_hash, shard_index, packed)
    return {"spec_hash": spec_hash, "shard": shard_index, "skipped": False,
            "traces": stop - start, "seconds": time.perf_counter() - started}


# ----------------------------------------------------------------------
# Status / collection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignStatus:
    """Progress snapshot of one campaign."""

    spec_hash: str
    design_name: str
    n_traces: int
    n_shards_total: int
    n_shards_done: int
    complete: bool
    failed_shards: Tuple[int, ...]

    @property
    def state(self) -> str:
        if self.complete:
            return "complete"
        if self.failed_shards:
            return "failed"
        if self.n_shards_done == self.n_shards_total:
            return "merging"
        return "running"


def campaign_status(root: Union[str, Path], spec_hash: str,
                    queue: Optional[TaskQueue] = None,
                    shard_key_prefix: str = "") -> CampaignStatus:
    """Inspect one campaign's checkpoints, queue outcomes and store entry.

    ``queue``/``shard_key_prefix`` mirror :func:`submit_campaign` — pass
    the same pair the campaign was submitted with so failed-shard lookups
    hit the right queue rows.
    """
    root = Path(root)
    spec = load_spec(root, spec_hash)
    paths = CampaignPaths(root, spec_hash, key_prefix=shard_key_prefix)
    ranges = spec.shard_ranges()
    done = [k for k in range(len(ranges)) if paths.shard_path(k).exists()]
    if queue is None:
        queue = campaign_queue(root)
    failed = []
    for k in range(len(ranges)):
        if k in done:
            continue
        outcome = queue.outcome_by_key(paths.shard_key(k))
        if outcome is not None and outcome[0] == "failed":
            failed.append(k)
    return CampaignStatus(spec_hash=spec_hash, design_name=spec.design_name,
                          n_traces=spec.tvla.n_traces,
                          n_shards_total=len(ranges), n_shards_done=len(done),
                          complete=campaign_store(root).has(spec_hash),
                          failed_shards=tuple(failed))


def list_campaigns(root: Union[str, Path],
                   queue: Optional[TaskQueue] = None,
                   shard_key_prefix: str = "") -> List[CampaignStatus]:
    """Status of every campaign submitted under ``root``."""
    campaigns_dir = Path(root) / "campaigns"
    if not campaigns_dir.exists():
        return []
    return [campaign_status(root, path.name, queue=queue,
                            shard_key_prefix=shard_key_prefix)
            for path in sorted(campaigns_dir.iterdir())
            if (path / "spec.json").exists()]


def _merge_shard_results(shard_results: List[tuple], spec: CampaignSpec,
                         started_at: float) -> LeakageAssessment:
    """Merge verified shard partials into the final assessment.

    Delegates to :func:`repro.tvla.sharding.merge_shard_partials` — the
    same merge (same shard-order association) the in-process driver uses,
    so a resumed or distributed campaign is bit-identical to an
    uninterrupted one with the same layout.
    """
    config = spec.tvla
    class_results = merge_shard_partials(shard_results, config)
    netlist = spec.netlist()
    generator = resolve_generator(netlist, config, None)
    return aggregate_class_results(class_results, spec.design_name,
                                   generator.gate_names, config,
                                   time.perf_counter() - started_at,
                                   streamed=True,
                                   n_shards=len(spec.shard_ranges()))


def collect_result(root: Union[str, Path], spec_hash: str,
                   timeout: Optional[float] = None,
                   poll_interval: float = 0.1,
                   queue: Optional[TaskQueue] = None,
                   shard_key_prefix: str = "",
                   allow_partial: bool = False) -> LeakageAssessment:
    """Wait for a campaign's shards, merge them, and store the result.

    Serves straight from the store when the campaign already completed
    (bit-identical to the original run).  Otherwise polls the checkpoint
    directory until every shard holds a *verified* partial — corrupt
    checkpoints are quarantined and their shards requeued
    (:func:`verified_checkpoint`), so a torn or tampered file delays the
    collect rather than poisoning it — then merges in shard order,
    publishes the assessment to the content-addressed store and returns
    the stored copy.

    With ``allow_partial=True`` a poisoned campaign degrades instead of
    raising: once every still-missing shard has terminally failed (retries
    exhausted) and at least one shard succeeded, the completed shards are
    merged and returned with :attr:`LeakageAssessment.failed_shards`
    naming the casualties.  The degraded result is **not** stored — a
    resubmission after the fault is fixed recomputes the full campaign.

    Raises:
        CampaignError: when a shard task exhausted its retries (the worker
            traceback is included) — waiting longer cannot help.  With
            ``allow_partial`` this is only raised when *no* shard
            completed.
        TimeoutError: when ``timeout`` elapses first.
    """
    root = Path(root)
    store = campaign_store(root)
    cached = store.get(spec_hash)
    if cached is not None:
        return cached
    spec = load_spec(root, spec_hash)
    paths = CampaignPaths(root, spec_hash, key_prefix=shard_key_prefix)
    ranges = spec.shard_ranges()
    if queue is None:
        queue = campaign_queue(root)
    started_at = time.perf_counter()
    deadline = None if timeout is None else time.monotonic() + timeout
    verified: Dict[int, tuple] = {}
    while True:
        missing = []
        for shard_index in range(len(ranges)):
            if shard_index in verified:
                continue  # checkpoints are immutable once verified
            found = verified_checkpoint(paths, shard_index, queue=queue)
            if found is None:
                missing.append(shard_index)
            else:
                verified[shard_index] = found[1]
        if not missing:
            break
        failed, failure = [], None
        for shard_index in missing:
            outcome = queue.outcome_by_key(paths.shard_key(shard_index))
            if outcome is not None and outcome[0] == "failed":
                failed.append(shard_index)
                if failure is None:
                    failure = (shard_index, outcome[2])
        if failed:
            if allow_partial and len(failed) == len(missing) and verified:
                # Every outstanding shard is terminally dead: degrade.
                assessment = _merge_shard_results(
                    [verified[k] for k in sorted(verified)], spec,
                    started_at)
                assessment.failed_shards = tuple(failed)
                return assessment  # degraded — deliberately not stored
            if not allow_partial or not verified:
                raise CampaignError(
                    f"shard {failure[0]} of campaign {spec_hash[:12]}… "
                    f"exhausted its retries:\n{failure[1]}")
        if deadline is not None and time.monotonic() > deadline:
            raise TimeoutError(
                f"campaign {spec_hash[:12]}… still missing shards "
                f"{missing} after {timeout:.1f}s")
        time.sleep(poll_interval)
    assessment = _merge_shard_results(
        [verified[k] for k in sorted(verified)], spec, started_at)
    store.put(spec_hash, assessment, metadata={
        "design_name": spec.design_name,
        "n_shards": len(ranges),
        "n_traces": spec.tvla.n_traces,
    })
    # Return the stored copy: later cache hits are bit-identical to it by
    # construction (the round-trip itself is lossless).
    return store.get(spec_hash)


# ----------------------------------------------------------------------
# Garbage collection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GcOutcome:
    """What :func:`gc_campaign_root` removed (or would remove).

    Attributes:
        pruned_results: Content hashes evicted from the result store.
        pruned_shard_dirs: Campaign hashes whose shard-checkpoint
            directories were removed (their merged result is stored, so
            the per-shard partials were redundant).
        kept_results: Objects still in the store afterwards.
        dry_run: Whether this was a report-only pass.
    """

    pruned_results: Tuple[str, ...]
    pruned_shard_dirs: Tuple[str, ...]
    kept_results: int
    dry_run: bool


def gc_campaign_root(root: Union[str, Path],
                     max_age: Optional[float] = None,
                     keep_hashes: Iterable[str] = (),
                     prune_shards: bool = False,
                     dry_run: bool = False) -> GcOutcome:
    """Evict old results (and redundant shard checkpoints) under ``root``.

    The content-addressed store is write-once, so it only ever grows;
    long-lived roots (CI fleets, shared lab servers) need an eviction
    policy.  Everything removed here is re-derivable — re-submitting the
    same campaign recomputes the identical result — so gc can never lose
    information, only cache warmth.

    Args:
        root: The campaign root directory.
        max_age: Evict stored results older than this many seconds
            (``None`` = no age filter: evict everything not in
            ``keep_hashes``).
        keep_hashes: Campaign hashes to retain regardless of age.
        prune_shards: Additionally delete the ``campaigns/<hash>/shards``
            checkpoint directories of campaigns whose merged result is in
            the store *before* this call's eviction runs — once merged and
            stored, the per-shard partials are redundant bytes.  (If the
            result itself is evicted in the same pass, a resubmission
            recomputes from scratch; that is the documented trade.)
        dry_run: Report what would be removed without touching disk.

    Returns:
        A :class:`GcOutcome`; with ``dry_run`` the outcome lists the
        candidates and the filesystem is unchanged.
    """
    root = Path(root)
    store = campaign_store(root)
    shard_candidates: List[str] = []
    if prune_shards:
        campaigns_dir = root / "campaigns"
        if campaigns_dir.exists():
            for path in sorted(campaigns_dir.iterdir()):
                if not (path / "spec.json").exists():
                    continue  # not a campaign directory
                shards_dir = path / "shards"
                if shards_dir.exists() and any(shards_dir.iterdir()) \
                        and store.has(path.name):
                    shard_candidates.append(path.name)
        if not dry_run:
            for spec_hash in shard_candidates:
                shutil.rmtree(root / "campaigns" / spec_hash / "shards",
                              ignore_errors=True)
    pruned = store.prune(max_age=max_age, keep_hashes=keep_hashes,
                         dry_run=dry_run)
    kept = len(store) - (len(pruned) if dry_run else 0)
    return GcOutcome(pruned_results=tuple(pruned),
                     pruned_shard_dirs=tuple(shard_candidates),
                     kept_results=kept, dry_run=dry_run)


def run_campaign(root: Union[str, Path], netlist: Netlist,
                 config: Optional[TvlaConfig] = None, n_shards: int = 2,
                 n_workers: int = 1,
                 timeout: Optional[float] = None) -> LeakageAssessment:
    """Submit + work + collect in one call (the single-host convenience).

    Spins up ``n_workers`` in-process worker threads that drain the queue,
    then merges and stores the result.  Cache hits skip the work entirely.
    External ``polaris-campaign work`` processes attached to the same root
    participate seamlessly (the inline workers drain the *shared* queue,
    so they also help any sibling campaign under the same root).

    ``timeout`` bounds the whole call: the worker threads are signalled to
    stop at the deadline and the remaining budget is handed to
    :func:`collect_result`, which raises :class:`TimeoutError` — the drain
    phase can never block past the deadline on someone else's backlog.
    """
    from .queue import run_worker  # local import keeps module load cheap

    deadline = None if timeout is None else time.monotonic() + timeout
    outcome = submit_campaign(root, netlist=netlist, config=config,
                              n_shards=n_shards)
    if outcome.status != "cached":
        queue = campaign_queue(root)
        stop = threading.Event()
        threads = [
            threading.Thread(target=run_worker,
                             kwargs=dict(queue=queue,
                                         worker=f"run-campaign-{index}",
                                         drain=True, stop_event=stop),
                             daemon=True)
            for index in range(max(1, n_workers))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            remaining = (None if deadline is None
                         else max(0.0, deadline - time.monotonic()))
            thread.join(timeout=remaining)
        stop.set()  # past the deadline (or done): release any stragglers
    remaining = (None if deadline is None
                 else max(0.0, deadline - time.monotonic()))
    return collect_result(root, outcome.spec_hash, timeout=remaining)
