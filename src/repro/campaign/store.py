"""Content-addressed result store for TVLA campaign assessments.

Results are keyed by the :attr:`CampaignSpec.content_hash` of the campaign
that produced them and live as JSON objects under
``<root>/objects/<hh>/<hash>.json`` (two-level fan-out, git-style).  The
store is **write-once**: the first put of a hash wins and later puts are
no-ops, so a cached campaign is always served exactly as the run that
produced it — arrays round-trip through raw byte buffers
(:mod:`repro.campaign.serialize`), making hits bit-identical, not merely
close.  Writes go through the shared durable publish helper
(:func:`repro.reliability.atomic.publish_exclusive`: temp file, fsync,
first-wins link, directory fsync), so concurrent workers, killed
processes and power loss can never leave a torn object behind.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

from ..reliability.atomic import publish_exclusive
from ..tvla.assessment import LeakageAssessment
from .serialize import assessment_from_dict, assessment_to_dict

#: Store layout version, recorded in every object.
STORE_FORMAT = 1


def as_result_store(store: Union["ResultStore", str, Path]) -> "ResultStore":
    """Coerce a store-or-path argument (the pipeline's ``store=`` seam)."""
    if isinstance(store, ResultStore):
        return store
    return ResultStore(store)


class ResultStore:
    """Content-addressed, write-once assessment store rooted at a directory."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.objects_dir = self.root / "objects"

    # ------------------------------------------------------------------
    def object_path(self, key: str) -> Path:
        """On-disk path of the object stored under ``key``."""
        self._validate_key(key)
        return self.objects_dir / key[:2] / f"{key}.json"

    @staticmethod
    def _validate_key(key: str) -> None:
        if len(key) < 8 or not all(c in "0123456789abcdef" for c in key):
            raise ValueError(f"not a content hash: {key!r}")

    # ------------------------------------------------------------------
    def has(self, key: str) -> bool:
        """Whether a result is stored under ``key``."""
        return self.object_path(key).exists()

    def get(self, key: str) -> Optional[LeakageAssessment]:
        """The assessment stored under ``key``, or None.

        Raises:
            ValueError: for corrupt objects (bad JSON or foreign format).
        """
        path = self.object_path(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"corrupt store object {path}: {exc}") from exc
        if data.get("format") != STORE_FORMAT:
            raise ValueError(
                f"store object {path} has format {data.get('format')!r}; "
                f"this build understands {STORE_FORMAT}")
        return assessment_from_dict(data["assessment"])

    def metadata(self, key: str) -> Optional[Dict[str, object]]:
        """The metadata recorded alongside the assessment, or None."""
        path = self.object_path(key)
        if not path.exists():
            return None
        data = json.loads(path.read_text())
        return data.get("metadata", {})

    def put(self, key: str, assessment: LeakageAssessment,
            metadata: Optional[Dict[str, object]] = None) -> bool:
        """Store ``assessment`` under ``key`` unless already present.

        Returns:
            True when this call created the object; False when the key was
            already stored (the existing object is left untouched — the
            run that got there first defines the canonical result).
        """
        path = self.object_path(key)
        if path.exists():
            return False
        payload = json.dumps({
            "format": STORE_FORMAT,
            "key": key,
            "created_at": time.time(),
            "metadata": metadata or {},
            "assessment": assessment_to_dict(assessment),
        }, sort_keys=True)
        # Durable create-exclusive publish: the object appears whole or
        # not at all (fsync before link), and when two writers race on one
        # key the *first* link wins — os.link refuses to overwrite, unlike
        # os.replace — so the stored object really is the run that got
        # there first.  The "store.write" fault site mangles the payload
        # under an active FaultPlan.
        return publish_exclusive(path, payload.encode("utf-8"),
                                 fault_site="store.write")

    # ------------------------------------------------------------------
    def created_at(self, key: str) -> Optional[float]:
        """Creation timestamp of a stored object, or None.

        Prefers the ``created_at`` recorded inside the object (stable
        across copies/rsyncs); falls back to the file's mtime for objects
        whose JSON cannot be read.
        """
        path = self.object_path(key)
        try:
            stamp = json.loads(path.read_text()).get("created_at")
            if isinstance(stamp, (int, float)):
                return float(stamp)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            pass
        try:
            return path.stat().st_mtime
        except OSError:
            return None

    def prune(self, max_age: Optional[float] = None,
              keep_hashes: Iterable[str] = (),
              now: Optional[float] = None,
              dry_run: bool = False) -> List[str]:
        """Evict stored results; returns the pruned keys.

        The store is write-once but **not** write-forever: every object is
        re-derivable (its key is the content hash of the campaign spec
        that produced it, and re-running that campaign rebuilds the result
        bit-identically), so eviction can never lose information — only
        cache warmth.

        Args:
            max_age: Evict objects older than this many seconds (by the
                ``created_at`` recorded in the object, mtime fallback).
                ``None`` means no age filter — everything not kept is
                evicted (a full flush).
            keep_hashes: Content hashes to retain regardless of age (e.g.
                the campaigns a long-lived suite still serves).
            now: Reference timestamp (defaults to ``time.time()``); tests
                pin it to make age cutoffs deterministic.
            dry_run: Report the keys that *would* be evicted without
                deleting anything (the ``polaris-campaign gc --dry-run``
                path).

        Concurrent-safe: a racing reader either sees the whole object or a
        clean miss (deletion is atomic), and a racing writer of the same
        key simply recreates it afterwards.
        """
        keep = set(keep_hashes)
        cutoff = None if max_age is None else \
            (time.time() if now is None else now) - max_age
        pruned: List[str] = []
        for key in list(self.keys()):
            if key in keep:
                continue
            if cutoff is not None:
                stamp = self.created_at(key)
                if stamp is not None and stamp > cutoff:
                    continue
            if dry_run:
                pruned.append(key)
                continue
            try:
                self.object_path(key).unlink()
            except FileNotFoundError:
                continue  # a concurrent prune got there first
            pruned.append(key)
        # Drop buckets emptied by the eviction (best-effort, racy-safe).
        if not dry_run and self.objects_dir.exists():
            for bucket in self.objects_dir.iterdir():
                if bucket.is_dir():
                    try:
                        bucket.rmdir()
                    except OSError:
                        pass  # not empty (or concurrently repopulated)
        return pruned

    def keys(self) -> Iterator[str]:
        """Iterate over the stored content hashes."""
        if not self.objects_dir.exists():
            return
        for bucket in sorted(self.objects_dir.iterdir()):
            if not bucket.is_dir():
                continue
            for path in sorted(bucket.glob("*.json")):
                yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())
