"""Distributed, resumable TVLA campaign orchestration.

This package turns one-shot in-process TVLA assessments into durable,
multi-worker jobs:

* :mod:`repro.campaign.spec` — :class:`CampaignSpec`, the content-hashed
  job description (netlist + config + shard layout);
* :mod:`repro.campaign.queue` — a SQLite task queue with lease/ack/retry
  semantics and :class:`QueueExecutor`, a drop-in
  :class:`concurrent.futures.Executor` for the sharded TVLA drivers;
* :mod:`repro.campaign.runner` — submit / work / checkpoint / resume /
  collect orchestration over a shared campaign root;
* :mod:`repro.campaign.store` — the content-addressed result store
  (cache hits are bit-identical, keyed on the spec hash);
* :mod:`repro.campaign.serialize` — lossless wire formats for shard
  partials and assessments;
* :mod:`repro.campaign.adapters` — optional dask / MPI executors behind
  guarded imports;
* :mod:`repro.campaign.cli` — the ``polaris-campaign`` console script
  (``submit`` / ``work`` / ``status`` / ``result`` / ``gc``).

Quickstart (single host, two worker threads)::

    from repro.campaign import run_campaign
    assessment = run_campaign("runs", netlist, config, n_shards=4,
                              n_workers=2)

Multi-process / multi-host: ``submit`` once, start ``polaris-campaign
work --root ...`` anywhere the root is mounted, then ``result`` merges the
shard checkpoints.  See ``docs/campaigns.md``.
"""

from .adapters import (
    CrossProcessExecutor,
    OptionalDependencyError,
    dask_executor,
    mpi_executor,
)
from .queue import (
    ClaimedTask,
    QueueExecutor,
    TaskFailedError,
    TaskQueue,
    run_worker,
)
from .runner import (
    CampaignError,
    CampaignPaths,
    CampaignStatus,
    GcOutcome,
    SubmitOutcome,
    campaign_queue,
    campaign_status,
    campaign_store,
    collect_result,
    gc_campaign_root,
    list_campaigns,
    load_spec,
    run_campaign,
    run_shard_task,
    set_shard_partial_hook,
    submit_campaign,
)
from .serialize import (
    assessment_from_dict,
    assessment_to_dict,
    pack_shard_moments,
    unpack_shard_moments,
)
from .spec import (
    CampaignSpec,
    tvla_config_from_dict,
    tvla_config_to_dict,
)
from .store import ResultStore

__all__ = [
    "CampaignError",
    "CampaignPaths",
    "CampaignSpec",
    "CampaignStatus",
    "ClaimedTask",
    "CrossProcessExecutor",
    "GcOutcome",
    "OptionalDependencyError",
    "QueueExecutor",
    "ResultStore",
    "SubmitOutcome",
    "TaskFailedError",
    "TaskQueue",
    "assessment_from_dict",
    "assessment_to_dict",
    "campaign_queue",
    "campaign_status",
    "campaign_store",
    "collect_result",
    "dask_executor",
    "gc_campaign_root",
    "list_campaigns",
    "load_spec",
    "mpi_executor",
    "pack_shard_moments",
    "run_campaign",
    "run_shard_task",
    "run_worker",
    "set_shard_partial_hook",
    "submit_campaign",
    "tvla_config_from_dict",
    "tvla_config_to_dict",
    "unpack_shard_moments",
]
