"""Lossless (de)serialisation of campaign work products.

Two wire formats live here:

* **Shard partials** — a shard's :data:`~repro.tvla.sharding.ShardPartials`
  packed as length-prefixed :meth:`OnePassMoments.to_bytes` blobs.  Two
  sub-formats share the dispatch: ``SHM1`` for sequence-sampler shards
  (per class, one merged ``(group0, group1)`` accumulator pair) and
  ``SHM2`` for counter-sampler shards (per class and group, a **list** of
  per-chunk accumulators, kept unmerged so the campaign merge can
  left-fold them in global chunk order).  This is the unit the checkpoint
  layer persists and the queue ships between workers; the round-trip is
  bit-identical, so resumed/distributed merges equal in-process ones.
* **Assessments** — a full :class:`~repro.tvla.assessment.LeakageAssessment`
  as a JSON-able dict whose arrays are base64 of the raw little-endian
  float64 buffers (never decimal text), so a result served from the
  content-addressed store is bit-identical to the run that produced it.
"""

from __future__ import annotations

import base64
import struct
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..tvla.assessment import LeakageAssessment
from ..tvla.moments import OnePassMoments
from ..tvla.sharding import ShardChunkMoments, ShardMoments, ShardPartials

#: Magic + version prefix of the packed shard-partial format (one merged
#: accumulator pair per class — sequence-sampler shards).
_SHARD_MAGIC = b"SHM1"
#: Magic of the per-chunk variant (counter-sampler shards: unmerged
#: per-chunk accumulator lists per class and group).
_SHARD_CHUNK_MAGIC = b"SHM2"


# ----------------------------------------------------------------------
# Shard partials
# ----------------------------------------------------------------------
def _read_u32(payload: bytes, offset: int) -> Tuple[int, int]:
    if offset + 4 > len(payload):
        raise ValueError("truncated shard-moments payload")
    (value,) = struct.unpack_from("<I", payload, offset)
    return value, offset + 4


def _read_accumulator(payload: bytes,
                      offset: int) -> Tuple[OnePassMoments, int]:
    length, offset = _read_u32(payload, offset)
    blob = payload[offset:offset + length]
    if len(blob) != length:
        raise ValueError("truncated shard-moments payload")
    return OnePassMoments.from_bytes(blob), offset + length


def pack_shard_moments(partials: ShardPartials) -> bytes:
    """Pack one shard's per-class accumulators into a byte string.

    The wire format follows the partial form: merged pairs
    (:data:`ShardMoments`) pack as ``SHM1`` exactly as before this format
    existed; per-chunk lists (:data:`ShardChunkMoments`) pack as ``SHM2``
    with an extra chunk-count prefix per group.
    """
    if partials and isinstance(partials[0][0], list):
        chunks = [_SHARD_CHUNK_MAGIC, struct.pack("<I", len(partials))]
        for pair in partials:
            for group in pair:
                chunks.append(struct.pack("<I", len(group)))
                for accumulator in group:
                    blob = accumulator.to_bytes()
                    chunks.append(struct.pack("<I", len(blob)))
                    chunks.append(blob)
        return b"".join(chunks)
    chunks = [_SHARD_MAGIC, struct.pack("<I", len(partials))]
    for pair in partials:
        for accumulator in pair:
            blob = accumulator.to_bytes()
            chunks.append(struct.pack("<I", len(blob)))
            chunks.append(blob)
    return b"".join(chunks)


def unpack_shard_moments(payload: bytes) -> ShardPartials:
    """Rebuild the partials packed by :func:`pack_shard_moments`.

    Dispatches on the magic, so checkpoints written by either sampler
    discipline (or by pre-``SHM2`` builds) all load.

    Raises:
        ValueError: for truncated or foreign payloads.
    """
    if payload.startswith(_SHARD_CHUNK_MAGIC):
        offset = len(_SHARD_CHUNK_MAGIC)
        n_classes, offset = _read_u32(payload, offset)
        per_chunk: ShardChunkMoments = []
        for _ in range(n_classes):
            groups: List[List[OnePassMoments]] = []
            for _ in range(2):
                n_chunks, offset = _read_u32(payload, offset)
                group: List[OnePassMoments] = []
                for _ in range(n_chunks):
                    accumulator, offset = _read_accumulator(payload, offset)
                    group.append(accumulator)
                groups.append(group)
            per_chunk.append((groups[0], groups[1]))
        return per_chunk
    if not payload.startswith(_SHARD_MAGIC):
        raise ValueError("not a packed shard-moments payload")
    offset = len(_SHARD_MAGIC)
    n_classes, offset = _read_u32(payload, offset)
    partials: ShardMoments = []
    for _ in range(n_classes):
        pair = []
        for _ in range(2):
            accumulator, offset = _read_accumulator(payload, offset)
            pair.append(accumulator)
        partials.append((pair[0], pair[1]))
    return partials


# ----------------------------------------------------------------------
# Assessments
# ----------------------------------------------------------------------
def encode_array(array: np.ndarray) -> Dict[str, object]:
    """Encode an ndarray as ``{dtype, shape, data(base64)}`` losslessly."""
    array = np.ascontiguousarray(array)
    # Normalise to an explicit byte order so the blob decodes identically
    # on any host; float64 stays float64 bit for bit.
    dtype = array.dtype.newbyteorder("<")
    array = array.astype(dtype, copy=False)
    return {
        "dtype": dtype.str,
        "shape": list(array.shape),
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def decode_array(data: Dict[str, object]) -> np.ndarray:
    """Decode an array encoded by :func:`encode_array` (bit-identical)."""
    raw = base64.b64decode(data["data"])
    array = np.frombuffer(raw, dtype=np.dtype(data["dtype"]))
    array = array.reshape(tuple(data["shape"]))
    # Copy into a native-order, writeable array matching in-memory results.
    return array.astype(array.dtype.newbyteorder("="), copy=True)


def _encode_optional(array: Optional[np.ndarray]) -> Optional[Dict[str, object]]:
    return None if array is None else encode_array(array)


def _decode_optional(data: Optional[Dict[str, object]]) -> Optional[np.ndarray]:
    return None if data is None else decode_array(data)


def assessment_to_dict(assessment: LeakageAssessment) -> Dict[str, object]:
    """Serialise a :class:`LeakageAssessment` to a JSON-able dict."""
    return {
        "design_name": assessment.design_name,
        "gate_names": list(assessment.gate_names),
        "t_values": encode_array(assessment.t_values),
        "degrees_of_freedom": encode_array(assessment.degrees_of_freedom),
        "threshold": assessment.threshold,
        "n_traces": assessment.n_traces,
        "elapsed_seconds": assessment.elapsed_seconds,
        "mean_abs_t": _encode_optional(assessment.mean_abs_t),
        "streamed": assessment.streamed,
        "tvla_order": assessment.tvla_order,
        "order_t_values": {str(order): encode_array(values)
                           for order, values in
                           sorted(assessment.order_t_values.items())},
        "n_shards": assessment.n_shards,
        "failed_shards": list(assessment.failed_shards),
    }


def assessment_from_dict(data: Dict[str, object]) -> LeakageAssessment:
    """Rebuild the :class:`LeakageAssessment` serialised by
    :func:`assessment_to_dict`; every array round-trips bit-identically."""
    return LeakageAssessment(
        design_name=data["design_name"],
        gate_names=tuple(data["gate_names"]),
        t_values=decode_array(data["t_values"]),
        degrees_of_freedom=decode_array(data["degrees_of_freedom"]),
        threshold=data["threshold"],
        n_traces=data["n_traces"],
        elapsed_seconds=data["elapsed_seconds"],
        mean_abs_t=_decode_optional(data.get("mean_abs_t")),
        streamed=data["streamed"],
        tvla_order=data["tvla_order"],
        order_t_values={int(order): decode_array(values)
                        for order, values in data["order_t_values"].items()},
        n_shards=data["n_shards"],
        # .get(): objects stored before degraded results existed carry no
        # failed_shards key and are, by definition, complete.
        failed_shards=tuple(data.get("failed_shards", ())),
    )
