"""Filesystem/SQLite-backed task queue with lease/ack/retry semantics.

This is the distributed backend the ROADMAP's executor seam was built for:
:class:`TaskQueue` is a durable multi-producer/multi-consumer queue living
in a single SQLite file (WAL mode), and :class:`QueueExecutor` adapts it to
the :class:`concurrent.futures.Executor` interface — so
:func:`repro.tvla.sharding.assess_leakage_sharded` / ``assess_many`` gain
cross-process and cross-machine workers with **zero API change**: pass a
``QueueExecutor`` wherever ``"thread"``/``"process"`` went before.

Queue protocol (also documented in ``docs/campaigns.md``):

* ``put`` enqueues a payload, optionally under an idempotency ``key`` — a
  second put of the same key is a no-op returning the existing task, which
  is what makes campaign resubmission safe.
* ``claim`` leases the oldest runnable task to a worker for
  ``lease_seconds``.  A task is runnable when ``pending``, or when
  ``leased`` with an **expired** lease (the worker died mid-shard); each
  claim increments the attempt counter and mints a fresh lease token.
* ``renew`` extends the current lease — the worker heartbeat.  A live
  worker whose task outlasts its lease keeps renewing (by default
  :func:`run_worker` renews at half-lease intervals while executing), so
  an expired lease really does mean "the worker died or froze": a
  SIGSTOPped or crashed worker stops renewing, its lease lapses, and the
  task is redelivered.  Renewal is token-checked exactly like ``ack``, so
  a stale worker's renew fails instead of resurrecting a redelivered
  task's old lease.
* ``ack`` completes a task — but only with the token of the *current*
  lease.  If a slow-but-alive worker acks after its lease expired and the
  task was redelivered, the first valid ack wins and every later ack is a
  no-op: task results here are deterministic, so duplicate execution is
  wasted work, never wrong answers.
* ``fail`` releases a task for retry, or marks it ``failed`` once its
  attempt budget (``max_attempts``) is exhausted.

Payloads and results are pickled ``(fn, args, kwargs)`` / return values.
Only run workers against queue files you trust: unpickling executes code,
exactly as with :class:`~concurrent.futures.ProcessPoolExecutor` inputs.
"""

from __future__ import annotations

import os
import pickle
import sqlite3
import threading
import time
import traceback
import uuid
from concurrent.futures import Executor, Future
from contextlib import closing, contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from ..reliability import faults
from ..reliability.policy import RetryPolicy

#: Task states persisted in the queue database.
TASK_STATES = ("pending", "leased", "done", "failed")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS tasks (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    key           TEXT UNIQUE,
    payload       BLOB NOT NULL,
    status        TEXT NOT NULL DEFAULT 'pending',
    attempts      INTEGER NOT NULL DEFAULT 0,
    max_attempts  INTEGER NOT NULL,
    lease_token   TEXT,
    lease_expires REAL,
    worker        TEXT,
    result        BLOB,
    error         TEXT,
    enqueued_at   REAL NOT NULL,
    done_at       REAL,
    heartbeat_at  REAL,
    renewals      INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS tasks_status ON tasks (status, id);
CREATE INDEX IF NOT EXISTS tasks_lease ON tasks (status, lease_expires);
"""

#: Heartbeat columns added after the first release of the queue schema;
#: opening an old queue file adds them in place (``ALTER TABLE`` is cheap
#: and idempotent here), so long-lived campaign roots keep working.
_MIGRATION_COLUMNS = (
    ("heartbeat_at", "REAL"),
    ("renewals", "INTEGER NOT NULL DEFAULT 0"),
)


class TaskFailedError(RuntimeError):
    """A queued task exhausted its attempts; carries the worker traceback."""


@dataclass(frozen=True)
class PutOutcome:
    """Result of :meth:`TaskQueue.put`.

    Attributes:
        task_id: Id of the (new or pre-existing) task under the key.
        action: ``"inserted"`` (new row), ``"existing"`` (keyed task
            already live — pending/leased/done), or ``"requeued"`` (a
            keyed task that had exhausted its retries was reset to
            pending with a fresh attempt budget).
    """

    task_id: int
    action: str


@dataclass(frozen=True)
class ClaimedTask:
    """A leased work unit, as handed to a worker by :meth:`TaskQueue.claim`.

    Attributes:
        task_id: Queue-assigned task id.
        key: Idempotency key (None for anonymous tasks).
        payload: The pickled ``(fn, args, kwargs)`` work description.
        lease_token: Token the worker must present when acking/failing.
        attempts: 1 for first delivery; > 1 marks a redelivery after a
            lease expired (at-least-once semantics).
    """

    task_id: int
    key: Optional[str]
    payload: bytes
    lease_token: str
    attempts: int

    @property
    def redelivered(self) -> bool:
        """Whether an earlier delivery of this task lost its lease."""
        return self.attempts > 1


class TaskQueue:
    """Durable task queue in one SQLite file (safe across processes).

    Args:
        path: Database file; created (with parents) on first use.
        default_lease_seconds: Lease length handed out by :meth:`claim`
            when the caller does not override it.  Leases do **not** need
            to exceed one task's compute time: a live worker renews its
            lease at half-lease intervals (:meth:`renew`, on by default in
            :func:`run_worker`), so the lease only has to outlast one
            renewal gap.  Short leases mean dead workers are detected —
            and their shards redelivered — quickly.
        default_max_attempts: Attempt budget of tasks enqueued without an
            explicit override.
    """

    def __init__(self, path: Union[str, Path],
                 default_lease_seconds: float = 60.0,
                 default_max_attempts: int = 3) -> None:
        if default_lease_seconds <= 0:
            raise ValueError("default_lease_seconds must be > 0")
        if default_max_attempts < 1:
            raise ValueError("default_max_attempts must be >= 1")
        self.path = Path(path)
        self.default_lease_seconds = float(default_lease_seconds)
        self.default_max_attempts = int(default_max_attempts)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._connect() as connection:
            connection.executescript(_SCHEMA)
            existing = {row[1] for row in
                        connection.execute("PRAGMA table_info(tasks)")}
            for column, declaration in _MIGRATION_COLUMNS:
                if column not in existing:
                    connection.execute(
                        f"ALTER TABLE tasks ADD COLUMN {column} {declaration}")

    # ------------------------------------------------------------------
    @contextmanager
    def _connect(self) -> Iterator[sqlite3.Connection]:
        """One short-lived connection per operation.

        Fresh connections sidestep cross-thread sharing rules entirely and
        make every public method safe from any thread or process; WAL mode
        plus a generous busy timeout handles concurrent workers on the
        same file.  Per-shard task granularity makes the connection cost
        irrelevant.
        """
        with closing(sqlite3.connect(str(self.path), timeout=30.0)) as conn:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA busy_timeout=30000")
            with conn:  # one transaction per operation
                yield conn

    # ------------------------------------------------------------------
    def put(self, payload: bytes, key: Optional[str] = None,
            max_attempts: Optional[int] = None,
            requeue_done: bool = False) -> PutOutcome:
        """Enqueue a payload; idempotent when ``key`` is given.

        A keyed put of a live task (pending/leased/done) is a no-op, so
        resubmitting a campaign never duplicates work.  A keyed put of a
        **failed** task requeues it with a fresh attempt budget — that is
        how resubmission recovers a campaign whose shard died on a
        transient cause (OOM, full disk) after exhausting its retries.
        With ``requeue_done=True`` a **done** task is requeued as well:
        the caller is asserting that the task's durable side-effect no
        longer exists (e.g. ``polaris-campaign gc`` evicted the shard
        checkpoint), so the stale completion record must not block a
        recompute.  Pending/leased tasks are never disturbed.

        Returns:
            A :class:`PutOutcome` (task id + what happened), decided in a
            single transaction so concurrent submitters cannot double
            count.
        """
        max_attempts = (self.default_max_attempts if max_attempts is None
                        else int(max_attempts))
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        requeue_states = ("failed", "done") if requeue_done else ("failed",)
        with self._connect() as conn:
            if key is not None:
                conn.execute("BEGIN IMMEDIATE")
                row = conn.execute(
                    "SELECT id, status FROM tasks WHERE key = ?",
                    (key,)).fetchone()
                if row is not None:
                    task_id, status = int(row[0]), row[1]
                    if status not in requeue_states:
                        return PutOutcome(task_id, "existing")
                    conn.execute(
                        "UPDATE tasks SET status = 'pending', attempts = 0,"
                        " max_attempts = ?, payload = ?, lease_token = NULL,"
                        " lease_expires = NULL, error = NULL, result = NULL,"
                        " done_at = NULL, enqueued_at = ? WHERE id = ?",
                        (max_attempts, payload, time.time(), task_id))
                    return PutOutcome(task_id, "requeued")
            cursor = conn.execute(
                "INSERT INTO tasks (key, payload, max_attempts, enqueued_at)"
                " VALUES (?, ?, ?, ?)",
                (key, payload, max_attempts, time.time()))
            return PutOutcome(int(cursor.lastrowid), "inserted")

    def claim(self, worker: Optional[str] = None,
              lease_seconds: Optional[float] = None) -> Optional[ClaimedTask]:
        """Lease the oldest runnable task, or return None when idle.

        Runnable means ``pending`` or ``leased``-with-expired-lease; a
        reclaimed expired task whose attempt budget is already spent is
        marked ``failed`` instead of being handed out again.

        The ``queue.claim`` fault site models the transient lock/IO
        errors a busy shared SQLite file really produces; callers already
        treat them as "no task this round".
        """
        faults.maybe_error("queue.claim", sqlite3.OperationalError,
                           "database is locked")
        worker = worker or f"pid-{os.getpid()}"
        lease = (self.default_lease_seconds if lease_seconds is None
                 else float(lease_seconds))
        now = time.time()
        with self._connect() as conn:
            # BEGIN IMMEDIATE serialises competing claims: the first
            # worker to get the write lock wins the task, everyone else
            # retries on the next row.
            conn.execute("BEGIN IMMEDIATE")
            while True:
                row = conn.execute(
                    "SELECT id, key, payload, attempts, max_attempts"
                    "  FROM tasks"
                    " WHERE status = 'pending'"
                    "    OR (status = 'leased' AND lease_expires < ?)"
                    " ORDER BY id LIMIT 1", (now,)).fetchone()
                if row is None:
                    return None
                task_id, key, payload, attempts, max_attempts = row
                if attempts >= max_attempts:
                    # The lease died after the final attempt: retire it.
                    conn.execute(
                        "UPDATE tasks SET status = 'failed', error = ?,"
                        " lease_token = NULL WHERE id = ?",
                        (f"lease expired after {attempts} attempt(s)",
                         task_id))
                    continue
                token = uuid.uuid4().hex
                conn.execute(
                    "UPDATE tasks SET status = 'leased', attempts = ?,"
                    " lease_token = ?, lease_expires = ?, worker = ?,"
                    " heartbeat_at = ?, renewals = 0"
                    " WHERE id = ?",
                    (attempts + 1, token, now + lease, worker, now, task_id))
                return ClaimedTask(task_id=int(task_id), key=key,
                                   payload=payload, lease_token=token,
                                   attempts=int(attempts) + 1)

    def renew(self, task_id: int, lease_token: str,
              lease_seconds: Optional[float] = None) -> bool:
        """Extend a live lease — the worker heartbeat.

        Pushes ``lease_expires`` ``lease_seconds`` into the future (the
        queue default when omitted), stamps ``heartbeat_at`` and counts
        the renewal.  Token-checked exactly like :meth:`ack`: a worker
        whose lease already expired and was redelivered holds a stale
        token, so its renew returns False and cannot resurrect the old
        lease out from under the new owner.

        Returns:
            True when the lease was extended; False for stale tokens (the
            task was redelivered, completed elsewhere, or failed).
        """
        lease = (self.default_lease_seconds if lease_seconds is None
                 else float(lease_seconds))
        now = time.time()
        with self._connect() as conn:
            cursor = conn.execute(
                "UPDATE tasks SET lease_expires = ?, heartbeat_at = ?,"
                " renewals = renewals + 1"
                " WHERE id = ? AND lease_token = ? AND status = 'leased'",
                (now + lease, now, task_id, lease_token))
            return cursor.rowcount == 1

    def lease_info(self, task_id: int) -> Optional[Dict[str, object]]:
        """Lease bookkeeping of one task (worker, expiry, heartbeats).

        Returns ``None`` for unknown ids; otherwise a dict with
        ``status``, ``worker``, ``attempts``, ``lease_expires``,
        ``heartbeat_at``, ``renewals`` and ``done_at`` — the observability
        surface the service layer and the tests read.
        """
        with self._connect() as conn:
            row = conn.execute(
                "SELECT status, worker, attempts, lease_expires,"
                " heartbeat_at, renewals, done_at FROM tasks WHERE id = ?",
                (task_id,)).fetchone()
        if row is None:
            return None
        return {"status": row[0], "worker": row[1], "attempts": row[2],
                "lease_expires": row[3], "heartbeat_at": row[4],
                "renewals": row[5], "done_at": row[6]}

    def ack(self, task_id: int, lease_token: str, result: bytes) -> bool:
        """Complete a leased task; only the current lease's token counts.

        Returns:
            True when this ack completed the task; False for stale tokens
            and duplicate deliveries (first valid ack wins, later acks are
            no-ops).

        The ``queue.ack`` fault site injects the same transient
        ``sqlite3.OperationalError`` a contended database raises;
        :func:`_report_outcome` absorbs it with the shared retry policy.
        """
        faults.maybe_error("queue.ack", sqlite3.OperationalError,
                           "database is locked")
        with self._connect() as conn:
            cursor = conn.execute(
                "UPDATE tasks SET status = 'done', result = ?, done_at = ?,"
                " error = NULL WHERE id = ? AND lease_token = ?"
                " AND status = 'leased'",
                (result, time.time(), task_id, lease_token))
            return cursor.rowcount == 1

    def fail(self, task_id: int, lease_token: str, error: str) -> str:
        """Report a failed execution; retry until attempts are exhausted.

        Returns:
            ``"retried"`` (task back to pending), ``"failed"`` (budget
            exhausted) or ``"stale"`` (the lease was no longer current —
            the task was redelivered or already finished elsewhere).
        """
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            row = conn.execute(
                "SELECT attempts, max_attempts FROM tasks"
                " WHERE id = ? AND lease_token = ? AND status = 'leased'",
                (task_id, lease_token)).fetchone()
            if row is None:
                return "stale"
            attempts, max_attempts = row
            if attempts >= max_attempts:
                conn.execute(
                    "UPDATE tasks SET status = 'failed', error = ?,"
                    " lease_token = NULL WHERE id = ?", (error, task_id))
                return "failed"
            conn.execute(
                "UPDATE tasks SET status = 'pending', error = ?,"
                " lease_token = NULL, lease_expires = NULL WHERE id = ?",
                (error, task_id))
            return "retried"

    # ------------------------------------------------------------------
    def outcome(self, task_id: int) -> Tuple[str, Optional[bytes], Optional[str]]:
        """``(status, result, error)`` of one task.

        Raises:
            KeyError: for unknown task ids.
        """
        with self._connect() as conn:
            row = conn.execute(
                "SELECT status, result, error FROM tasks WHERE id = ?",
                (task_id,)).fetchone()
        if row is None:
            raise KeyError(f"unknown task id {task_id}")
        return row[0], row[1], row[2]

    def outcome_by_key(self, key: str) -> Optional[Tuple[str, Optional[bytes],
                                                         Optional[str]]]:
        """``(status, result, error)`` of a keyed task, or None."""
        with self._connect() as conn:
            row = conn.execute(
                "SELECT status, result, error FROM tasks WHERE key = ?",
                (key,)).fetchone()
        return None if row is None else (row[0], row[1], row[2])

    def finished(self, task_ids: List[int]) -> Dict[int, Tuple[str, Optional[bytes],
                                                               Optional[str]]]:
        """Subset of ``task_ids`` that reached ``done``/``failed``."""
        if not task_ids:
            return {}
        results: Dict[int, Tuple[str, Optional[bytes], Optional[str]]] = {}
        with self._connect() as conn:
            for start in range(0, len(task_ids), 500):
                batch = task_ids[start:start + 500]
                marks = ",".join("?" for _ in batch)
                rows = conn.execute(
                    f"SELECT id, status, result, error FROM tasks"
                    f" WHERE id IN ({marks})"
                    f" AND status IN ('done', 'failed')", batch).fetchall()
                for task_id, status, result, error in rows:
                    results[int(task_id)] = (status, result, error)
        return results

    def counts(self) -> Dict[str, int]:
        """Tasks per state (an expired lease still counts as ``leased``)."""
        counts = {state: 0 for state in TASK_STATES}
        with self._connect() as conn:
            for status, count in conn.execute(
                    "SELECT status, COUNT(*) FROM tasks GROUP BY status"):
                counts[status] = int(count)
        return counts

    def outstanding(self) -> int:
        """Tasks that are neither done nor failed (pending + leased)."""
        counts = self.counts()
        return counts["pending"] + counts["leased"]


# ----------------------------------------------------------------------
# Worker loop (used by QueueExecutor threads and the CLI `work` command)
# ----------------------------------------------------------------------
class _LeaseRenewer:
    """Background heartbeat that renews one claimed task's lease.

    Runs in a daemon thread at half-lease intervals while the worker
    executes the task, so the lease only expires when the worker really
    dies (or is frozen, e.g. SIGSTOP — a stopped process stops renewing
    too, which is exactly the liveness signal the queue wants).  Renewal
    failures are swallowed: a stale token means the task was redelivered
    and the eventual stale ack is already rejected by the queue.
    """

    def __init__(self, queue: "TaskQueue", task_id: int, lease_token: str,
                 lease_seconds: float) -> None:
        self._queue = queue
        self._task_id = task_id
        self._token = lease_token
        self._lease = float(lease_seconds)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self) -> "_LeaseRenewer":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=self._lease)

    def _run(self) -> None:
        interval = max(self._lease / 2.0, 0.01)
        while not self._stop.wait(interval):
            try:
                if not self._queue.renew(self._task_id, self._token,
                                         lease_seconds=self._lease):
                    return  # stale token: the task moved on without us
            except (sqlite3.Error, OSError):
                pass  # transient queue I/O: the next beat retries


def run_worker(queue: TaskQueue,
               worker: Optional[str] = None,
               max_tasks: Optional[int] = None,
               poll_interval: float = 0.05,
               lease_seconds: Optional[float] = None,
               drain: bool = False,
               stop_event: Optional[threading.Event] = None,
               forever: bool = False,
               max_poll_interval: float = 5.0,
               max_idle: Optional[float] = None,
               renew_leases: bool = True) -> int:
    """Claim/execute/ack tasks until stopped; returns the executed count.

    Args:
        queue: The queue to serve.
        worker: Worker id recorded on leases (defaults to the pid).
        max_tasks: Stop after this many executions (None = unbounded).
        poll_interval: Idle sleep between empty claims (the *initial*
            sleep in ``forever`` mode).
        lease_seconds: Per-claim lease override.
        drain: Stop once the queue holds no outstanding work.  A leased
            task on another worker still counts as outstanding, so a
            draining worker waits for dead workers' leases to expire and
            picks their shards up — which is exactly the resume story.
        stop_event: Cooperative cancellation for in-process workers.
        forever: Daemon mode for long-lived fleets: never exit on an empty
            queue, and back the idle poll off **exponentially** (doubling
            from ``poll_interval`` up to ``max_poll_interval``) so an idle
            fleet costs near-zero queue traffic; the interval resets to
            ``poll_interval`` the moment a task is claimed.  Mutually
            exclusive with ``drain``; ``max_tasks``, ``max_idle`` and
            ``stop_event`` still apply.
        max_poll_interval: Backoff ceiling of ``forever`` mode.
        max_idle: Exit after this many seconds without claiming a task
            (measured from startup or the last claim).  The CI-friendly
            cutoff for daemon workers: ``forever=True, max_idle=60`` keeps
            serving bursts but cannot outlive its pipeline job.
        renew_leases: Heartbeat while executing (default on): a daemon
            thread renews the claimed lease at half-lease intervals, so
            leases no longer need to exceed one task's compute time — an
            expired lease means the worker died or froze, not that the
            shard was slow.  Disable only to *simulate* pre-renewal
            workers in tests.

    Neither a raising task (reported via :meth:`TaskQueue.fail` and
    retried until its attempt budget runs out) nor transient queue I/O
    errors (a stalling filesystem, lock contention beyond the busy
    timeout) kill the worker loop — queue errors are backed off and
    retried, because a silently dead worker would hang every future
    waiting on its acks.

    Raises:
        ValueError: for ``forever`` combined with ``drain``, or
            non-positive intervals.
    """
    if forever and drain:
        raise ValueError("forever and drain are mutually exclusive: a "
                         "daemon never exits on an empty queue")
    if poll_interval <= 0:
        raise ValueError("poll_interval must be > 0")
    # max_poll_interval only participates in forever-mode backoff, so a
    # plain worker with a long poll_interval stays valid.
    if forever and max_poll_interval < poll_interval:
        raise ValueError("max_poll_interval must be >= poll_interval")
    executed = 0
    sleep_for = poll_interval
    last_claim = time.monotonic()
    while stop_event is None or not stop_event.is_set():
        if max_tasks is not None and executed >= max_tasks:
            break
        try:
            task = queue.claim(worker=worker, lease_seconds=lease_seconds)
            if task is None and drain and queue.outstanding() == 0:
                break
        except (sqlite3.Error, OSError):
            task = None  # transient queue I/O error: back off and retry
        if task is None:
            if max_idle is not None \
                    and time.monotonic() - last_claim >= max_idle:
                break
            if stop_event is not None:
                stop_event.wait(sleep_for)
            else:
                time.sleep(sleep_for)
            if forever:
                sleep_for = min(sleep_for * 2, max_poll_interval)
            continue
        sleep_for = poll_interval
        last_claim = time.monotonic()
        renewer = None
        if renew_leases:
            lease = (queue.default_lease_seconds if lease_seconds is None
                     else float(lease_seconds))
            renewer = _LeaseRenewer(queue, task.task_id, task.lease_token,
                                    lease).start()
        try:
            fn, args, kwargs = pickle.loads(task.payload)
            result = fn(*args, **kwargs)
            payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            if renewer is not None:
                renewer.stop()
            _report_outcome(queue.fail, task.task_id, task.lease_token,
                            traceback.format_exc())
        else:
            if renewer is not None:
                renewer.stop()
            _report_outcome(queue.ack, task.task_id, task.lease_token,
                            payload)
        executed += 1
    return executed


#: Backoff for outcome reports: three attempts inside a fraction of the
#: default lease, so a transiently locked database never costs a
#: redelivery.
_OUTCOME_RETRY = RetryPolicy(max_attempts=3, base_delay=0.05,
                             max_delay=0.5, jitter=0.25)


def _report_outcome(report, task_id: int, lease_token: str,
                    payload) -> None:
    """Ack/fail via the shared retry policy; give up to the lease.

    If the queue stays unreachable the lease simply expires and the task
    is redelivered — at-least-once semantics make dropping the report
    safe (``reraise=False``), while letting the exception escape would
    kill the worker.
    """
    _OUTCOME_RETRY.call(lambda: report(task_id, lease_token, payload),
                        retry_on=(sqlite3.Error, OSError), reraise=False)


# ----------------------------------------------------------------------
# Executor adapter
# ----------------------------------------------------------------------
class QueueExecutor(Executor):
    """A :class:`concurrent.futures.Executor` backed by a :class:`TaskQueue`.

    Drop-in for the sharded TVLA drivers::

        executor = QueueExecutor(root / "queue.sqlite", n_workers=2)
        with executor:
            assessment = assess_leakage_sharded(netlist, config,
                                                n_shards=4,
                                                executor=executor)

    ``submit`` pickles ``(fn, args, kwargs)`` into the queue and returns a
    normal :class:`~concurrent.futures.Future`; a daemon poller thread
    resolves futures as acks land.  Work is executed by whoever serves the
    queue: the executor's own ``n_workers`` in-process worker threads,
    and/or external ``polaris-campaign work`` processes on any machine
    sharing the queue file.  The class advertises ``cross_process = True``
    so the sharded drivers ship pickled netlists to workers (each task
    rebuilds its own generator) instead of sharing in-process state.
    """

    #: Tasks may execute in other processes/hosts; see
    #: :func:`repro.tvla.sharding._make_executor`.
    cross_process = True

    def __init__(self, queue: Union[TaskQueue, str, Path],
                 n_workers: int = 0,
                 poll_interval: float = 0.05,
                 lease_seconds: Optional[float] = None) -> None:
        if not isinstance(queue, TaskQueue):
            queue = TaskQueue(queue)
        if n_workers < 0:
            raise ValueError("n_workers must be >= 0")
        self.queue = queue
        self._poll_interval = float(poll_interval)
        self._lease_seconds = lease_seconds
        self._lock = threading.Lock()
        self._futures: Dict[int, Future] = {}
        self._stop = threading.Event()
        self._poller: Optional[threading.Thread] = None
        self._workers = [
            threading.Thread(
                target=run_worker,
                kwargs=dict(queue=self.queue, worker=f"inline-{index}",
                            poll_interval=self._poll_interval,
                            lease_seconds=self._lease_seconds,
                            stop_event=self._stop),
                name=f"queue-worker-{index}", daemon=True)
            for index in range(n_workers)
        ]
        for thread in self._workers:
            thread.start()

    # ------------------------------------------------------------------
    def submit(self, fn: Callable, /, *args, **kwargs) -> Future:
        """Enqueue ``fn(*args, **kwargs)``; resolve the future on ack."""
        if self._stop.is_set():
            raise RuntimeError("cannot submit to a shut-down QueueExecutor")
        payload = pickle.dumps((fn, args, kwargs),
                               protocol=pickle.HIGHEST_PROTOCOL)
        task_id = self.queue.put(payload).task_id
        future: Future = Future()
        with self._lock:
            self._futures[task_id] = future
            if self._poller is None:
                self._poller = threading.Thread(target=self._poll_loop,
                                                name="queue-poller",
                                                daemon=True)
                self._poller.start()
        return future

    def _poll_loop(self) -> None:
        while not self._stop.is_set():
            with self._lock:
                waiting = [task_id for task_id, future in self._futures.items()
                           if not future.done()]
            if waiting:
                try:
                    finished = self.queue.finished(waiting)
                except Exception:
                    # Transient DB hiccup (e.g. the queue file's filesystem
                    # stalls): keep the poller alive and retry next tick —
                    # a dead poller would hang every outstanding future.
                    finished = {}
                for task_id, (status, result, error) in finished.items():
                    with self._lock:
                        future = self._futures.pop(task_id, None)
                    if future is None or future.done():
                        continue  # resolved or cancelled by the caller
                    try:
                        if status == "done":
                            future.set_result(pickle.loads(result))
                        else:
                            future.set_exception(TaskFailedError(
                                error or "task failed"))
                    except Exception as exc:
                        # A result that does not unpickle here (foreign
                        # worker build) must fail its own future, never
                        # kill the poller for everyone else.
                        if not future.done():
                            future.set_exception(TaskFailedError(
                                f"task {task_id} result could not be "
                                f"decoded: {exc!r}"))
            self._stop.wait(self._poll_interval)

    def shutdown(self, wait: bool = True, *,
                 cancel_futures: bool = False) -> None:
        """Stop the poller and in-process workers.

        ``cancel_futures=True`` cancels unresolved futures locally; the
        underlying queue rows are left untouched (another worker may still
        complete them — the queue, not the executor, owns task state).
        """
        if cancel_futures:
            with self._lock:
                futures = list(self._futures.values())
            for future in futures:
                future.cancel()
        self._stop.set()
        if wait:
            for thread in self._workers:
                thread.join(timeout=30.0)
            if self._poller is not None:
                self._poller.join(timeout=30.0)
