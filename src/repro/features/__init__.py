"""Structural feature extraction and dataset handling."""

from .encoding import DEFAULT_VOCABULARY, GateTypeEncoder
from .dataset import Dataset
from .structural import StructuralFeatureExtractor

__all__ = [
    "DEFAULT_VOCABULARY",
    "GateTypeEncoder",
    "Dataset",
    "StructuralFeatureExtractor",
]
