"""Gate-type one-hot encoding.

The paper's structural features encode each gate (and its neighbours) with a
one-hot vector over the cell vocabulary, so that tree models can branch on
conditions like "neighbour 4 is a NAND" — which is also the form the
SHAP-extracted rules of Table V take.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..netlist.cell_library import GateType

#: Vocabulary used for one-hot encoding.  The order is fixed so feature
#: indices are stable across designs and experiments.
DEFAULT_VOCABULARY: Tuple[GateType, ...] = (
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
    GateType.NOT,
    GateType.BUF,
    GateType.MUX,
    GateType.DFF,
)


class GateTypeEncoder:
    """One-hot encoder over a fixed gate-type vocabulary.

    Unknown types (e.g. masked composites encountered during re-analysis of
    a protected design) map to the all-zeros vector rather than raising, so
    feature extraction never fails mid-flow.
    """

    def __init__(self, vocabulary: Optional[Sequence[GateType]] = None) -> None:
        self.vocabulary: Tuple[GateType, ...] = tuple(
            vocabulary if vocabulary is not None else DEFAULT_VOCABULARY)
        self._index: Dict[GateType, int] = {
            gate_type: i for i, gate_type in enumerate(self.vocabulary)
        }

    @property
    def size(self) -> int:
        """Length of one one-hot vector."""
        return len(self.vocabulary)

    def encode(self, gate_type: Optional[GateType]) -> np.ndarray:
        """One-hot encode ``gate_type`` (all zeros for None/unknown types)."""
        vector = np.zeros(self.size, dtype=float)
        if gate_type is not None and gate_type in self._index:
            vector[self._index[gate_type]] = 1.0
        return vector

    def decode(self, vector: np.ndarray) -> Optional[GateType]:
        """Inverse of :meth:`encode`; returns None for the all-zeros vector."""
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (self.size,):
            raise ValueError(f"expected vector of length {self.size}")
        if not vector.any():
            return None
        return self.vocabulary[int(np.argmax(vector))]

    def feature_names(self, prefix: str) -> List[str]:
        """Names of the one-hot columns, e.g. ``"{prefix}=NAND"``."""
        return [f"{prefix}={gate_type.value}" for gate_type in self.vocabulary]

    def index_of(self, gate_type: GateType) -> int:
        """Column index of ``gate_type`` in the one-hot block.

        Raises:
            KeyError: if the type is not in the vocabulary.
        """
        return self._index[gate_type]
