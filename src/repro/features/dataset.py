"""Labelled dataset container for POLARIS model training.

Algorithm 1 of the paper appends ``(structural feature vector, good/bad
label)`` pairs to ``{X_data, Y_data}``; this module is that container plus
the usual conveniences (stacking, splitting, class balance, persistence).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np


@dataclass
class Dataset:
    """A labelled feature matrix.

    Attributes:
        features: Matrix of shape ``(n_samples, n_features)``.
        labels: Integer labels of shape ``(n_samples,)`` (0 = bad masking
            candidate, 1 = good masking candidate).
        feature_names: Column names, used by SHAP explanations and rules.
        metadata: Free-form provenance (design names, parameters, ...).
    """

    features: np.ndarray
    labels: np.ndarray
    feature_names: Tuple[str, ...]
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=float)
        self.labels = np.asarray(self.labels, dtype=int)
        self.feature_names = tuple(self.feature_names)
        if self.features.ndim != 2:
            raise ValueError("features must be a 2-D matrix")
        if self.labels.shape != (self.features.shape[0],):
            raise ValueError("labels length must match number of feature rows")
        if len(self.feature_names) != self.features.shape[1]:
            raise ValueError("feature_names length must match feature columns")

    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        """Number of labelled samples."""
        return int(self.features.shape[0])

    @property
    def n_features(self) -> int:
        """Number of feature columns."""
        return int(self.features.shape[1])

    def class_counts(self) -> Dict[int, int]:
        """Histogram of labels (useful for monitoring the θr imbalance)."""
        unique, counts = np.unique(self.labels, return_counts=True)
        return {int(u): int(c) for u, c in zip(unique, counts)}

    def positive_fraction(self) -> float:
        """Fraction of samples labelled 1 ('good masking')."""
        if self.n_samples == 0:
            return 0.0
        return float(np.mean(self.labels == 1))

    # ------------------------------------------------------------------
    def append(self, other: "Dataset") -> "Dataset":
        """Return a new dataset with ``other`` stacked underneath ``self``."""
        if self.feature_names != other.feature_names:
            raise ValueError("cannot append datasets with different features")
        return Dataset(
            features=np.vstack([self.features, other.features]),
            labels=np.concatenate([self.labels, other.labels]),
            feature_names=self.feature_names,
            metadata={**self.metadata, **other.metadata},
        )

    def subset(self, indices: Sequence[int]) -> "Dataset":
        """Return the rows selected by ``indices`` as a new dataset."""
        indices = np.asarray(indices, dtype=int)
        return Dataset(self.features[indices], self.labels[indices],
                       self.feature_names, dict(self.metadata))

    def shuffled(self, seed: int = 0) -> "Dataset":
        """Return a row-shuffled copy."""
        rng = np.random.default_rng(seed)
        order = rng.permutation(self.n_samples)
        return self.subset(order)

    def train_test_split(self, test_fraction: float = 0.2,
                         seed: int = 0) -> Tuple["Dataset", "Dataset"]:
        """Split into (train, test) with shuffling.

        Raises:
            ValueError: if ``test_fraction`` is outside (0, 1).
        """
        if not 0.0 < test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        shuffled = self.shuffled(seed)
        n_test = max(1, int(round(self.n_samples * test_fraction)))
        test = shuffled.subset(range(n_test))
        train = shuffled.subset(range(n_test, self.n_samples))
        return train, test

    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        """Persist the dataset to an ``.npz`` file and return the path."""
        path = Path(path)
        np.savez_compressed(
            path,
            features=self.features,
            labels=self.labels,
            feature_names=np.array(self.feature_names, dtype=object),
        )
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Dataset":
        """Load a dataset saved with :meth:`save`."""
        data = np.load(Path(path), allow_pickle=True)
        return cls(
            features=data["features"],
            labels=data["labels"],
            feature_names=tuple(str(n) for n in data["feature_names"]),
        )

    @classmethod
    def from_rows(cls, rows: Iterable[Tuple[np.ndarray, int]],
                  feature_names: Sequence[str],
                  metadata: Optional[Dict[str, object]] = None) -> "Dataset":
        """Build a dataset from an iterable of ``(feature_vector, label)``."""
        rows = list(rows)
        if not rows:
            return cls(np.zeros((0, len(feature_names))), np.zeros(0, dtype=int),
                       tuple(feature_names), metadata or {})
        features = np.vstack([np.asarray(r[0], dtype=float) for r in rows])
        labels = np.array([int(r[1]) for r in rows], dtype=int)
        return cls(features, labels, tuple(feature_names), metadata or {})
