"""Structural feature extraction (the ``structural_features`` of Algorithm 1).

For a gate ``i`` in the design graph, the paper collects *local* structural
information: the gate's own type, the types of its ``L`` nearest neighbours
(found by breadth-first search), the connectivity among that neighbourhood
(adjacency matrix, one-hot encoded), and simple placement measures.  The
resulting vector is what the masking model is trained and evaluated on, and
its columns are named so that SHAP explanations read like the rules of the
paper's Table V (e.g. ``G4=NAND``, ``G4-G5 connected``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..netlist.cell_library import GateType
from ..netlist.graph import neighborhood, netlist_to_graph
from ..netlist.netlist import Netlist
from ..simulation.levelize import gate_levels
from .encoding import GateTypeEncoder


class StructuralFeatureExtractor:
    """Extracts fixed-length structural feature vectors for gates.

    The extractor pre-computes the design graph, logic levels and fan-out
    counts once per netlist, so per-gate extraction is cheap even when the
    whole design is swept (Algorithm 2 does exactly that).

    Args:
        netlist: Design to analyse.
        locality: Number of BFS neighbours ``L`` included per gate (the
            paper uses ``L = 7``).
        encoder: Gate-type encoder shared across designs so feature columns
            always align.
    """

    def __init__(self, netlist: Netlist, locality: int = 7,
                 encoder: Optional[GateTypeEncoder] = None) -> None:
        if locality < 1:
            raise ValueError("locality must be >= 1")
        self.netlist = netlist
        self.locality = locality
        self.encoder = encoder if encoder is not None else GateTypeEncoder()
        self._graph = netlist_to_graph(netlist, include_ports=False)
        self._levels = gate_levels(netlist)
        self._max_level = max(self._levels.values(), default=1)
        self._fanout_counts: Dict[str, int] = {
            gate.name: len(netlist.fanout_gates(gate.name)) for gate in netlist.gates
        }
        self._feature_names = self._build_feature_names()

    # ------------------------------------------------------------------
    @property
    def feature_names(self) -> Tuple[str, ...]:
        """Names of the feature-vector columns."""
        return self._feature_names

    @property
    def n_features(self) -> int:
        """Length of one feature vector."""
        return len(self._feature_names)

    def _build_feature_names(self) -> Tuple[str, ...]:
        names: List[str] = []
        names.extend(self.encoder.feature_names("G0"))
        for position in range(1, self.locality + 1):
            names.extend(self.encoder.feature_names(f"G{position}"))
        # Pairwise connectivity among the seed gate (G0) and its neighbours.
        members = list(range(self.locality + 1))
        for i in members:
            for j in members:
                if i < j:
                    names.append(f"G{i}-G{j} connected")
        # Dedicated driver (fan-in) and load (fan-out) type slots: the gates
        # feeding / fed by the seed gate carry the strongest signal about
        # how data-dependent the seed gate's input activity is, which is
        # exactly what determines the benefit of masking it.
        names.extend(self.encoder.feature_names("D0"))
        names.extend(self.encoder.feature_names("D1"))
        names.extend(self.encoder.feature_names("F0"))
        names.extend([
            "fanin",
            "fanout",
            "depth_ratio",
            "neighborhood_size",
            "neighborhood_xor_fraction",
            "neighborhood_nonlinear_fraction",
            "driver_xor_fraction",
            "driver_is_primary_input_fraction",
            "load_xor_fraction",
        ])
        return tuple(names)

    # ------------------------------------------------------------------
    def extract(self, gate_name: str) -> np.ndarray:
        """Return the structural feature vector of ``gate_name``.

        Raises:
            KeyError: if the gate does not exist in the netlist graph.
        """
        if gate_name not in self._graph:
            raise KeyError(f"gate {gate_name!r} not present in design graph")
        gate = self.netlist.gate(gate_name)
        neighbours = neighborhood(self._graph, gate_name, self.locality)
        members: List[Optional[str]] = [gate_name] + list(neighbours)
        while len(members) < self.locality + 1:
            members.append(None)

        blocks: List[np.ndarray] = []
        for member in members:
            if member is None:
                blocks.append(self.encoder.encode(None))
            else:
                blocks.append(self.encoder.encode(self.netlist.gate(member).gate_type))

        adjacency: List[float] = []
        for i in range(len(members)):
            for j in range(len(members)):
                if i < j:
                    adjacency.append(self._connected(members[i], members[j]))

        xor_types = (GateType.XOR, GateType.XNOR)
        nonlinear_types = (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR)
        present = [m for m in neighbours]
        n_present = len(present)
        xor_fraction = 0.0
        nonlinear_fraction = 0.0
        if n_present:
            types = [self.netlist.gate(m).gate_type for m in present]
            xor_fraction = sum(t in xor_types for t in types) / n_present
            nonlinear_fraction = sum(t in nonlinear_types for t in types) / n_present

        # Dedicated driver / load blocks (first two drivers, first load).
        drivers = list(self.netlist.fanin_gates(gate_name))
        loads = list(self.netlist.fanout_gates(gate_name))
        driver_blocks = []
        for position in range(2):
            if position < len(drivers):
                driver_blocks.append(self.encoder.encode(drivers[position].gate_type))
            else:
                driver_blocks.append(self.encoder.encode(None))
        load_block = (self.encoder.encode(loads[0].gate_type) if loads
                      else self.encoder.encode(None))
        driver_xor_fraction = 0.0
        if drivers:
            driver_xor_fraction = sum(
                d.gate_type in xor_types for d in drivers) / len(drivers)
        primary_driver_fraction = 0.0
        if gate.inputs:
            primary_driver_fraction = sum(
                net in self.netlist.primary_inputs for net in gate.inputs
            ) / len(gate.inputs)
        load_xor_fraction = 0.0
        if loads:
            load_xor_fraction = sum(
                l.gate_type in xor_types for l in loads) / len(loads)

        scalars = np.array([
            float(gate.fanin),
            float(self._fanout_counts.get(gate_name, 0)),
            float(self._levels.get(gate_name, 0)) / float(self._max_level),
            float(n_present),
            xor_fraction,
            nonlinear_fraction,
            driver_xor_fraction,
            primary_driver_fraction,
            load_xor_fraction,
        ])
        # Order must match :meth:`_build_feature_names`: neighbourhood one-hot
        # blocks, adjacency flags, driver/load blocks, then scalar features.
        vector = np.concatenate(
            blocks + [np.array(adjacency, dtype=float)]
            + driver_blocks + [load_block] + [scalars])
        if vector.shape[0] != self.n_features:
            raise RuntimeError("feature vector length mismatch (internal error)")
        return vector

    def extract_many(self, gate_names: Sequence[str]) -> np.ndarray:
        """Stack :meth:`extract` for several gates into a matrix."""
        if not gate_names:
            return np.zeros((0, self.n_features))
        return np.vstack([self.extract(name) for name in gate_names])

    def extract_all(self, maskable_only: bool = False) -> Tuple[List[str], np.ndarray]:
        """Extract features for every gate (optionally only maskable ones).

        Returns:
            ``(gate_names, feature_matrix)`` in matching order.
        """
        names = [
            gate.name for gate in self.netlist.gates
            if not gate.gate_type.is_port
            and (not maskable_only or self.netlist.library.is_maskable(gate.gate_type))
        ]
        return names, self.extract_many(names)

    # ------------------------------------------------------------------
    def _connected(self, a: Optional[str], b: Optional[str]) -> float:
        if a is None or b is None:
            return 0.0
        if self._graph.has_edge(a, b) or self._graph.has_edge(b, a):
            return 1.0
        return 0.0
