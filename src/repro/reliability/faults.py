"""Seeded, coordinate-addressed fault injection (``FaultPlan``).

A fault plan is a list of rules, each bound to a named **site** — a
labelled point in the campaign/service stack where a failure can be
injected (see :data:`FAULT_SITES`).  Whether the *k*-th evaluation of a
site fires is a pure function of ``(plan seed, site, k)``: the decision
word comes from the same Philox-4x64 engine as the counter sampler
(:func:`repro.power.ctrsample.philox_raw`), with the site hashed into the
class/group coordinates, the evaluation index as the chunk coordinate,
and a fault-framework lane separating these streams from every sampler
lane.  Two processes running the same plan therefore fail at the same
deterministic points — a chaos run is exactly as reproducible as a clean
one.

Plans are activated per process via the ``POLARIS_FAULT_PLAN``
environment variable (grammar below), via ``polaris-campaign work
--fault-plan``, or in-process with :func:`set_fault_plan`.  The legacy
``POLARIS_SHARD_DELAY`` knob is re-expressed as a plan rule
(``worker.shard: mode=delay``) so existing harnesses keep working.

Plan grammar (``;``-separated, optional leading ``seed=N``)::

    seed=42;checkpoint.write:mode=corrupt,max=1;queue.ack:mode=error,p=0.5

Each rule is ``site:key=value,key=value`` with keys ``mode`` (required),
``p`` (fire probability, default 1), ``max`` (total fires, default
unbounded), ``delay`` (seconds, for ``mode=delay``), and ``after``
(skip the first N evaluations of the site).
"""

from __future__ import annotations

import hashlib
import os
import signal
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Type

from ..power.ctrsample import philox_raw

#: Environment variable holding a plan in the grammar above.
FAULT_PLAN_ENV = "POLARIS_FAULT_PLAN"
#: Legacy knob (seconds of sleep before each shard compute); merged into
#: the active plan as a ``worker.shard`` delay rule for back-compat.
LEGACY_DELAY_ENV = "POLARIS_SHARD_DELAY"

#: Named injection sites wired through the stack.
FAULT_SITES = (
    "checkpoint.write",   # shard checkpoint publication (runner)
    "store.write",        # result-store publication (store)
    "queue.claim",        # task claim (queue) — transient OperationalError
    "queue.ack",          # task ack (queue) — transient OperationalError
    "service.send",       # client frame send (drop / delay / sever)
    "service.recv",       # client frame receive (delay / sever)
    "worker.shard",       # shard execution entry (delay / crash / error)
)

#: Supported failure modes (not every mode is meaningful at every site;
#: the site wiring documents which it honours).
FAULT_MODES = ("truncate", "corrupt", "error", "drop", "delay", "sever",
               "crash")

#: Fault-framework Philox lane ("FLT" in ASCII, shifted well clear of
#: NOISE_LANE/GAUSS_LANE/MASK_LANE_BASE + subgroup); per-rule offsets are
#: added so rules on one site draw independent decision streams.
_FAULT_LANE = 0x464C5400


def _site_coordinates(site: str) -> Tuple[int, int]:
    """(class_index, group_index) pair addressing a site's streams."""
    word = int.from_bytes(hashlib.sha256(site.encode("utf-8")).digest()[:8],
                          "little")
    return word & 0xFFFFFFFF, (word >> 32) & 0xFFFFFFFF


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: at ``site``, fail in ``mode``.

    ``p`` is the per-evaluation fire probability, ``max_count`` bounds the
    total number of fires (None = unbounded), ``delay`` is the sleep for
    ``mode="delay"``, and ``after`` skips the site's first evaluations.
    """

    site: str
    mode: str
    p: float = 1.0
    max_count: Optional[int] = None
    delay: float = 0.0
    after: int = 0

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {self.site!r}; "
                             f"expected one of {FAULT_SITES}")
        if self.mode not in FAULT_MODES:
            raise ValueError(f"unknown fault mode {self.mode!r}; "
                             f"expected one of {FAULT_MODES}")
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"fire probability must be in [0, 1], "
                             f"got {self.p}")
        if self.max_count is not None and self.max_count < 0:
            raise ValueError("max fire count must be >= 0")
        if self.delay < 0:
            raise ValueError("delay must be >= 0")
        if self.after < 0:
            raise ValueError("after must be >= 0")


class FaultPlan:
    """A seed plus fault rules, with per-site evaluation counters.

    Counters are per plan instance (i.e. per process for the env-activated
    plan), guarded by a lock so threaded workers share one deterministic
    evaluation sequence per site.
    """

    def __init__(self, seed: int = 0,
                 rules: Tuple[FaultRule, ...] = ()) -> None:
        self.seed = int(seed)
        self.rules = tuple(rules)
        self._evaluations: Dict[str, int] = {}
        self._fires: Dict[int, int] = {}
        self._lock = threading.Lock()

    # -- construction --------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``seed=N;site:k=v,...`` grammar (see module doc)."""
        seed = 0
        rules = []
        for token in text.split(";"):
            token = token.strip()
            if not token:
                continue
            if token.startswith("seed="):
                seed = int(token[len("seed="):])
                continue
            site, separator, options = token.partition(":")
            if not separator:
                raise ValueError(f"malformed fault rule {token!r}: "
                                 f"expected 'site:key=value,...'")
            fields: Dict[str, object] = {}
            for pair in options.split(","):
                pair = pair.strip()
                if not pair:
                    continue
                key, separator, value = pair.partition("=")
                if not separator:
                    raise ValueError(f"malformed option {pair!r} in fault "
                                     f"rule {token!r}")
                if key == "mode":
                    fields["mode"] = value
                elif key == "p":
                    fields["p"] = float(value)
                elif key == "max":
                    fields["max_count"] = int(value)
                elif key == "delay":
                    fields["delay"] = float(value)
                elif key == "after":
                    fields["after"] = int(value)
                else:
                    raise ValueError(f"unknown option {key!r} in fault "
                                     f"rule {token!r}")
            if "mode" not in fields:
                raise ValueError(f"fault rule {token!r} is missing "
                                 f"'mode='")
            rules.append(FaultRule(site=site.strip(), **fields))
        return cls(seed=seed, rules=tuple(rules))

    def to_text(self) -> str:
        """Round-trippable plan text in the grammar :meth:`parse` reads."""
        tokens = [f"seed={self.seed}"]
        for rule in self.rules:
            options = [f"mode={rule.mode}"]
            if rule.p < 1.0:
                options.append(f"p={rule.p}")
            if rule.max_count is not None:
                options.append(f"max={rule.max_count}")
            if rule.delay:
                options.append(f"delay={rule.delay}")
            if rule.after:
                options.append(f"after={rule.after}")
            tokens.append(f"{rule.site}:{','.join(options)}")
        return ";".join(tokens)

    # -- evaluation ----------------------------------------------------
    def _fires_at(self, rule_index: int, site: str, evaluation: int) -> bool:
        rule = self.rules[rule_index]
        if rule.p >= 1.0:
            return True
        if rule.p <= 0.0:
            return False
        class_index, group_index = _site_coordinates(site)
        word = int(philox_raw(self.seed, class_index, group_index,
                              evaluation, _FAULT_LANE + rule_index, 1)[0])
        return word < int(rule.p * 2.0 ** 64)

    def evaluate(self, site: str) -> Optional[FaultRule]:
        """Advance the site's counter; return the rule that fires, if any.

        The first matching rule (plan order) whose ``after``/``max``
        window admits this evaluation and whose decision word fires wins.
        """
        with self._lock:
            evaluation = self._evaluations.get(site, 0)
            self._evaluations[site] = evaluation + 1
            for index, rule in enumerate(self.rules):
                if rule.site != site or evaluation < rule.after:
                    continue
                fired = self._fires.get(index, 0)
                if rule.max_count is not None and fired >= rule.max_count:
                    continue
                if self._fires_at(index, site, evaluation):
                    self._fires[index] = fired + 1
                    return rule
            return None


# -- process-wide active plan ------------------------------------------
_state_lock = threading.Lock()
_override: Optional[FaultPlan] = None
_cached: Optional[FaultPlan] = None
_cached_key: Optional[Tuple[str, str]] = None


def _plan_from_env(text: str, legacy_delay: str) -> Optional[FaultPlan]:
    plan = FaultPlan.parse(text) if text else None
    try:
        delay = float(legacy_delay or 0)
    except ValueError:
        delay = 0.0
    if delay > 0:
        legacy = FaultRule(site="worker.shard", mode="delay", delay=delay)
        if plan is None:
            plan = FaultPlan(seed=0, rules=(legacy,))
        else:
            plan = FaultPlan(seed=plan.seed, rules=plan.rules + (legacy,))
    return plan


def set_fault_plan(plan: Optional[FaultPlan]) -> None:
    """Install an in-process plan override (``None`` restores env-driven
    activation)."""
    global _override
    with _state_lock:
        _override = plan


def active_plan() -> Optional[FaultPlan]:
    """The process's current plan: the override if set, else the plan
    described by ``POLARIS_FAULT_PLAN`` / ``POLARIS_SHARD_DELAY``.

    The env-derived plan is cached on the exact variable values, so its
    evaluation counters persist across calls until the environment
    changes.
    """
    global _cached, _cached_key
    with _state_lock:
        if _override is not None:
            return _override
        key = (os.environ.get(FAULT_PLAN_ENV, ""),
               os.environ.get(LEGACY_DELAY_ENV, ""))
        if key != _cached_key:
            _cached_key = key
            _cached = _plan_from_env(*key)
        return _cached


# -- site helpers (what instrumented code calls) -----------------------
def evaluate(site: str) -> Optional[FaultRule]:
    """Evaluate a site against the active plan (no side effects)."""
    plan = active_plan()
    return None if plan is None else plan.evaluate(site)


def perturb(site: str) -> Optional[FaultRule]:
    """Evaluate a site and apply process-level modes in place.

    ``delay`` sleeps here; ``crash`` SIGKILLs the current process (the
    worker-kill injection — no cleanup handlers run, exactly like the
    external kill it models).  Every other mode is returned to the caller
    to apply at its own seam.
    """
    rule = evaluate(site)
    if rule is None:
        return None
    if rule.mode == "delay":
        time.sleep(rule.delay)
    elif rule.mode == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
    return rule


def mangle(site: str, data: bytes) -> bytes:
    """Apply a byte-level fault to an outgoing payload.

    ``truncate`` drops the second half (a torn write), ``corrupt`` flips
    one middle byte (silent tampering), ``error`` raises ``OSError`` as a
    failed write.  Other modes fall through unchanged.
    """
    rule = perturb(site)
    if rule is None:
        return data
    if rule.mode == "error":
        raise OSError(f"injected fault at {site}: write failed")
    if rule.mode == "truncate":
        return data[:len(data) // 2]
    if rule.mode == "corrupt" and data:
        index = len(data) // 2
        return data[:index] + bytes([data[index] ^ 0xFF]) + data[index + 1:]
    return data


def maybe_error(site: str, exc_type: Type[BaseException],
                message: str) -> Optional[FaultRule]:
    """Evaluate a site, raising ``exc_type`` when an ``error`` rule fires
    (the transient-failure injection for queue claim/ack)."""
    rule = perturb(site)
    if rule is not None and rule.mode == "error":
        raise exc_type(f"injected fault at {site}: {message}")
    return rule
