"""Deterministic fault injection and failure-domain hardening.

The campaign/service stack claims that distributed, resumable, streaming
TVLA is *bitwise* equal to the serial oracle.  This package makes that
claim testable under failure: a seeded, coordinate-addressed
:class:`FaultPlan` injects faults at named sites (checkpoint writes,
store writes, queue claim/ack, service frame I/O, worker crash points)
with the same Philox counter discipline as ``repro.power.ctrsample`` —
so a chaos run is exactly as reproducible as a clean one.

Alongside injection live the shared hardening primitives the rest of the
stack routes through:

* :mod:`~repro.reliability.policy` — one :class:`RetryPolicy` (bounded
  exponential backoff, deterministic jitter) replacing ad-hoc retry
  loops;
* :mod:`~repro.reliability.atomic` — fsync-before-rename durable writes
  (PL007 makes them mandatory under ``src/repro/campaign`` and
  ``src/repro/service``);
* :mod:`~repro.reliability.checkpoint` — sha256-sealed shard checkpoints
  with quarantine-and-requeue instead of crash-on-corruption.

See ``docs/reliability.md`` for the fault-site table, plan grammar and
retry defaults.
"""

from .atomic import atomic_write_bytes, publish_exclusive
from .checkpoint import (
    CheckpointCorruptError,
    checkpoint_ok,
    load_checkpoint,
    quarantine_checkpoint,
    seal_checkpoint,
    unseal_checkpoint,
)
from .faults import (
    FAULT_MODES,
    FAULT_PLAN_ENV,
    FAULT_SITES,
    FaultPlan,
    FaultRule,
    active_plan,
    evaluate,
    mangle,
    maybe_error,
    perturb,
    set_fault_plan,
)
from .policy import RetryPolicy

__all__ = [
    "FAULT_MODES",
    "FAULT_PLAN_ENV",
    "FAULT_SITES",
    "CheckpointCorruptError",
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "active_plan",
    "atomic_write_bytes",
    "checkpoint_ok",
    "evaluate",
    "load_checkpoint",
    "mangle",
    "maybe_error",
    "perturb",
    "publish_exclusive",
    "quarantine_checkpoint",
    "seal_checkpoint",
    "set_fault_plan",
    "unseal_checkpoint",
]
