"""Durable atomic file publication (fsync before rename).

``os.replace`` alone is atomic against concurrent readers but not against
power loss: without an fsync of the temp file the rename can land while
the data blocks are still unwritten, leaving a torn file after a crash —
exactly the failure the checkpoint quarantine path has to absorb.  These
helpers do the full dance (write → flush → fsync → rename → directory
fsync) and are the **only** sanctioned way to write files under
``src/repro/campaign`` and ``src/repro/service`` (enforced by
polaris-lint rule PL007).

Both helpers accept an optional ``fault_site`` so the payload passes
through :func:`repro.reliability.faults.mangle` on its way to disk —
the deterministic stand-in for torn writes and silent corruption.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from . import faults


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry (best effort; not all platforms allow
    opening directories)."""
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        handle = os.open(directory, flags)
    except OSError:
        return
    try:
        os.fsync(handle)
    except OSError:
        pass
    finally:
        os.close(handle)


def atomic_write_bytes(path: Union[str, Path], data: bytes, *,
                       fault_site: Optional[str] = None) -> None:
    """Durably publish ``data`` at ``path`` (write-fsync-rename).

    Readers never observe a partial file; after return the content and
    its directory entry have been fsynced, so the publication survives a
    crash.  ``fault_site`` routes the payload through the active
    :class:`~repro.reliability.faults.FaultPlan` first.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if fault_site is not None:
        data = faults.mangle(fault_site, data)
    handle, temp_path = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(data)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except FileNotFoundError:
            pass
        raise
    _fsync_directory(path.parent)


def publish_exclusive(path: Union[str, Path], data: bytes, *,
                      fault_site: Optional[str] = None) -> bool:
    """Durably publish ``data`` at ``path`` iff no file exists (first
    writer wins, via ``os.link``); return whether this call created it.

    The content-addressed store's write discipline: concurrent writers of
    the same key race harmlessly because the loser's link fails with
    ``FileExistsError`` and the winner's bytes are already fsynced.
    """
    path = Path(path)
    if path.exists():
        return False
    path.parent.mkdir(parents=True, exist_ok=True)
    if fault_site is not None:
        data = faults.mangle(fault_site, data)
    handle, temp_path = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(data)
            stream.flush()
            os.fsync(stream.fileno())
        try:
            os.link(temp_path, path)
        except FileExistsError:
            return False
    finally:
        try:
            os.unlink(temp_path)
        except FileNotFoundError:
            pass
    _fsync_directory(path.parent)
    return True
