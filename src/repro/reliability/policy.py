"""Shared retry policy: bounded exponential backoff, deterministic jitter.

Every retry loop in the campaign/service stack (queue outcome reporting,
service-client reconnects, worker partial streaming) routes through one
:class:`RetryPolicy` so backoff behaviour is uniform, bounded, and — like
everything else in this repo — reproducible: the jitter fraction for
attempt *k* is a pure Philox function of ``(policy seed, k)``, not a
global RNG draw.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Tuple, Type, TypeVar, Union

from ..power.ctrsample import philox_raw

T = TypeVar("T")

#: Jitter lane ("JIT" shifted), disjoint from sampler and fault lanes.
_JITTER_LANE = 0x4A495400


class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    Attempt *k* (0-based) sleeps ``min(base_delay * multiplier**k,
    max_delay)`` stretched by a jitter fraction in ``[0, jitter]`` drawn
    from a Philox stream keyed by ``seed`` — two processes with the same
    policy back off identically.
    """

    def __init__(self, max_attempts: int = 3, base_delay: float = 0.05,
                 max_delay: float = 2.0, multiplier: float = 2.0,
                 jitter: float = 0.25, seed: int = 0) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be >= 0")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if jitter < 0:
            raise ValueError("jitter must be >= 0")
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self.multiplier = float(multiplier)
        self.jitter = float(jitter)
        self.seed = int(seed)

    def delay(self, attempt: int) -> float:
        """Backoff before retrying after failed attempt ``attempt``."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        base = min(self.base_delay * self.multiplier ** attempt,
                   self.max_delay)
        if self.jitter == 0 or base == 0:
            return base
        word = int(philox_raw(self.seed, 0, 0, attempt, _JITTER_LANE, 1)[0])
        return base * (1.0 + self.jitter * (word / 2.0 ** 64))

    def call(self, fn: Callable[[], T], *,
             retry_on: Union[Type[BaseException],
                             Tuple[Type[BaseException], ...]],
             sleep: Callable[[float], None] = time.sleep,
             on_retry: Optional[Callable[[int, BaseException],
                                         None]] = None,
             reraise: bool = True) -> Optional[T]:
        """Call ``fn`` up to ``max_attempts`` times, retrying ``retry_on``.

        ``on_retry(attempt, error)`` fires after every failed attempt
        (including the last) — use it to re-establish state, e.g. a
        reconnect, before the next try.  With ``reraise=False`` the final
        failure is swallowed and ``None`` returned, preserving
        best-effort semantics for observational paths.
        """
        last: Optional[BaseException] = None
        for attempt in range(self.max_attempts):
            try:
                return fn()
            except retry_on as error:
                last = error
                if on_retry is not None:
                    on_retry(attempt, error)
                if attempt + 1 < self.max_attempts:
                    sleep(self.delay(attempt))
        if reraise and last is not None:
            raise last
        return None
