"""Sha256-sealed shard checkpoints with quarantine instead of crash.

A shard checkpoint (``shards/shard_NNNN.moments``) used to be raw packed
moments; a truncated or tampered file crashed the merge with a bare
``ValueError`` and wedged the campaign.  Sealed checkpoints append a
fixed trailer — an 8-byte magic plus the sha256 of the payload — so
corruption is *detected* at read time and handled by policy: the file is
renamed aside (``.corrupt``) and the shard requeued, never silently
merged and never fatal.

Unsealed files whose payload starts with a known shard-moments magic
(``SHM1``/``SHM2``) are still accepted, so checkpoints written before
sealing existed remain readable mid-campaign.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Union

#: Trailer magic; the version byte bumps if the digest scheme changes.
TRAILER_MAGIC = b"SHSEAL\x01\n"
_DIGEST_LEN = 32
_TRAILER_LEN = len(TRAILER_MAGIC) + _DIGEST_LEN

#: Payload magics of the two packed shard-moments formats (PR 4/PR 6) —
#: the legacy-acceptance allowlist for unsealed checkpoints.
_PAYLOAD_MAGICS = (b"SHM1", b"SHM2")


class CheckpointCorruptError(ValueError):
    """A checkpoint failed its integrity check (bad digest, foreign
    bytes, or truncation)."""


def seal_checkpoint(payload: bytes) -> bytes:
    """Packed payload + integrity trailer, ready for durable publication."""
    return payload + TRAILER_MAGIC + hashlib.sha256(payload).digest()


def unseal_checkpoint(data: bytes) -> bytes:
    """Verify a checkpoint file's bytes and return the packed payload.

    Raises :class:`CheckpointCorruptError` on digest mismatch or
    unrecognised bytes.  A truncated *sealed* file loses its trailer and
    is caught either here (foreign bytes) or downstream when the payload
    itself fails to unpack — callers treat both as corruption.
    """
    if len(data) >= _TRAILER_LEN \
            and data[-_TRAILER_LEN:-_DIGEST_LEN] == TRAILER_MAGIC:
        payload, digest = data[:-_TRAILER_LEN], data[-_DIGEST_LEN:]
        if hashlib.sha256(payload).digest() != digest:
            raise CheckpointCorruptError(
                "checkpoint digest mismatch: file was truncated or "
                "tampered with after sealing")
        return payload
    if data[:4] in _PAYLOAD_MAGICS:
        return data  # legacy pre-seal checkpoint
    raise CheckpointCorruptError(
        "checkpoint carries neither a valid seal trailer nor a known "
        "shard-moments magic")


def load_checkpoint(path: Union[str, Path]) -> bytes:
    """Read and verify a checkpoint, returning the packed payload.

    Raises ``FileNotFoundError`` when absent and
    :class:`CheckpointCorruptError` when the bytes fail verification.
    """
    return unseal_checkpoint(Path(path).read_bytes())


def checkpoint_ok(path: Union[str, Path]) -> bool:
    """Whether ``path`` holds a checkpoint that passes verification."""
    try:
        load_checkpoint(path)
    except (FileNotFoundError, CheckpointCorruptError):
        return False
    return True


def quarantine_checkpoint(path: Union[str, Path]) -> Path:
    """Atomically rename a bad checkpoint aside and return its new path.

    The quarantined file keeps its bytes for post-mortem (``.corrupt``,
    then ``.corrupt1`` … if a shard is corrupted repeatedly); the original
    name is freed so the requeued shard can republish cleanly.
    """
    path = Path(path)
    target = path.with_name(path.name + ".corrupt")
    suffix = 0
    while target.exists():
        suffix += 1
        target = path.with_name(f"{path.name}.corrupt{suffix}")
    os.replace(path, target)
    return target
