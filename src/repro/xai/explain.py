"""Explanation containers: per-sample SHAP attributions and summaries.

The SHAP explainers (:mod:`repro.xai.kernel_shap`, :mod:`repro.xai.tree_shap`)
return :class:`Explanation` objects.  An explanation holds the base value
``E[f(x)]``, the per-feature Shapley values ``phi_f`` and the feature values
of the explained sample — enough to reproduce the waterfall plots of the
paper's Fig. 3 (in text form) and the global feature-importance summaries
used for rule extraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class Explanation:
    """SHAP attribution for one prediction.

    Attributes:
        base_value: Expected model output over the background data
            (``E[f(x)]`` in the waterfall plots).
        shap_values: Per-feature Shapley values ``phi_f``.
        data: Feature values of the explained sample.
        feature_names: Column names aligned with ``shap_values``.
        prediction: The model output ``f(x)`` for the sample.
    """

    base_value: float
    shap_values: np.ndarray
    data: np.ndarray
    feature_names: Tuple[str, ...]
    prediction: float

    def __post_init__(self) -> None:
        self.shap_values = np.asarray(self.shap_values, dtype=float)
        self.data = np.asarray(self.data, dtype=float)
        self.feature_names = tuple(self.feature_names)
        if self.shap_values.shape != self.data.shape:
            raise ValueError("shap_values and data must have the same shape")
        if len(self.feature_names) != self.shap_values.shape[0]:
            raise ValueError("feature_names must match the number of features")

    # ------------------------------------------------------------------
    @property
    def additivity_gap(self) -> float:
        """|f(x) - (base + sum(phi))| — 0 for exact explainers."""
        return float(abs(self.prediction - (self.base_value + self.shap_values.sum())))

    def top_features(self, count: int = 10) -> List[Tuple[str, float, float]]:
        """The ``count`` features with the largest |phi|.

        Returns:
            List of ``(feature_name, shap_value, feature_value)`` sorted by
            decreasing absolute contribution.
        """
        order = np.argsort(-np.abs(self.shap_values))
        result = []
        for index in order[:count]:
            result.append((self.feature_names[index],
                           float(self.shap_values[index]),
                           float(self.data[index])))
        return result

    def waterfall(self, max_features: int = 10) -> "Waterfall":
        """Build the waterfall decomposition shown in the paper's Fig. 3."""
        order = np.argsort(-np.abs(self.shap_values))
        shown = order[:max_features]
        rest = order[max_features:]
        steps: List[WaterfallStep] = []
        running = self.base_value
        for index in shown:
            contribution = float(self.shap_values[index])
            steps.append(WaterfallStep(
                feature=self.feature_names[index],
                feature_value=float(self.data[index]),
                contribution=contribution,
                cumulative=running + contribution,
            ))
            running += contribution
        other = float(self.shap_values[rest].sum()) if rest.size else 0.0
        return Waterfall(
            base_value=self.base_value,
            prediction=self.prediction,
            steps=steps,
            other_contribution=other,
        )


@dataclass(frozen=True)
class WaterfallStep:
    """One bar of a waterfall plot."""

    feature: str
    feature_value: float
    contribution: float
    cumulative: float


@dataclass
class Waterfall:
    """Text-mode waterfall plot (paper Fig. 3).

    Attributes:
        base_value: ``E[f(x)]``, where the plot starts.
        prediction: ``f(x)``, where the plot ends.
        steps: The per-feature bars, largest |contribution| first.
        other_contribution: Sum of the contributions not shown individually.
    """

    base_value: float
    prediction: float
    steps: List[WaterfallStep]
    other_contribution: float

    def render(self, width: int = 40) -> str:
        """Render an ASCII waterfall, one line per feature."""
        lines = [f"E[f(x)] = {self.base_value:+.4f}"]
        max_abs = max((abs(s.contribution) for s in self.steps), default=1.0)
        max_abs = max(max_abs, abs(self.other_contribution), 1e-12)
        for step in self.steps:
            bar_length = int(round(abs(step.contribution) / max_abs * width))
            bar = ("+" if step.contribution >= 0 else "-") * max(1, bar_length)
            lines.append(
                f"  {step.feature:<36s} = {step.feature_value:>6.2f} "
                f"| {step.contribution:+.4f} {bar}"
            )
        if abs(self.other_contribution) > 0:
            lines.append(f"  {'(other features)':<36s} "
                         f"         | {self.other_contribution:+.4f}")
        lines.append(f"f(x) = {self.prediction:+.4f}")
        return "\n".join(lines)


@dataclass
class GlobalImportance:
    """Mean-|SHAP| global feature importance over a set of explanations."""

    feature_names: Tuple[str, ...]
    mean_abs_shap: np.ndarray

    def ranked(self, count: Optional[int] = None) -> List[Tuple[str, float]]:
        """Features sorted by decreasing importance."""
        order = np.argsort(-self.mean_abs_shap)
        if count is not None:
            order = order[:count]
        return [(self.feature_names[i], float(self.mean_abs_shap[i])) for i in order]


def summarize_explanations(explanations: Sequence[Explanation]) -> GlobalImportance:
    """Aggregate per-sample explanations into global feature importance.

    Raises:
        ValueError: if the explanations disagree on feature names or the
            sequence is empty.
    """
    if not explanations:
        raise ValueError("at least one explanation is required")
    names = explanations[0].feature_names
    for explanation in explanations[1:]:
        if explanation.feature_names != names:
            raise ValueError("explanations have mismatched feature names")
    stacked = np.vstack([e.shap_values for e in explanations])
    return GlobalImportance(names, np.abs(stacked).mean(axis=0))
