"""Kernel SHAP: model-agnostic Shapley value estimation.

Kernel SHAP (Lundberg & Lee, 2017) estimates the Shapley values of Eq. (6)
of the paper by solving a weighted linear regression over sampled feature
coalitions: a coalition ``z`` keeps the explained sample's value for the
features it contains and fills the remaining features from a background
dataset; the Shapley kernel ``(M-1) / (C(M,|z|) |z| (M-|z|))`` weights each
coalition so the regression coefficients converge to the Shapley values.

This implementation enumerates all coalitions exactly when the number of
features is small and falls back to paired (antithetic) sampling otherwise,
always including the empty and full coalitions so the efficiency property
``sum(phi) = f(x) - E[f]`` holds by construction.
"""

from __future__ import annotations

from math import comb
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .explain import Explanation

ModelFunction = Callable[[np.ndarray], np.ndarray]


class KernelShapExplainer:
    """Model-agnostic SHAP explainer.

    Args:
        model_fn: Callable mapping a feature matrix to a 1-D output vector
            (e.g. ``model.positive_score``).
        background: Background dataset used to marginalise absent features;
            a representative sample of the training data.
        feature_names: Column names (generated if omitted).
        n_coalitions: Coalition budget when exact enumeration is infeasible.
        max_exact_features: Enumerate all ``2^M`` coalitions when the number
            of features is at most this.
        l2_penalty: Ridge regulariser for the weighted regression.
        seed: RNG seed for coalition sampling.
    """

    def __init__(
        self,
        model_fn: ModelFunction,
        background: np.ndarray,
        feature_names: Optional[Sequence[str]] = None,
        n_coalitions: int = 2048,
        max_exact_features: int = 13,
        l2_penalty: float = 1e-6,
        seed: int = 0,
    ) -> None:
        self.model_fn = model_fn
        self.background = np.asarray(background, dtype=float)
        if self.background.ndim != 2 or self.background.shape[0] == 0:
            raise ValueError("background must be a non-empty 2-D matrix")
        self.n_features = self.background.shape[1]
        if feature_names is None:
            feature_names = [f"f{i}" for i in range(self.n_features)]
        if len(feature_names) != self.n_features:
            raise ValueError("feature_names must match background columns")
        self.feature_names = tuple(feature_names)
        self.n_coalitions = n_coalitions
        self.max_exact_features = max_exact_features
        self.l2_penalty = l2_penalty
        self.seed = seed
        self._base_value = float(np.mean(self.model_fn(self.background)))

    # ------------------------------------------------------------------
    @property
    def base_value(self) -> float:
        """Expected model output over the background data."""
        return self._base_value

    def explain(self, sample: np.ndarray) -> Explanation:
        """Compute SHAP values for one sample."""
        sample = np.asarray(sample, dtype=float).ravel()
        if sample.shape[0] != self.n_features:
            raise ValueError("sample length does not match the background")
        prediction = float(np.mean(self.model_fn(sample.reshape(1, -1))))

        coalitions, weights = self._build_coalitions()
        values = self._coalition_values(sample, coalitions)
        phi = self._solve(coalitions, weights, values, prediction)
        return Explanation(
            base_value=self._base_value,
            shap_values=phi,
            data=sample,
            feature_names=self.feature_names,
            prediction=prediction,
        )

    def explain_matrix(self, samples: np.ndarray) -> List[Explanation]:
        """Explain every row of ``samples``."""
        samples = np.asarray(samples, dtype=float)
        if samples.ndim == 1:
            samples = samples.reshape(1, -1)
        return [self.explain(row) for row in samples]

    # ------------------------------------------------------------------
    def _build_coalitions(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the (coalition matrix, kernel weights) design."""
        m = self.n_features
        if m <= self.max_exact_features:
            coalitions = np.array(
                [[(index >> bit) & 1 for bit in range(m)]
                 for index in range(2 ** m)], dtype=float)
        else:
            rng = np.random.default_rng(self.seed)
            budget = max(4, self.n_coalitions)
            rows = [np.zeros(m), np.ones(m)]
            # Paired sampling: for each sampled subset also add its complement,
            # which halves the variance of the estimate.
            sizes = np.arange(1, m)
            size_weights = (m - 1) / (sizes * (m - sizes))
            size_weights = size_weights / size_weights.sum()
            while len(rows) < budget:
                size = int(rng.choice(sizes, p=size_weights))
                members = rng.choice(m, size=size, replace=False)
                row = np.zeros(m)
                row[members] = 1.0
                rows.append(row)
                rows.append(1.0 - row)
            coalitions = np.unique(np.array(rows[:budget]), axis=0)

        weights = np.array([self._kernel_weight(int(row.sum())) for row in coalitions])
        return coalitions, weights

    def _kernel_weight(self, size: int) -> float:
        m = self.n_features
        if size == 0 or size == m:
            # The constraints f(empty) and f(full) are enforced with a large
            # but finite weight, which is the standard Kernel SHAP trick.
            return 1e6
        return (m - 1) / (comb(m, size) * size * (m - size))

    def _coalition_values(self, sample: np.ndarray,
                          coalitions: np.ndarray) -> np.ndarray:
        """Model output for every coalition, averaged over the background."""
        n_background = self.background.shape[0]
        values = np.zeros(coalitions.shape[0])
        for index, coalition in enumerate(coalitions):
            mask = coalition.astype(bool)
            synthetic = self.background.copy()
            synthetic[:, mask] = sample[mask]
            values[index] = float(np.mean(self.model_fn(synthetic)))
        return values

    def _solve(self, coalitions: np.ndarray, weights: np.ndarray,
               values: np.ndarray, prediction: float) -> np.ndarray:
        """Weighted ridge regression for phi with the efficiency constraint."""
        m = self.n_features
        # Regress (value - base) on the coalition indicators without intercept;
        # enforcing efficiency by eliminating the last coefficient:
        #   phi_last = (f(x) - base) - sum(other phi)
        target = values - self._base_value
        full_gap = prediction - self._base_value
        design = coalitions[:, :-1] - coalitions[:, -1:]
        adjusted = target - coalitions[:, -1] * full_gap
        w_matrix = weights[:, None]
        gram = design.T @ (w_matrix * design) + self.l2_penalty * np.eye(m - 1)
        rhs = design.T @ (weights * adjusted)
        try:
            phi_partial = np.linalg.solve(gram, rhs)
        except np.linalg.LinAlgError:
            phi_partial = np.linalg.lstsq(gram, rhs, rcond=None)[0]
        phi = np.zeros(m)
        phi[:-1] = phi_partial
        phi[-1] = full_gap - phi_partial.sum()
        return phi
