"""Explainable-AI substrate: SHAP explainers, explanations and rules."""

from .explain import (
    Explanation,
    GlobalImportance,
    Waterfall,
    WaterfallStep,
    summarize_explanations,
)
from .kernel_shap import KernelShapExplainer
from .tree_shap import TreeShapExplainer
from .rules import MaskingRule, RuleCondition, RuleExtractor, RuleSet

__all__ = [
    "Explanation",
    "GlobalImportance",
    "Waterfall",
    "WaterfallStep",
    "summarize_explanations",
    "KernelShapExplainer",
    "TreeShapExplainer",
    "MaskingRule",
    "RuleCondition",
    "RuleExtractor",
    "RuleSet",
]
