"""Tree SHAP: Shapley values for the tree ensembles of :mod:`repro.ml`.

The paper highlights SHAP's model-specific Tree SHAP variant as one reason
for choosing SHAP over LIME/Captum.  This implementation computes exact
Shapley values per tree under the *path-dependent* value function used by
Tree SHAP: the value of a feature coalition ``S`` is the expectation of the
tree output when features in ``S`` follow the explained sample and all other
split decisions are marginalised according to the training cover of each
branch.  Shapley values of an ensemble are the sum of the per-tree values
(linearity).

Exactness is achieved by enumerating coalitions over only the features a
tree actually splits on (for POLARIS's shallow AdaBoost learners that is at
most a handful per tree); when a single tree uses more features than
``max_exact_features`` the explainer falls back to an unbiased permutation-
sampling estimate for that tree.
"""

from __future__ import annotations

from itertools import combinations
from math import factorial
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ml.adaboost import AdaBoostClassifier
from ..ml.forest import RandomForestClassifier
from ..ml.gradient_boosting import GradientBoostingClassifier
from ..ml.tree import DecisionTreeClassifier, DecisionTreeRegressor, TreeNode
from .explain import Explanation


class _WeightedTree:
    """A single tree plus its weight and output convention.

    Alongside the :class:`TreeNode` list (walked by the per-sample
    :meth:`expectation` oracle) the constructor flattens the tree into
    parallel node arrays — feature/threshold/children/cover plus the
    scalar output per node in the explainer's output convention — which
    :meth:`expectation_batch` sweeps bottom-up for a whole sample matrix
    at once.  Node indices are topologically ordered (children after
    parents), so one reverse pass visits every child before its parent.
    """

    def __init__(self, nodes: Sequence[TreeNode], weight: float,
                 output_index: Optional[int]) -> None:
        self.nodes = list(nodes)
        self.weight = weight
        #: Column of the node value used as output (class-probability index
        #: for classification trees, ``None`` for scalar regression values).
        self.output_index = output_index
        self.feature = np.array([node.feature for node in self.nodes],
                                dtype=np.intp)
        self.threshold = np.array([node.threshold for node in self.nodes],
                                  dtype=float)
        self.left = np.array([node.left for node in self.nodes], dtype=np.intp)
        self.right = np.array([node.right for node in self.nodes], dtype=np.intp)
        self.cover = np.array([node.cover for node in self.nodes], dtype=float)
        self.output = np.array([self.node_output(node) for node in self.nodes],
                               dtype=float)

    def node_output(self, node: TreeNode) -> float:
        if self.output_index is None:
            return float(node.value[0])
        if self.output_index >= node.value.shape[0]:
            return 0.0
        return float(node.value[self.output_index])

    def used_features(self) -> Tuple[int, ...]:
        return tuple(sorted({node.feature for node in self.nodes
                             if not node.is_leaf}))

    def expectation(self, sample: np.ndarray, known: frozenset) -> float:
        """E[tree(x)] when features in ``known`` follow ``sample``.

        Unknown split features are marginalised with the per-branch training
        cover, which is the path-dependent Tree SHAP convention.  This is
        the per-sample oracle for :meth:`expectation_batch` (oracle pair
        ``tree-shap-expectation``, polaris-lint PL002).
        """
        def recurse(index: int) -> float:
            node = self.nodes[index]
            if node.is_leaf:
                return self.node_output(node)
            if node.feature in known:
                if sample[node.feature] <= node.threshold:
                    return recurse(node.left)
                return recurse(node.right)
            left = self.nodes[node.left]
            right = self.nodes[node.right]
            total = left.cover + right.cover
            if total <= 0:
                return 0.5 * (recurse(node.left) + recurse(node.right))
            return (left.cover / total * recurse(node.left)
                    + right.cover / total * recurse(node.right))

        return recurse(0)

    def expectation_batch(self, samples: np.ndarray,
                          known: frozenset) -> np.ndarray:
        """Vectorised :meth:`expectation` for every row of ``samples``.

        One bottom-up pass over the flat node arrays: each node's
        conditional expectation is an ``(n_samples,)`` vector computed from
        its children's vectors with exactly the oracle's arithmetic (same
        cover ratios, same operation order), so the result is bit-identical
        per row.
        """
        n_nodes = len(self.nodes)
        values = np.empty((n_nodes, samples.shape[0]))
        for index in range(n_nodes - 1, -1, -1):
            feature = self.feature[index]
            if feature < 0:
                values[index] = self.output[index]
                continue
            left = self.left[index]
            right = self.right[index]
            if feature in known:
                go_left = samples[:, feature] <= self.threshold[index]
                values[index] = np.where(go_left, values[left], values[right])
                continue
            total = self.cover[left] + self.cover[right]
            if total <= 0:
                values[index] = 0.5 * (values[left] + values[right])
            else:
                values[index] = (self.cover[left] / total * values[left]
                                 + self.cover[right] / total * values[right])
        return values[0]


def _extract_trees(model: object, positive_class: int = 1) -> Tuple[List[_WeightedTree], float, str]:
    """Pull (tree, weight) pairs out of a supported ensemble.

    Returns:
        ``(trees, offset, link)`` where ``offset`` is an additive constant
        (e.g. the boosting initial score) and ``link`` names the output
        space (``"probability"`` or ``"logit"``).
    """
    trees: List[_WeightedTree] = []
    if isinstance(model, DecisionTreeClassifier):
        column = _class_column(model, positive_class)
        trees.append(_WeightedTree(model.tree_.nodes, 1.0, column))
        return trees, 0.0, "probability"
    if isinstance(model, DecisionTreeRegressor):
        trees.append(_WeightedTree(model.tree_.nodes, 1.0, None))
        return trees, 0.0, "identity"
    if isinstance(model, RandomForestClassifier):
        weight = 1.0 / len(model.estimators_)
        for tree in model.estimators_:
            trees.append(_WeightedTree(tree.tree_.nodes, weight,
                                       _class_column(tree, positive_class)))
        return trees, 0.0, "probability"
    if isinstance(model, AdaBoostClassifier):
        # AdaBoost's probability is the normalised weighted *hard* vote, so
        # each weak learner is converted to a 0/1-valued tree; the weighted
        # sum of those trees then equals ``predict_proba`` exactly.
        total_alpha = float(sum(model.estimator_weights_)) or 1.0
        for tree, alpha in zip(model.estimators_, model.estimator_weights_):
            column = _class_column(tree, positive_class)
            hardened = [
                TreeNode(
                    feature=node.feature, threshold=node.threshold,
                    left=node.left, right=node.right,
                    value=np.array([1.0 if int(np.argmax(node.value)) == column
                                    else 0.0]),
                    cover=node.cover, impurity=node.impurity, depth=node.depth,
                )
                for node in tree.tree_.nodes
            ]
            trees.append(_WeightedTree(hardened, alpha / total_alpha, None))
        return trees, 0.0, "probability"
    if isinstance(model, GradientBoostingClassifier):
        for tree in model.estimators_:
            trees.append(_WeightedTree(tree.tree_.nodes, model.learning_rate, None))
        return trees, model.initial_score_, "logit"
    raise TypeError(f"unsupported model type {type(model).__name__} for Tree SHAP")


def _class_column(tree: DecisionTreeClassifier, positive_class: int) -> int:
    classes = list(tree.classes_)
    if positive_class in classes:
        return classes.index(positive_class)
    return len(classes) - 1


class TreeShapExplainer:
    """Shapley-value explainer for the tree models of :mod:`repro.ml`.

    The explained quantity is the model's positive-class score in its
    natural output space: probabilities for AdaBoost / Random Forest /
    single trees, raw log-odds for gradient boosting (where probabilities
    are not additive across trees).

    Args:
        model: A fitted tree-based model.
        feature_names: Column names for the explanations.
        max_exact_features: Per-tree limit on exact coalition enumeration.
        n_permutations: Sampling budget for trees exceeding the exact limit.
        positive_class: Label treated as the positive class.
        seed: RNG seed for the sampling fallback.
    """

    def __init__(self, model: object,
                 feature_names: Optional[Sequence[str]] = None,
                 max_exact_features: int = 12,
                 n_permutations: int = 128,
                 positive_class: int = 1,
                 seed: int = 0) -> None:
        self.model = model
        self.max_exact_features = max_exact_features
        self.n_permutations = n_permutations
        self.seed = seed
        self._trees, self._offset, self.link = _extract_trees(model, positive_class)
        if not self._trees:
            raise ValueError("model has no fitted trees to explain")
        self._n_features = self._infer_n_features()
        if feature_names is None:
            feature_names = [f"f{i}" for i in range(self._n_features)]
        if len(feature_names) != self._n_features:
            raise ValueError("feature_names length does not match the model")
        self.feature_names = tuple(feature_names)
        self._base_value = self._compute_base_value()

    # ------------------------------------------------------------------
    @property
    def base_value(self) -> float:
        """Expected model output (cover-weighted root expectation)."""
        return self._base_value

    def _infer_n_features(self) -> int:
        model = self.model
        for attribute in ("n_features_",):
            if hasattr(model, attribute) and getattr(model, attribute):
                return int(getattr(model, attribute))
        if hasattr(model, "estimators_") and model.estimators_:
            return int(model.estimators_[0].n_features_)
        raise ValueError("cannot determine the model's feature count")

    def _compute_base_value(self) -> float:
        total = self._offset
        empty = frozenset()
        dummy = np.zeros(self._n_features)
        for tree in self._trees:
            total += tree.weight * tree.expectation(dummy, empty)
        return float(total)

    # ------------------------------------------------------------------
    def explain(self, sample: np.ndarray) -> Explanation:
        """Compute Shapley values for one sample.

        Per-sample oracle for :meth:`explain_matrix` (oracle pair
        ``tree-shap-explain``, polaris-lint PL002): the batched path must
        reproduce this method bit-for-bit on every row.
        """
        sample = np.asarray(sample, dtype=float).ravel()
        if sample.shape[0] != self._n_features:
            raise ValueError("sample length does not match the model")
        phi = np.zeros(self._n_features)
        for tree in self._trees:
            phi += tree.weight * self._tree_shapley(tree, sample)
        prediction = self._predict_output(sample)
        return Explanation(
            base_value=self._base_value,
            shap_values=phi,
            data=sample,
            feature_names=self.feature_names,
            prediction=prediction,
        )

    def explain_matrix(self, samples: np.ndarray) -> List[Explanation]:
        """Explain every row of ``samples`` in one batched pass.

        Coalition expectations are evaluated once per (tree, coalition)
        for the whole matrix via :meth:`_WeightedTree.expectation_batch`
        instead of once per row, which collapses the dominant cost of
        explaining a gate-feature matrix.  Results are bit-identical to
        calling :meth:`explain` row by row.
        """
        samples = np.asarray(samples, dtype=float)
        if samples.ndim == 1:
            samples = samples.reshape(1, -1)
        if samples.shape[1] != self._n_features:
            raise ValueError("sample length does not match the model")
        phi = np.zeros((samples.shape[0], self._n_features))
        for tree in self._trees:
            phi += tree.weight * self._tree_shapley_batch(tree, samples)
        predictions = self._predict_output_batch(samples)
        return [
            Explanation(
                base_value=self._base_value,
                shap_values=phi[index],
                data=samples[index],
                feature_names=self.feature_names,
                prediction=float(predictions[index]),
            )
            for index in range(samples.shape[0])
        ]

    def _predict_output(self, sample: np.ndarray) -> float:
        """Model output in the explainer's output space."""
        row = sample.reshape(1, -1)
        if self.link == "logit":
            return float(self.model.decision_function(row)[0])
        if self.link == "identity":
            return float(self.model.predict(row)[0])
        total = self._offset
        known = frozenset(range(self._n_features))
        for tree in self._trees:
            total += tree.weight * tree.expectation(sample, known)
        return float(total)

    def _predict_output_batch(self, samples: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`_predict_output` for every row of ``samples``."""
        if self.link == "logit":
            return np.asarray(self.model.decision_function(samples), dtype=float)
        if self.link == "identity":
            return np.asarray(self.model.predict(samples), dtype=float)
        total = np.full(samples.shape[0], self._offset)
        known = frozenset(range(self._n_features))
        for tree in self._trees:
            total += tree.weight * tree.expectation_batch(samples, known)
        return total

    # ------------------------------------------------------------------
    def _tree_shapley(self, tree: _WeightedTree, sample: np.ndarray) -> np.ndarray:
        used = tree.used_features()
        phi = np.zeros(self._n_features)
        if not used:
            return phi
        if len(used) <= self.max_exact_features:
            contributions = self._exact_shapley(tree, sample, used)
        else:
            contributions = self._sampled_shapley(tree, sample, used)
        for feature, value in contributions.items():
            phi[feature] = value
        return phi

    def _exact_shapley(self, tree: _WeightedTree, sample: np.ndarray,
                       used: Tuple[int, ...]) -> Dict[int, float]:
        n_used = len(used)
        cache: Dict[frozenset, float] = {}

        def value(subset: frozenset) -> float:
            if subset not in cache:
                cache[subset] = tree.expectation(sample, subset)
            return cache[subset]

        contributions = {feature: 0.0 for feature in used}
        others: Dict[int, Tuple[int, ...]] = {
            feature: tuple(f for f in used if f != feature) for feature in used
        }
        factorials = [factorial(k) for k in range(n_used + 1)]
        denominator = factorials[n_used]
        for feature in used:
            for size in range(n_used):
                weight = factorials[size] * factorials[n_used - size - 1] / denominator
                for subset in combinations(others[feature], size):
                    base = frozenset(subset)
                    contributions[feature] += weight * (
                        value(base | {feature}) - value(base))
        return contributions

    def _sampled_shapley(self, tree: _WeightedTree, sample: np.ndarray,
                         used: Tuple[int, ...]) -> Dict[int, float]:
        rng = np.random.default_rng(self.seed)
        contributions = {feature: 0.0 for feature in used}
        used_array = np.array(used)
        for _ in range(self.n_permutations):
            order = rng.permutation(used_array)
            current: frozenset = frozenset()
            previous_value = tree.expectation(sample, current)
            for feature in order:
                current = current | {int(feature)}
                new_value = tree.expectation(sample, current)
                contributions[int(feature)] += new_value - previous_value
                previous_value = new_value
        for feature in used:
            contributions[feature] /= self.n_permutations
        return contributions

    # ------------------------------------------------------------------
    def _tree_shapley_batch(self, tree: _WeightedTree,
                            samples: np.ndarray) -> np.ndarray:
        """Batched :meth:`_tree_shapley`: one ``(n_samples, n_features)``
        matrix with the same per-row values."""
        used = tree.used_features()
        phi = np.zeros((samples.shape[0], self._n_features))
        if not used:
            return phi
        if len(used) <= self.max_exact_features:
            contributions = self._exact_shapley_batch(tree, samples, used)
        else:
            contributions = self._sampled_shapley_batch(tree, samples, used)
        for feature, values in contributions.items():
            phi[:, feature] = values
        return phi

    def _exact_shapley_batch(self, tree: _WeightedTree, samples: np.ndarray,
                             used: Tuple[int, ...]) -> Dict[int, np.ndarray]:
        """:meth:`_exact_shapley` over a sample matrix.

        Mirrors the scalar loops exactly — same subset iteration order,
        same factorial weights, same coalition cache keyed by frozenset —
        with each cached expectation an ``(n_samples,)`` vector.
        """
        n_used = len(used)
        cache: Dict[frozenset, np.ndarray] = {}

        def value(subset: frozenset) -> np.ndarray:
            if subset not in cache:
                cache[subset] = tree.expectation_batch(samples, subset)
            return cache[subset]

        contributions = {feature: np.zeros(samples.shape[0]) for feature in used}
        others: Dict[int, Tuple[int, ...]] = {
            feature: tuple(f for f in used if f != feature) for feature in used
        }
        factorials = [factorial(k) for k in range(n_used + 1)]
        denominator = factorials[n_used]
        for feature in used:
            for size in range(n_used):
                weight = factorials[size] * factorials[n_used - size - 1] / denominator
                for subset in combinations(others[feature], size):
                    base = frozenset(subset)
                    contributions[feature] += weight * (
                        value(base | {feature}) - value(base))
        return contributions

    def _sampled_shapley_batch(self, tree: _WeightedTree, samples: np.ndarray,
                               used: Tuple[int, ...]) -> Dict[int, np.ndarray]:
        """:meth:`_sampled_shapley` over a sample matrix.

        The scalar path seeds a fresh ``default_rng(self.seed)`` per tree
        per sample, so every row sees the same permutation sequence; one
        generator drawn here once per tree therefore reproduces each row's
        estimate bit-for-bit.
        """
        rng = np.random.default_rng(self.seed)
        contributions = {feature: np.zeros(samples.shape[0]) for feature in used}
        used_array = np.array(used)
        for _ in range(self.n_permutations):
            order = rng.permutation(used_array)
            current: frozenset = frozenset()
            previous_value = tree.expectation_batch(samples, current)
            for feature in order:
                current = current | {int(feature)}
                new_value = tree.expectation_batch(samples, current)
                contributions[int(feature)] += new_value - previous_value
                previous_value = new_value
        for feature in used:
            contributions[feature] /= self.n_permutations
        return contributions
