"""SHAP-guided extraction of human-readable masking rules (paper Table V).

The paper turns the trained model's SHAP explanations into rules of the form

    "As long as G4 = NAND && G5 = AND && G4 and G5 are not connected ...
     -> Select & Replace with masking gate"

This module reproduces that step.  For a set of explained samples, the
features with the largest positive (or negative) SHAP contributions are
converted into readable conditions using the structural feature naming
convention (``G0=NAND`` one-hots, ``G2-G3 connected`` adjacency flags, and
numeric thresholds for the scalar features).  Frequent condition
combinations are aggregated into :class:`MaskingRule` objects; the resulting
:class:`RuleSet` can be used on its own as a lightweight classifier ("rules
only"), or alongside the model ("model + rules") as described in §IV-B.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .explain import Explanation


@dataclass(frozen=True)
class RuleCondition:
    """One atomic condition of a rule.

    Attributes:
        feature: Feature column name the condition refers to.
        operator: One of ``"=="``, ``"!="``, ``"<="`` or ``">"``.
        value: Comparison constant.
    """

    feature: str
    operator: str
    value: float

    def evaluate(self, feature_value: float) -> bool:
        """Whether ``feature_value`` satisfies the condition."""
        if self.operator == "==":
            return bool(np.isclose(feature_value, self.value))
        if self.operator == "!=":
            return not bool(np.isclose(feature_value, self.value))
        if self.operator == "<=":
            return bool(feature_value <= self.value)
        if self.operator == ">":
            return bool(feature_value > self.value)
        raise ValueError(f"unknown operator {self.operator!r}")

    def describe(self) -> str:
        """Human-readable text for the condition (Table V style)."""
        name = self.feature
        if "=" in name and self.operator in ("==", "!="):
            gate, gate_type = name.split("=", 1)
            if self.operator == "==" and self.value >= 0.5:
                return f"{gate} = {gate_type}"
            return f"{gate} != {gate_type}"
        if name.endswith("connected") and self.operator in ("==", "!="):
            pair = name.replace(" connected", "")
            if self.operator == "==" and self.value >= 0.5:
                return f"{pair} are connected"
            return f"{pair} are not connected"
        return f"{name} {self.operator} {self.value:.3g}"


@dataclass
class MaskingRule:
    """One extracted rule.

    Attributes:
        conditions: Conjunction of atomic conditions ("as long as ...").
        action: ``"mask"`` (select & replace with a masking gate) or
            ``"no_mask"`` (do not mask).
        support: Number of explained samples the rule was derived from.
        mean_shap: Mean total SHAP contribution of the rule's features over
            its supporting samples (confidence proxy).
        identifier: Short rule name (``"A"``, ``"B"``, ...).
    """

    conditions: Tuple[RuleCondition, ...]
    action: str
    support: int
    mean_shap: float
    identifier: str = ""

    def matches(self, feature_values: np.ndarray,
                feature_names: Sequence[str]) -> bool:
        """Whether a feature vector satisfies all conditions."""
        index = {name: i for i, name in enumerate(feature_names)}
        for condition in self.conditions:
            position = index.get(condition.feature)
            if position is None:
                return False
            if not condition.evaluate(float(feature_values[position])):
                return False
        return True

    def describe(self) -> str:
        """Render the rule in the style of the paper's Table V."""
        clause = " && ".join(c.describe() for c in self.conditions)
        procedure = ("Select & Replace with masking gate" if self.action == "mask"
                     else "Do not Mask")
        prefix = f"Rule {self.identifier}: " if self.identifier else ""
        return f"{prefix}As long as {clause} -> {procedure}"


@dataclass
class RuleSet:
    """A collection of extracted rules usable as a standalone classifier."""

    rules: List[MaskingRule] = field(default_factory=list)
    feature_names: Tuple[str, ...] = ()

    def predict_action(self, feature_values: np.ndarray) -> Optional[str]:
        """Return the action of the first matching rule (or ``None``)."""
        for rule in self.rules:
            if rule.matches(feature_values, self.feature_names):
                return rule.action
        return None

    def predict_score(self, feature_values: np.ndarray,
                      default: float = 0.5) -> float:
        """Score in [0, 1]: 1 for 'mask' rules, 0 for 'no_mask', else default."""
        action = self.predict_action(feature_values)
        if action == "mask":
            return 1.0
        if action == "no_mask":
            return 0.0
        return default

    def describe(self) -> str:
        """Multi-line description of every rule."""
        return "\n".join(rule.describe() for rule in self.rules)

    def __len__(self) -> int:
        return len(self.rules)


class RuleExtractor:
    """Builds a :class:`RuleSet` from SHAP explanations.

    Args:
        top_features: How many of the highest-|SHAP| features per sample
            form the candidate condition set.
        min_support: Minimum number of samples sharing a condition pattern
            for it to become a rule.
        max_rules: Maximum number of rules kept per action.
        numeric_features: Names of features treated as numeric (thresholded
            at the sample value) rather than binary one-hot flags.
    """

    def __init__(self, top_features: int = 4, min_support: int = 2,
                 max_rules: int = 5,
                 numeric_features: Optional[Sequence[str]] = None) -> None:
        if top_features < 1:
            raise ValueError("top_features must be >= 1")
        self.top_features = top_features
        self.min_support = max(1, min_support)
        self.max_rules = max(1, max_rules)
        self.numeric_features = set(numeric_features or (
            "fanin", "fanout", "depth_ratio", "neighborhood_size",
            "neighborhood_xor_fraction", "neighborhood_nonlinear_fraction",
            "driver_xor_fraction", "driver_is_primary_input_fraction",
            "load_xor_fraction",
        ))

    # ------------------------------------------------------------------
    def extract(self, explanations: Sequence[Explanation],
                positive_threshold: float = 0.5) -> RuleSet:
        """Extract rules from a batch of explanations.

        Samples whose prediction exceeds ``positive_threshold`` contribute
        "mask" rules; the others contribute "no_mask" rules.

        Raises:
            ValueError: if no explanations are provided.
        """
        if not explanations:
            raise ValueError("at least one explanation is required")
        feature_names = explanations[0].feature_names
        patterns: Dict[str, Counter] = {"mask": Counter(), "no_mask": Counter()}
        shap_sums: Dict[Tuple[str, Tuple[RuleCondition, ...]], List[float]] = {}

        for explanation in explanations:
            action = ("mask" if explanation.prediction >= positive_threshold
                      else "no_mask")
            conditions = self._sample_conditions(explanation, action)
            if not conditions:
                continue
            key = tuple(conditions)
            patterns[action][key] += 1
            shap_sums.setdefault((action, key), []).append(
                float(np.sum([abs(v) for _, v, _ in explanation.top_features(
                    self.top_features)])))

        rules: List[MaskingRule] = []
        labels = iter("ABCDEFGHIJKLMNOPQRSTUVWXYZ")
        for action in ("mask", "no_mask"):
            ranked = patterns[action].most_common()
            kept = 0
            for key, count in ranked:
                if count < self.min_support or kept >= self.max_rules:
                    continue
                mean_shap = float(np.mean(shap_sums[(action, key)]))
                rules.append(MaskingRule(
                    conditions=key, action=action, support=count,
                    mean_shap=mean_shap, identifier=next(labels, "?")))
                kept += 1
            if kept == 0 and ranked:
                # Fall back to the most common pattern even below the support
                # threshold so both procedures of Table V ("Select & Replace"
                # and "Do not Mask") are represented whenever samples of that
                # class were explained at all.
                key, count = ranked[0]
                rules.append(MaskingRule(
                    conditions=key, action=action, support=count,
                    mean_shap=float(np.mean(shap_sums[(action, key)])),
                    identifier=next(labels, "?")))
        return RuleSet(rules=rules, feature_names=feature_names)

    # ------------------------------------------------------------------
    def _sample_conditions(self, explanation: Explanation,
                           action: str) -> List[RuleCondition]:
        conditions: List[RuleCondition] = []
        for name, shap_value, feature_value in explanation.top_features(
                self.top_features):
            # Keep only features that push the prediction towards the
            # sample's action: positive SHAP for "mask", negative for
            # "no_mask".
            if action == "mask" and shap_value <= 0:
                continue
            if action == "no_mask" and shap_value >= 0:
                continue
            conditions.append(self._condition_for(name, feature_value))
        # Canonical order so identical patterns hash identically.
        conditions.sort(key=lambda c: (c.feature, c.operator, c.value))
        return conditions

    def _condition_for(self, name: str, feature_value: float) -> RuleCondition:
        if name in self.numeric_features:
            operator = "<=" if feature_value <= 0.5 else ">"
            # Coarse thresholds (one decimal) so samples with slightly
            # different values still collapse into the same rule pattern.
            threshold = round(float(feature_value), 1)
            if operator == ">" and threshold >= feature_value:
                threshold = round(threshold - 0.1, 1)
            return RuleCondition(name, operator, threshold)
        # Binary (one-hot / adjacency) feature.
        return RuleCondition(name, "==", 1.0 if feature_value >= 0.5 else 0.0)
