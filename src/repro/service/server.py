"""The live assessment server: an asyncio front-end over the campaign root.

One :class:`AssessmentService` owns a shared campaign root and serves
newline-delimited protocol frames (see :mod:`repro.service.protocol`)
over TCP.  It layers *liveness* on the existing durable machinery without
replacing any of it:

* submissions go through :func:`repro.campaign.runner.submit_campaign`
  into the root's SQLite :class:`TaskQueue` — the server never computes
  shards itself;
* every :class:`ShardPartial` a worker streams in carries the *exact
  bytes* of the shard's durable checkpoint, so the server's incremental
  fold reads the same inputs the batch ``collect`` merge would read from
  disk.  Folding is delegated to
  :func:`repro.tvla.sharding.merge_shard_partials` over the present
  shards in shard-index order — the global-chunk-order association that
  makes the counter sampler's results bitwise independent of shard
  layout — so the progress frame emitted after the final shard is
  bitwise equal to the collected assessment;
* a monitor task rescans checkpoint directories (catching shards
  computed by plain ``polaris-campaign work`` processes that do not
  stream) and watches heartbeat beacons for flatlined workers.

Tenancy: each tenant's campaigns live under ``<root>/tenants/<tenant>``
with a private result store, while shard tasks from every tenant share
the single fleet queue at ``<root>/queue.sqlite`` under
``tenant:<t>:``-prefixed keys.

Blocking work (SQLite, file I/O, numpy folds) runs in worker threads via
``asyncio.to_thread``; per-campaign folds are serialised by a lock so
frames are emitted in fold order.
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import contextlib
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

from ..campaign.queue import TaskQueue
from ..campaign.runner import (
    CampaignPaths,
    campaign_status,
    campaign_store,
    load_spec,
    submit_campaign,
    verified_checkpoint,
)
from ..campaign.serialize import (
    assessment_to_dict,
    encode_array,
    unpack_shard_moments,
)
from ..campaign.spec import CampaignSpec
from ..tvla.assessment import (
    LeakageAssessment,
    aggregate_class_results,
    resolve_generator,
)
from ..tvla.sharding import merge_shard_partials
from .protocol import (
    CampaignAccepted,
    CampaignComplete,
    CampaignProgress,
    Message,
    ProtocolError,
    ServiceError,
    ShardPartial,
    SubmitCampaign,
    WatchCampaign,
    WorkerHeartbeat,
    decode_message,
    encode_message,
    tenant_key_prefix,
    tenant_root,
    validate_tenant,
)


@dataclass
class _Campaign:
    """Server-side state of one (tenant, spec_hash) campaign."""

    tenant: str
    spec: CampaignSpec
    paths: CampaignPaths
    partials: Dict[int, object] = field(default_factory=dict)
    watchers: Set["_Connection"] = field(default_factory=set)
    fold_lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    complete: bool = False
    last_progress: Optional[CampaignProgress] = None
    final_frame: Optional[CampaignComplete] = None
    _gate_names: Optional[Tuple[str, ...]] = None
    started_at: float = field(default_factory=time.perf_counter)

    @property
    def n_shards(self) -> int:
        return len(self.spec.shard_ranges())

    def gate_names(self) -> Tuple[str, ...]:
        if self._gate_names is None:
            netlist = self.spec.netlist()
            generator = resolve_generator(netlist, self.spec.tvla, None)
            self._gate_names = tuple(generator.gate_names)
        return self._gate_names


class _Connection:
    """One client connection: a reader loop plus a serialised outbox.

    Frames destined for the client are funnelled through an asyncio queue
    drained by a single sender task, so concurrent broadcasts can never
    interleave bytes on the stream.
    """

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.outbox: "asyncio.Queue[Optional[bytes]]" = asyncio.Queue()
        self.sender: Optional[asyncio.Task] = None
        self.alive = True

    def send(self, message: Message) -> None:
        if self.alive:
            self.outbox.put_nowait(encode_message(message))

    async def drain_outbox(self) -> None:
        try:
            while True:
                frame = await self.outbox.get()
                if frame is None:
                    break
                self.writer.write(frame)
                await self.writer.drain()
        except (ConnectionError, asyncio.CancelledError, OSError):
            pass
        finally:
            self.alive = False

    async def close(self) -> None:
        self.alive = False
        self.outbox.put_nowait(None)
        if self.sender is not None:
            with contextlib.suppress(asyncio.CancelledError):
                await self.sender
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class AssessmentService:
    """Live multi-tenant assessment service over one campaign root.

    Usage (tests use exactly this shape)::

        service = AssessmentService(root)
        host, port = await service.start()
        ...
        await service.stop()

    Args:
        root: The shared campaign root (created on demand).
        host: Bind address (default loopback).
        port: Bind port; 0 picks a free port, reported by :meth:`start`.
        monitor_interval: Seconds between checkpoint-directory rescans.
        flatline_after: A worker whose last heartbeat is older than this
            many seconds is listed by :meth:`flatlined_workers`.
    """

    def __init__(self, root: Union[str, Path], host: str = "127.0.0.1",
                 port: int = 0, monitor_interval: float = 0.25,
                 flatline_after: float = 5.0) -> None:
        self.root = Path(root)
        self.host = host
        self.port = port
        self.monitor_interval = monitor_interval
        self.flatline_after = flatline_after
        self.queue = TaskQueue(self.root / "queue.sqlite")
        self._campaigns: Dict[Tuple[str, str], _Campaign] = {}
        self._connections: Set[_Connection] = set()
        self._heartbeats: Dict[str, Tuple[float, WorkerHeartbeat]] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._monitor: Optional[asyncio.Task] = None
        self._handler_tasks: Set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``."""
        self.root.mkdir(parents=True, exist_ok=True)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        bound = self._server.sockets[0].getsockname()
        self.host, self.port = bound[0], bound[1]
        self._monitor = asyncio.get_running_loop().create_task(
            self._monitor_loop())
        return self.host, self.port

    async def stop(self) -> None:
        """Stop serving: cancel the monitor, drop clients, close the port."""
        try:
            if self._monitor is not None:
                self._monitor.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await self._monitor
            for connection in list(self._connections):
                await connection.close()
            self._connections.clear()
            if self._handler_tasks:
                # Closed writers feed EOF to their reader loops; wait for
                # the handlers to notice instead of abandoning them.
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(
                        asyncio.gather(*self._handler_tasks,
                                       return_exceptions=True), timeout=2.0)
        finally:
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
                self._server = None

    async def serve_forever(self) -> None:
        """Block serving until cancelled (the CLI ``serve`` entry)."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    def flatlined_workers(self) -> Tuple[str, ...]:
        """Workers whose heartbeat stream went quiet (sorted ids)."""
        now = time.monotonic()
        return tuple(sorted(
            worker for worker, (seen, _beat) in self._heartbeats.items()
            if now - seen > self.flatline_after))

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
            task.add_done_callback(self._handler_tasks.discard)
        connection = _Connection(writer)
        connection.sender = asyncio.get_running_loop().create_task(
            connection.drain_outbox())
        self._connections.add(connection)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    message = decode_message(line)
                except ProtocolError as error:
                    connection.send(ServiceError(code="bad-frame",
                                                 message=str(error)))
                    continue
                await self._dispatch(connection, message)
        except (ConnectionError, OSError):
            pass
        finally:
            self._connections.discard(connection)
            for campaign in self._campaigns.values():
                campaign.watchers.discard(connection)
            await connection.close()

    async def _dispatch(self, connection: _Connection,
                        message: Message) -> None:
        try:
            if isinstance(message, SubmitCampaign):
                await self._handle_submit(connection, message)
            elif isinstance(message, WatchCampaign):
                await self._handle_watch(connection, message)
            elif isinstance(message, ShardPartial):
                await self._handle_partial(message)
            elif isinstance(message, WorkerHeartbeat):
                self._heartbeats[message.worker] = (time.monotonic(), message)
            else:
                connection.send(ServiceError(
                    code="bad-frame",
                    message=f"unexpected {type(message).__name__} "
                            f"from a client"))
        except ProtocolError as error:
            connection.send(ServiceError(code="bad-tenant",
                                         message=str(error)))
        except Exception as error:  # noqa: BLE001 — connection must survive
            connection.send(ServiceError(
                code="internal", message=f"{type(error).__name__}: {error}"))

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    async def _handle_submit(self, connection: _Connection,
                             message: SubmitCampaign) -> None:
        tenant = validate_tenant(message.tenant)
        try:
            spec = CampaignSpec.from_json(message.spec_json)
        except (ValueError, KeyError, TypeError) as error:
            connection.send(ServiceError(code="bad-spec",
                                         message=str(error)))
            return
        root = tenant_root(self.root, tenant)
        outcome = await asyncio.to_thread(
            submit_campaign, root, spec=spec, queue=self.queue,
            shard_key_prefix=tenant_key_prefix(tenant))
        campaign = self._ensure_campaign(tenant, spec)
        connection.send(CampaignAccepted(
            tenant=tenant, spec_hash=outcome.spec_hash,
            status=outcome.status, n_shards_total=outcome.n_shards_total,
            n_shards_done=outcome.n_shards_done,
            n_enqueued=outcome.n_enqueued))
        if message.follow:
            campaign.watchers.add(connection)
        await self._absorb_disk_partials(campaign)
        if outcome.status == "cached" and not campaign.complete:
            await self._finalise_from_store(campaign)
        self._push_state(campaign, connection if message.follow else None)

    async def _handle_watch(self, connection: _Connection,
                            message: WatchCampaign) -> None:
        tenant = validate_tenant(message.tenant)
        key = (tenant, message.spec_hash)
        campaign = self._campaigns.get(key)
        if campaign is None:
            root = tenant_root(self.root, tenant)
            try:
                spec = await asyncio.to_thread(load_spec, root,
                                               message.spec_hash)
            except (FileNotFoundError, ValueError):
                connection.send(ServiceError(
                    code="unknown-campaign",
                    message=f"no campaign {message.spec_hash[:12]}… "
                            f"for tenant {tenant!r}"))
                return
            campaign = self._ensure_campaign(tenant, spec)
        campaign.watchers.add(connection)
        await self._absorb_disk_partials(campaign)
        self._push_state(campaign, connection)

    async def _handle_partial(self, message: ShardPartial) -> None:
        tenant = validate_tenant(message.tenant)
        key = (tenant, message.spec_hash)
        campaign = self._campaigns.get(key)
        if campaign is None:
            root = tenant_root(self.root, tenant)
            spec = await asyncio.to_thread(load_spec, root,
                                           message.spec_hash)
            campaign = self._ensure_campaign(tenant, spec)
        try:
            packed = base64.b64decode(message.payload_b64, validate=True)
        except (binascii.Error, ValueError) as error:
            raise ProtocolError(f"undecodable shard payload: {error}")
        await self._fold_partial(campaign, message.shard_index, packed)

    # ------------------------------------------------------------------
    # Campaign state / folding
    # ------------------------------------------------------------------
    def _ensure_campaign(self, tenant: str, spec: CampaignSpec) -> _Campaign:
        key = (tenant, spec.content_hash)
        campaign = self._campaigns.get(key)
        if campaign is None:
            paths = CampaignPaths(tenant_root(self.root, tenant),
                                  spec.content_hash,
                                  key_prefix=tenant_key_prefix(tenant))
            campaign = _Campaign(tenant=tenant, spec=spec, paths=paths)
            self._campaigns[key] = campaign
        return campaign

    async def _absorb_disk_partials(self, campaign: _Campaign) -> None:
        """Fold checkpoints that reached disk without being streamed.

        Disk reads go through :func:`verified_checkpoint`: a corrupt
        checkpoint (torn write, tampering) is quarantined and its shard
        requeued on the shared queue instead of being folded or crashing
        the monitor — the campaign heals by recomputation.
        """
        if campaign.complete:
            return
        for shard_index in range(campaign.n_shards):
            if shard_index in campaign.partials:
                continue
            packed = await asyncio.to_thread(self._read_verified,
                                             campaign, shard_index)
            if packed is not None:
                await self._fold_partial(campaign, shard_index, packed)

    def _read_verified(self, campaign: _Campaign,
                       shard_index: int) -> Optional[bytes]:
        found = verified_checkpoint(campaign.paths, shard_index,
                                    queue=self.queue)
        return None if found is None else found[0]

    async def _fold_partial(self, campaign: _Campaign, shard_index: int,
                            packed: bytes) -> None:
        if not 0 <= shard_index < campaign.n_shards:
            raise ProtocolError(
                f"shard {shard_index} out of range "
                f"(campaign has {campaign.n_shards})")
        async with campaign.fold_lock:
            if campaign.complete or shard_index in campaign.partials:
                return
            campaign.partials[shard_index] = await asyncio.to_thread(
                unpack_shard_moments, packed)
            assessment = await asyncio.to_thread(self._interim_fold,
                                                 campaign)
            progress = self._progress_frame(campaign, assessment)
            campaign.last_progress = progress
            self._broadcast(campaign, progress)
            if len(campaign.partials) == campaign.n_shards:
                await self._finalise(campaign, assessment)

    def _interim_fold(self, campaign: _Campaign) -> LeakageAssessment:
        """Merge the present shards in shard-index order (blocking).

        The fold order is the global shard order restricted to the
        present subset — for the counter sampler every chunk's
        accumulators are keyed to global chunk coordinates, so once all
        shards are present this is *exactly* the batch merge and the
        resulting arrays are bitwise equal to ``collect_result``'s.
        """
        config = campaign.spec.tvla
        present = sorted(campaign.partials)
        shard_results = [campaign.partials[k] for k in present]
        class_results = merge_shard_partials(shard_results, config)
        return aggregate_class_results(
            class_results, campaign.spec.design_name,
            campaign.gate_names(), config,
            time.perf_counter() - campaign.started_at,
            streamed=True, n_shards=campaign.n_shards)

    def _progress_frame(self, campaign: _Campaign,
                        assessment: LeakageAssessment) -> CampaignProgress:
        return CampaignProgress(
            tenant=campaign.tenant,
            spec_hash=campaign.spec.content_hash,
            n_shards_total=campaign.n_shards,
            shards_done=tuple(sorted(campaign.partials)),
            t_values=encode_array(assessment.t_values),
            order_t_values={
                str(order): encode_array(values)
                for order, values in
                sorted(assessment.order_t_values.items())},
            max_abs_t=float(assessment.summary()["max_abs_t"]),
            leaking_gates=assessment.leaky_gates)

    async def _finalise(self, campaign: _Campaign,
                        assessment: LeakageAssessment) -> None:
        """Store the merged result and announce completion.

        The store is write-once first-wins: if a concurrent batch
        ``collect_result`` already stored the (identical) assessment the
        put is a no-op, and the announced frame serves the stored copy so
        streamed and collected views are bitwise equal by construction.
        """
        store = campaign_store(campaign.paths.root)
        spec = campaign.spec

        def _store_and_get():
            store.put(spec.content_hash, assessment, metadata={
                "design_name": spec.design_name,
                "n_shards": len(spec.shard_ranges()),
                "n_traces": spec.tvla.n_traces,
            })
            return store.get(spec.content_hash)

        stored = await asyncio.to_thread(_store_and_get)
        campaign.complete = True
        campaign.final_frame = CampaignComplete(
            tenant=campaign.tenant, spec_hash=spec.content_hash,
            assessment=assessment_to_dict(stored))
        self._broadcast(campaign, campaign.final_frame)

    async def _finalise_from_store(self, campaign: _Campaign) -> None:
        """Announce completion of a campaign whose result is already stored."""
        store = campaign_store(campaign.paths.root)
        stored = await asyncio.to_thread(store.get,
                                         campaign.spec.content_hash)
        if stored is None:
            return
        campaign.complete = True
        campaign.final_frame = CampaignComplete(
            tenant=campaign.tenant,
            spec_hash=campaign.spec.content_hash,
            assessment=assessment_to_dict(stored))

    def _push_state(self, campaign: _Campaign,
                    connection: Optional[_Connection]) -> None:
        """Send the latest frames to one (or, with None, no) connection."""
        if connection is None:
            return
        if campaign.last_progress is not None:
            connection.send(campaign.last_progress)
        if campaign.final_frame is not None:
            connection.send(campaign.final_frame)

    def _broadcast(self, campaign: _Campaign, message: Message) -> None:
        for watcher in tuple(campaign.watchers):
            if watcher.alive:
                watcher.send(message)
            else:
                campaign.watchers.discard(watcher)

    # ------------------------------------------------------------------
    # Monitor
    # ------------------------------------------------------------------
    async def _monitor_loop(self) -> None:
        """Absorb disk-only checkpoints and surface failed shards."""
        while True:
            await asyncio.sleep(self.monitor_interval)
            for campaign in list(self._campaigns.values()):
                if campaign.complete:
                    continue
                try:
                    await self._absorb_disk_partials(campaign)
                    await self._report_failures(campaign)
                except asyncio.CancelledError:
                    raise
                except Exception:  # noqa: BLE001 — monitor must survive
                    continue

    async def _report_failures(self, campaign: _Campaign) -> None:
        if not campaign.watchers:
            return
        status = await asyncio.to_thread(
            campaign_status, campaign.paths.root,
            campaign.spec.content_hash, queue=self.queue,
            shard_key_prefix=tenant_key_prefix(campaign.tenant))
        for shard_index in status.failed_shards:
            self._broadcast(campaign, ServiceError(
                code="internal",
                message=f"shard {shard_index} of "
                        f"{campaign.spec.content_hash[:12]}… exhausted "
                        f"its retries"))
        # Graceful degradation: once every shard is accounted for (folded
        # or terminally failed) and at least one succeeded, a poisoned
        # campaign completes with a *partial* CampaignComplete naming its
        # failed_shards — watchers get an answer instead of an error loop
        # that never ends.  The degraded assessment is not stored: a
        # resubmission after the fault is fixed recomputes in full.
        if status.failed_shards and campaign.partials and \
                len(campaign.partials) + len(status.failed_shards) \
                >= campaign.n_shards:
            await self._finalise_partial(campaign, status.failed_shards)

    async def _finalise_partial(self, campaign: _Campaign,
                                failed_shards: Tuple[int, ...]) -> None:
        async with campaign.fold_lock:
            if campaign.complete or not campaign.partials:
                return
            assessment = await asyncio.to_thread(self._interim_fold,
                                                 campaign)
            assessment.failed_shards = tuple(sorted(failed_shards))
            campaign.complete = True
            campaign.final_frame = CampaignComplete(
                tenant=campaign.tenant,
                spec_hash=campaign.spec.content_hash,
                assessment=assessment_to_dict(assessment))
            self._broadcast(campaign, campaign.final_frame)


async def _serve(root: Union[str, Path], host: str, port: int,
                 ready_callback=None) -> None:
    """Start a service and block forever (the CLI entry point)."""
    service = AssessmentService(root, host=host, port=port)
    bound_host, bound_port = await service.start()
    if ready_callback is not None:
        ready_callback(bound_host, bound_port)
    try:
        await service.serve_forever()
    finally:
        await service.stop()


def serve(root: Union[str, Path], host: str = "127.0.0.1",
          port: int = 0, ready_callback=None) -> None:
    """Run an assessment service until interrupted (blocking).

    ``ready_callback(host, port)`` fires once the socket is bound —
    scripts starting a server subprocess use it to print the picked port.
    """
    try:
        asyncio.run(_serve(root, host, port, ready_callback))
    except KeyboardInterrupt:
        pass


__all__ = ["AssessmentService", "serve"]
