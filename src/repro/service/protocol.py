"""Typed wire protocol of the live assessment service.

Every frame on the wire is one line of canonical JSON (sorted keys,
compact separators, UTF-8) wrapped in a versioned envelope::

    {"body": {...}, "type": "SubmitCampaign", "v": 1}\n

The body is a frozen dataclass — construction *is* validation, and the
codec round-trips each message through its declared fields only: unknown
message types, version mismatches, missing fields and stray fields are
all hard :class:`ProtocolError`\\ s rather than silently-ignored keys, so
a version-2 peer cannot half-work against a version-1 server.  Canonical
encoding also makes frames byte-stable: encoding the same message twice
yields identical bytes, which the tests use to pin the wire format.

Numeric payloads (shard accumulators, t-value arrays) ride inside bodies
using the campaign layer's lossless encodings — base64 raw little-endian
buffers via :mod:`repro.campaign.serialize` — so a t-value streamed
through the service is *bitwise* the t-value the batch ``collect`` path
produces.

Tenant namespacing: every campaign-scoped message carries a validated
``tenant`` id.  On the server a tenant maps to a private sub-root
(``<root>/tenants/<tenant>`` — own store, own checkpoint tree) while all
tenants share one fleet-wide task queue whose idempotency keys are
prefixed ``tenant:<tenant>:`` (see :func:`tenant_key_prefix`), keeping
cross-tenant specs with equal hashes from deduplicating into one task.
"""

from __future__ import annotations

import dataclasses
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Type, Union

PROTOCOL_VERSION = 1

#: Tenant ids are path- and key-safe by construction: they appear in
#: directory names and queue keys verbatim.
_TENANT_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_-]{0,63}\Z")

DEFAULT_TENANT = "default"


class ProtocolError(ValueError):
    """A frame violates the wire protocol (version, shape, or type)."""


def validate_tenant(tenant: str) -> str:
    """Return ``tenant`` if it is a legal tenant id, else raise.

    Raises:
        ProtocolError: for ids that are empty, too long (> 64 chars), or
            contain characters unsafe in paths/queue keys.
    """
    if not isinstance(tenant, str) or not _TENANT_PATTERN.match(tenant):
        raise ProtocolError(
            f"invalid tenant id {tenant!r}: expected 1-64 chars of "
            f"[A-Za-z0-9_-], starting alphanumeric")
    return tenant


def tenant_root(root: Union[str, Path], tenant: str) -> Path:
    """The private campaign sub-root of one tenant (store + checkpoints)."""
    return Path(root) / "tenants" / validate_tenant(tenant)


def tenant_key_prefix(tenant: str) -> str:
    """Queue-key namespace of one tenant in the shared fleet queue."""
    return f"tenant:{validate_tenant(tenant)}:"


# ----------------------------------------------------------------------
# Message bodies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SubmitCampaign:
    """Client → server: register a campaign and enqueue missing shards.

    ``spec_json`` is the self-contained :class:`CampaignSpec` JSON (the
    server re-verifies its content hash); ``follow`` keeps the connection
    subscribed for progress frames after the accept.
    """

    tenant: str
    spec_json: str
    follow: bool = True


@dataclass(frozen=True)
class CampaignAccepted:
    """Server → client: the submission outcome (mirrors SubmitOutcome)."""

    tenant: str
    spec_hash: str
    status: str  # "submitted" | "resumed" | "cached"
    n_shards_total: int
    n_shards_done: int
    n_enqueued: int


@dataclass(frozen=True)
class WatchCampaign:
    """Client → server: subscribe to an existing campaign's stream."""

    tenant: str
    spec_hash: str


@dataclass(frozen=True)
class ShardPartial:
    """Worker → server: one shard's packed partial accumulators.

    ``payload_b64`` is the base64 of the exact checkpoint bytes published
    to ``shards/shard_NNNN.moments`` — the server folds the *same* bytes
    the batch merge would read from disk.
    """

    tenant: str
    spec_hash: str
    shard_index: int
    payload_b64: str
    worker: str = ""


@dataclass(frozen=True)
class CampaignProgress:
    """Server → subscribers: live progress with interim t-values.

    ``t_values`` / ``order_t_values`` are lossless array encodings (see
    :func:`repro.campaign.serialize.encode_array`) of the fold over the
    shards listed in ``shards_done`` — after the final shard they are
    bitwise equal to the collected assessment's arrays.  Empty dicts mean
    no shard has reported yet.
    """

    tenant: str
    spec_hash: str
    n_shards_total: int
    shards_done: Tuple[int, ...]
    t_values: Dict[str, object]
    order_t_values: Dict[str, Dict[str, object]]
    max_abs_t: float
    leaking_gates: Tuple[str, ...]

    def __post_init__(self):
        object.__setattr__(self, "shards_done",
                           tuple(int(k) for k in self.shards_done))
        object.__setattr__(self, "leaking_gates",
                           tuple(str(g) for g in self.leaking_gates))


@dataclass(frozen=True)
class WorkerHeartbeat:
    """Worker → server: liveness beacon with lease bookkeeping.

    ``task_id`` is -1 between claims; ``renewals`` counts successful
    :meth:`TaskQueue.renew` calls on the current lease.  The server uses
    the beacon stream to surface flatlined workers (last beat older than
    its flatline window) without touching the queue.
    """

    worker: str
    tenant: str = ""
    task_id: int = -1
    renewals: int = 0
    busy: bool = False


@dataclass(frozen=True)
class CampaignComplete:
    """Server → subscribers: the final stored assessment.

    ``assessment`` is :func:`repro.campaign.serialize.assessment_to_dict`
    output — decoding it yields arrays bitwise equal to
    ``collect_result``'s, because both sides read the same store entry.
    """

    tenant: str
    spec_hash: str
    assessment: Dict[str, object]


@dataclass(frozen=True)
class ServiceError:
    """Server → client: a request failed; the connection stays usable.

    Stable ``code`` values: ``bad-frame``, ``bad-tenant``, ``bad-spec``,
    ``unknown-campaign``, ``internal``.
    """

    code: str
    message: str


Message = Union[SubmitCampaign, CampaignAccepted, WatchCampaign,
                ShardPartial, CampaignProgress, WorkerHeartbeat,
                CampaignComplete, ServiceError]

MESSAGE_TYPES: Dict[str, Type[Message]] = {
    cls.__name__: cls
    for cls in (SubmitCampaign, CampaignAccepted, WatchCampaign,
                ShardPartial, CampaignProgress, WorkerHeartbeat,
                CampaignComplete, ServiceError)
}


# ----------------------------------------------------------------------
# Codec
# ----------------------------------------------------------------------
def encode_message(message: Message) -> bytes:
    """One canonical-JSON wire frame (newline-terminated UTF-8)."""
    type_name = type(message).__name__
    if MESSAGE_TYPES.get(type_name) is not type(message):
        raise ProtocolError(f"not a protocol message: {type(message)!r}")
    envelope = {"v": PROTOCOL_VERSION, "type": type_name,
                "body": dataclasses.asdict(message)}
    return (json.dumps(envelope, sort_keys=True,
                       separators=(",", ":")).encode("utf-8") + b"\n")


def decode_message(line: Union[str, bytes]) -> Message:
    """Parse one wire frame back into its typed message.

    Raises:
        ProtocolError: for malformed JSON, a non-object envelope, an
            unsupported version, an unknown type, or a body whose keys do
            not exactly match the message's declared fields.
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        envelope = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"frame is not valid JSON: {error}") from error
    if not isinstance(envelope, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(envelope).__name__}")
    version = envelope.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} "
            f"(this peer speaks {PROTOCOL_VERSION})")
    type_name = envelope.get("type")
    cls = MESSAGE_TYPES.get(type_name)
    if cls is None:
        raise ProtocolError(f"unknown message type {type_name!r}")
    body = envelope.get("body")
    if not isinstance(body, dict):
        raise ProtocolError(f"{type_name} body must be a JSON object")
    declared = {field.name for field in dataclasses.fields(cls)}
    required = {field.name for field in dataclasses.fields(cls)
                if field.default is dataclasses.MISSING
                and field.default_factory is dataclasses.MISSING}
    extra = set(body) - declared
    missing = required - set(body)
    if extra or missing:
        raise ProtocolError(
            f"{type_name} body mismatch: "
            f"missing={sorted(missing)} unexpected={sorted(extra)}")
    try:
        return cls(**body)
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"bad {type_name} body: {error}") from error


def read_frames(buffer: bytes) -> Tuple[Tuple[Message, ...], bytes]:
    """Split a byte buffer into decoded frames + the unterminated tail.

    The convenience for sans-io consumers (the sync client feeds its
    socket recv chunks through this); newline-terminated frames decode
    strictly, the trailing partial line is returned for the next call.
    """
    messages = []
    while b"\n" in buffer:
        line, buffer = buffer.split(b"\n", 1)
        if line.strip():
            messages.append(decode_message(line))
    return tuple(messages), buffer


def heartbeat_key(beat: WorkerHeartbeat) -> str:
    """Stable identity of a beacon stream (one per worker process)."""
    return beat.worker


__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_TENANT",
    "ProtocolError",
    "Message",
    "MESSAGE_TYPES",
    "SubmitCampaign",
    "CampaignAccepted",
    "WatchCampaign",
    "ShardPartial",
    "CampaignProgress",
    "WorkerHeartbeat",
    "CampaignComplete",
    "ServiceError",
    "encode_message",
    "decode_message",
    "read_frames",
    "heartbeat_key",
    "validate_tenant",
    "tenant_root",
    "tenant_key_prefix",
]
