"""Live multi-tenant assessment service over the durable campaign layer.

The campaign package (queue + checkpoints + store) is strictly
submit/poll; this package adds the long-lived interactive layer on top:

* :mod:`repro.service.protocol` — versioned typed messages with a
  canonical newline-delimited-JSON wire codec and tenant namespacing;
* :mod:`repro.service.server` — :class:`AssessmentService`, an asyncio
  TCP server that accepts submissions, fans shards into the shared
  queue, folds streamed :class:`ShardPartial` frames in global shard
  order, and pushes live interim t-values to subscribers;
* :mod:`repro.service.worker` — :func:`run_service_worker`, the
  claim/execute loop with lease-renewal heartbeats plus partial/beacon
  streams back to the server;
* :mod:`repro.service.client` — the synchronous :class:`ServiceClient`
  used by workers, CLI verbs (``polaris-campaign serve`` / ``submit
  --follow`` / ``watch``) and tests.

Everything is stdlib + numpy: the wire format is JSON lines over TCP,
and all durability still lives in the campaign layer — the service can
die and restart without losing a shard.  See ``docs/service.md``.
"""

from .client import ServiceClient, ServiceUnavailableError
from .protocol import (
    DEFAULT_TENANT,
    PROTOCOL_VERSION,
    CampaignAccepted,
    CampaignComplete,
    CampaignProgress,
    Message,
    ProtocolError,
    ServiceError,
    ShardPartial,
    SubmitCampaign,
    WatchCampaign,
    WorkerHeartbeat,
    decode_message,
    encode_message,
    read_frames,
    tenant_key_prefix,
    tenant_root,
    validate_tenant,
)
from .server import AssessmentService, serve
from .worker import run_service_worker, tenant_of_root

__all__ = [
    "AssessmentService",
    "CampaignAccepted",
    "CampaignComplete",
    "CampaignProgress",
    "DEFAULT_TENANT",
    "Message",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailableError",
    "ShardPartial",
    "SubmitCampaign",
    "WatchCampaign",
    "WorkerHeartbeat",
    "decode_message",
    "encode_message",
    "read_frames",
    "run_service_worker",
    "serve",
    "tenant_key_prefix",
    "tenant_of_root",
    "tenant_root",
    "validate_tenant",
]
