"""Synchronous service client (used by workers, the CLI, and tests).

A thin, thread-safe wrapper over one TCP connection: sends are serialised
by a lock, receives run a buffered newline scan through
:func:`repro.service.protocol.read_frames`.  The client is deliberately
synchronous — workers and CLI verbs are plain processes; only the server
is an asyncio program.
"""

from __future__ import annotations

import socket
import threading
from typing import Iterator, Optional

from .protocol import (
    CampaignAccepted,
    Message,
    ProtocolError,
    ServiceError,
    SubmitCampaign,
    WatchCampaign,
    encode_message,
    read_frames,
)


class ServiceUnavailableError(ConnectionError):
    """The service endpoint refused, dropped, or timed out."""


class ServiceClient:
    """One connection to an :class:`AssessmentService`.

    Safe usage is one *receiving* thread; any number of threads may
    :meth:`send`.  Use as a context manager::

        with ServiceClient(host, port) as client:
            accepted = client.submit(tenant, spec_json)
            for frame in client.events():
                ...
    """

    def __init__(self, host: str, port: int,
                 timeout: Optional[float] = 30.0) -> None:
        self.host = host
        self.port = port
        try:
            self._sock = socket.create_connection((host, port),
                                                  timeout=timeout)
        except OSError as error:
            raise ServiceUnavailableError(
                f"cannot reach service at {host}:{port}: {error}"
            ) from error
        self._send_lock = threading.Lock()
        self._buffer = b""
        self._pending: list = []

    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Send one frame (thread-safe)."""
        frame = encode_message(message)
        with self._send_lock:
            try:
                self._sock.sendall(frame)
            except OSError as error:
                raise ServiceUnavailableError(
                    f"connection to {self.host}:{self.port} lost: {error}"
                ) from error

    def recv(self, timeout: Optional[float] = None) -> Optional[Message]:
        """Receive the next frame; ``None`` on clean EOF.

        Raises:
            ServiceUnavailableError: on socket errors or timeout.
            ProtocolError: on an undecodable frame from the server.
        """
        if self._pending:
            return self._pending.pop(0)
        self._sock.settimeout(timeout)
        while True:
            try:
                chunk = self._sock.recv(65536)
            except socket.timeout as error:
                raise ServiceUnavailableError(
                    f"no frame from {self.host}:{self.port} within "
                    f"{timeout}s") from error
            except OSError as error:
                raise ServiceUnavailableError(str(error)) from error
            if not chunk:
                return None
            self._buffer += chunk
            frames, self._buffer = read_frames(self._buffer)
            if frames:
                self._pending.extend(frames[1:])
                return frames[0]

    def events(self, timeout: Optional[float] = None
               ) -> Iterator[Message]:
        """Yield frames until EOF (or a per-frame timeout trips)."""
        while True:
            message = self.recv(timeout=timeout)
            if message is None:
                return
            yield message

    # ------------------------------------------------------------------
    def submit(self, tenant: str, spec_json: str,
               follow: bool = True,
               timeout: Optional[float] = 30.0) -> CampaignAccepted:
        """Submit a campaign; returns the accept frame.

        Raises:
            ProtocolError: when the server answers with a
                :class:`ServiceError` instead of accepting.
        """
        self.send(SubmitCampaign(tenant=tenant, spec_json=spec_json,
                                 follow=follow))
        message = self.recv(timeout=timeout)
        if isinstance(message, CampaignAccepted):
            return message
        if isinstance(message, ServiceError):
            raise ProtocolError(
                f"submission rejected [{message.code}]: {message.message}")
        raise ProtocolError(
            f"expected CampaignAccepted, got "
            f"{type(message).__name__ if message else 'EOF'}")

    def watch(self, tenant: str, spec_hash: str) -> None:
        """Subscribe this connection to a campaign's stream."""
        self.send(WatchCampaign(tenant=tenant, spec_hash=spec_hash))

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["ServiceClient", "ServiceUnavailableError"]
