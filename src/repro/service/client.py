"""Synchronous service client (used by workers, the CLI, and tests).

A thin, thread-safe wrapper over one TCP connection: sends are serialised
by a lock, receives run a buffered newline scan through
:func:`repro.service.protocol.read_frames`.  The client is deliberately
synchronous — workers and CLI verbs are plain processes; only the server
is an asyncio program.

Connection loss is **not** terminal while a watch is active: the client
redials through the shared :class:`~repro.reliability.policy.RetryPolicy`,
re-subscribes to the watched campaign, and dedupes the re-pushed progress
frames — so a stream followed across a server bounce converges to the
same bitwise result as an uninterrupted one.  Timeouts still raise (a
slow server is not a dead one), and a clean EOF with nothing watched is
still the normal end of stream.
"""

from __future__ import annotations

import socket
import threading
from typing import Iterator, Optional, Set, Tuple

from ..reliability import faults
from ..reliability.policy import RetryPolicy
from .protocol import (
    CampaignAccepted,
    CampaignProgress,
    Message,
    ProtocolError,
    ServiceError,
    SubmitCampaign,
    WatchCampaign,
    encode_message,
    read_frames,
)


class ServiceUnavailableError(ConnectionError):
    """The service endpoint refused, dropped, or timed out."""


#: Default redial policy: five attempts over roughly two seconds — long
#: enough to ride out a service restart, short enough that a dead
#: endpoint fails fast.
_DEFAULT_RETRY = RetryPolicy(max_attempts=5, base_delay=0.1,
                             max_delay=1.0, jitter=0.25)


class ServiceClient:
    """One connection to an :class:`AssessmentService`.

    Safe usage is one *receiving* thread; any number of threads may
    :meth:`send`.  Use as a context manager::

        with ServiceClient(host, port) as client:
            accepted = client.submit(tenant, spec_json)
            for frame in client.events():
                ...

    ``retry`` tunes the reconnect backoff (:data:`_DEFAULT_RETRY` when
    omitted); ``reconnect=False`` restores the legacy fail-fast
    behaviour where any socket error mid-stream is terminal.
    """

    def __init__(self, host: str, port: int,
                 timeout: Optional[float] = 30.0,
                 retry: Optional[RetryPolicy] = None,
                 reconnect: bool = True) -> None:
        self.host = host
        self.port = port
        self._timeout = timeout
        self._retry = _DEFAULT_RETRY if retry is None else retry
        self._reconnect_enabled = reconnect
        self._send_lock = threading.Lock()
        self._buffer = b""
        self._pending: list = []
        #: The (tenant, spec_hash) this connection follows, if any — what
        #: a reconnect re-subscribes to.
        self._subscription: Optional[Tuple[str, str]] = None
        #: (spec_hash, shards_done) of progress frames already yielded; a
        #: re-subscribed server re-pushes its current state, and folds are
        #: monotone in the shards_done set, so exact-tuple dedupe keeps
        #: the resumed stream identical to an uninterrupted one.  Bounded
        #: by the campaign's shard count.
        self._seen_progress: Set[Tuple[str, Tuple[int, ...]]] = set()
        try:
            self._sock = self._dial()
        except OSError as error:
            raise ServiceUnavailableError(
                f"cannot reach service at {host}:{port}: {error}"
            ) from error

    def _dial(self) -> socket.socket:
        return socket.create_connection((self.host, self.port),
                                        timeout=self._timeout)

    # ------------------------------------------------------------------
    def reconnect(self) -> None:
        """Redial (with backoff) and re-subscribe the active watch.

        Raises :class:`ServiceUnavailableError` when every attempt in the
        retry policy fails.
        """
        with self._send_lock:
            try:
                self._sock.close()
            except OSError:
                pass
            try:
                self._sock = self._retry.call(self._dial, retry_on=OSError)
            except OSError as error:
                raise ServiceUnavailableError(
                    f"cannot re-reach service at {self.host}:{self.port}: "
                    f"{error}") from error
            # A fresh connection starts a fresh frame stream; decoded
            # frames in _pending are still valid and stay queued.
            self._buffer = b""
            if self._subscription is not None:
                tenant, spec_hash = self._subscription
                try:
                    self._sock.sendall(encode_message(
                        WatchCampaign(tenant=tenant, spec_hash=spec_hash)))
                except OSError as error:
                    raise ServiceUnavailableError(
                        f"connection to {self.host}:{self.port} lost during "
                        f"re-subscribe: {error}") from error

    def _lost(self, reason: str) -> None:
        """Handle a dropped connection mid-recv: resume or surface it."""
        if self._reconnect_enabled and self._subscription is not None:
            self.reconnect()  # caller keeps receiving on the new socket
            return
        raise ServiceUnavailableError(reason)

    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Send one frame (thread-safe).

        The ``service.send`` fault site models lossy frame I/O: ``drop``
        swallows the frame, ``sever`` kills the connection first, and
        ``delay`` stalls it.
        """
        frame = encode_message(message)
        with self._send_lock:
            rule = faults.perturb("service.send")
            if rule is not None:
                if rule.mode == "drop":
                    return
                if rule.mode == "sever":
                    try:
                        self._sock.close()
                    except OSError:
                        pass
            try:
                self._sock.sendall(frame)
            except OSError as error:
                raise ServiceUnavailableError(
                    f"connection to {self.host}:{self.port} lost: {error}"
                ) from error

    def recv(self, timeout: Optional[float] = None) -> Optional[Message]:
        """Receive the next frame; ``None`` on clean end of stream.

        While a watch is active, connection loss (reset *or* EOF — a
        bounced server closes cleanly) triggers a reconnect + resume
        instead of an error, and progress frames replayed by the
        re-subscribe are deduped.  Timeouts always raise: the connection
        is alive, the server is just slow, and redialing would lose
        frames.

        Raises:
            ServiceUnavailableError: on timeout, on socket errors with no
                active watch, or when a reconnect exhausts its retries.
            ProtocolError: on an undecodable frame from the server.
        """
        while True:
            message = self._recv_frame(timeout)
            if message is None:
                return None
            if isinstance(message, CampaignProgress) \
                    and self._subscription is not None:
                key = (message.spec_hash, message.shards_done)
                if key in self._seen_progress:
                    continue  # replay from a resumed subscription
                self._seen_progress.add(key)
            return message

    def _recv_frame(self, timeout: Optional[float]) -> Optional[Message]:
        while True:
            if self._pending:
                return self._pending.pop(0)
            rule = faults.perturb("service.recv")
            if rule is not None and rule.mode == "sever":
                try:
                    self._sock.close()
                except OSError:
                    pass
            try:
                self._sock.settimeout(timeout)
                chunk = self._sock.recv(65536)
            except socket.timeout as error:
                raise ServiceUnavailableError(
                    f"no frame from {self.host}:{self.port} within "
                    f"{timeout}s") from error
            except OSError as error:
                self._lost(str(error))
                continue
            if not chunk:
                if self._subscription is None \
                        or not self._reconnect_enabled:
                    return None  # clean end of stream
                self._lost("server closed the stream")
                continue
            self._buffer += chunk
            frames, self._buffer = read_frames(self._buffer)
            self._pending.extend(frames)

    def events(self, timeout: Optional[float] = None
               ) -> Iterator[Message]:
        """Yield frames until EOF (or a per-frame timeout trips)."""
        while True:
            message = self.recv(timeout=timeout)
            if message is None:
                return
            yield message

    # ------------------------------------------------------------------
    def submit(self, tenant: str, spec_json: str,
               follow: bool = True,
               timeout: Optional[float] = 30.0) -> CampaignAccepted:
        """Submit a campaign; returns the accept frame.

        With ``follow=True`` the accepted campaign becomes this
        connection's subscription, so a later connection loss resumes the
        stream instead of killing it.

        Raises:
            ProtocolError: when the server answers with a
                :class:`ServiceError` instead of accepting.
        """
        self.send(SubmitCampaign(tenant=tenant, spec_json=spec_json,
                                 follow=follow))
        message = self.recv(timeout=timeout)
        if isinstance(message, CampaignAccepted):
            if follow:
                self._subscription = (tenant, message.spec_hash)
            return message
        if isinstance(message, ServiceError):
            raise ProtocolError(
                f"submission rejected [{message.code}]: {message.message}")
        raise ProtocolError(
            f"expected CampaignAccepted, got "
            f"{type(message).__name__ if message else 'EOF'}")

    def watch(self, tenant: str, spec_hash: str) -> None:
        """Subscribe this connection to a campaign's stream (resumed
        automatically across reconnects)."""
        self._subscription = (tenant, spec_hash)
        self.send(WatchCampaign(tenant=tenant, spec_hash=spec_hash))

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._subscription = None
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["ServiceClient", "ServiceUnavailableError"]
