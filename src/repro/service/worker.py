"""Service-attached worker: the claim/execute loop plus liveness streams.

:func:`run_service_worker` is :func:`repro.campaign.queue.run_worker`
(heartbeat lease renewal included) wrapped with two streams back to the
server:

* a :class:`WorkerHeartbeat` beacon thread — fleet liveness, so the
  server can surface flatlined workers without polling the queue;
* the shard-partial hook (:func:`set_shard_partial_hook`): every shard
  checkpoint this process publishes is also streamed to the server as a
  :class:`ShardPartial` carrying the checkpoint's exact bytes, which is
  what makes live interim t-values bitwise-consistent with the batch
  merge.

Both streams are *observational*: if the service connection dies the
worker keeps draining the queue — durability never depends on the
server being up.
"""

from __future__ import annotations

import base64
import os
import threading
from pathlib import Path
from typing import Optional, Union

from ..campaign.queue import TaskQueue, run_worker
from ..campaign.runner import set_shard_partial_hook
from ..reliability.policy import RetryPolicy
from .client import ServiceClient, ServiceUnavailableError
from .protocol import DEFAULT_TENANT, ShardPartial, WorkerHeartbeat

#: Backoff for the observational streams (partials, heartbeats): a quick
#: reconnect-and-resend ride-out for a bounced server, then give up —
#: the disk checkpoint and queue row are the durable record either way.
_STREAM_RETRY = RetryPolicy(max_attempts=3, base_delay=0.05,
                            max_delay=0.5, jitter=0.25)


def _send_with_reconnect(client: ServiceClient, message) -> None:
    """Best-effort send: retry through a reconnect, swallow final failure."""
    def recover(attempt: int, error: BaseException) -> None:
        try:
            client.reconnect()
        except ServiceUnavailableError:
            pass  # next attempt (if any) fails fast and we give up

    _STREAM_RETRY.call(lambda: client.send(message),
                       retry_on=ServiceUnavailableError,
                       on_retry=recover, reraise=False)


def tenant_of_root(root: Union[str, Path]) -> str:
    """Tenant id encoded in a campaign-root path.

    Service tenants live under ``<shared>/tenants/<tenant>``; a root
    outside any ``tenants/`` directory belongs to :data:`DEFAULT_TENANT`.
    """
    parts = Path(root).parts
    for index in range(len(parts) - 1, 0, -1):
        if parts[index - 1] == "tenants":
            return parts[index]
    return DEFAULT_TENANT


class _HeartbeatThread:
    """Daemon thread streaming WorkerHeartbeat frames to the server."""

    def __init__(self, client: ServiceClient, worker: str,
                 interval: float) -> None:
        self._client = client
        self._worker = worker
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self.current_task_id = -1
        self.current_tenant = ""

    def start(self) -> "_HeartbeatThread":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2 * self._interval)

    def _run(self) -> None:
        while True:
            # Observational: reconnect-and-retry briefly, then drop the
            # beat — the queue is the source of truth either way.
            _send_with_reconnect(self._client, WorkerHeartbeat(
                worker=self._worker,
                tenant=self.current_tenant,
                task_id=self.current_task_id,
                busy=self.current_task_id >= 0))
            if self._stop.wait(self._interval):
                return


def run_service_worker(root: Union[str, Path], host: str, port: int,
                       worker: Optional[str] = None,
                       heartbeat_interval: float = 0.2,
                       **worker_kwargs) -> int:
    """Drain the shared queue while streaming partials + heartbeats.

    Args:
        root: The *shared* service root (the queue lives at
            ``root/queue.sqlite``; task payloads carry their own
            per-tenant campaign roots).
        host / port: The service endpoint to stream to.
        worker: Worker id on leases and heartbeats (defaults to the pid).
        heartbeat_interval: Seconds between liveness beacons.
        **worker_kwargs: Forwarded to
            :func:`repro.campaign.queue.run_worker` (``max_tasks``,
            ``drain``, ``lease_seconds``, ``renew_leases``, ...).

    Returns:
        The number of executed tasks (like ``run_worker``).
    """
    root = Path(root)
    worker_id = worker or f"service-worker-{os.getpid()}"
    queue = TaskQueue(root / "queue.sqlite")
    client = ServiceClient(host, port)
    beacon = _HeartbeatThread(client, worker_id, heartbeat_interval)

    def stream_partial(task_root: str, spec_hash: str, shard_index: int,
                       packed: bytes) -> None:
        _send_with_reconnect(client, ShardPartial(
            tenant=tenant_of_root(task_root), spec_hash=spec_hash,
            shard_index=shard_index,
            payload_b64=base64.b64encode(packed).decode("ascii"),
            worker=worker_id))

    set_shard_partial_hook(stream_partial)
    beacon.start()
    try:
        return run_worker(queue, worker=worker_id, **worker_kwargs)
    finally:
        beacon.stop()
        set_shard_partial_hook(None)
        client.close()


__all__ = ["run_service_worker", "tenant_of_root"]
