"""VALIANT-style baseline: TVLA-driven iterative selective masking.

VALIANT (Sadhukhan et al., IEEE TC 2024) is the state-of-the-art flow the
paper compares against.  Its defining characteristics, as described in the
POLARIS paper, are:

* it relies on repeated TVLA campaigns to find leaky gates, which dominates
  its runtime and limits scalability (paper §III-B, Table II times);
* it applies gate-level protection to every gate that fails the ±4.5
  threshold, iterating until the design passes or no further improvement is
  possible;
* its protection carries a larger area/power/delay footprint and retains
  more residual leakage per protected gate than POLARIS's Trichina
  composites (paper Tables II and IV).

The closed-source flow is substituted by this module: an iterative
TVLA-guided masking loop whose protection cells are tagged with the
``"valiant"`` protection style (higher residual-leakage factor in the power
model) and an ``overhead_scale`` reflecting its heavier implementation.  An
ablation bench neutralises both penalties to show how the comparison behaves
when VALIANT is given POLARIS-grade masking cells.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..masking.transform import apply_masking, maskable_gates
from ..netlist.netlist import Netlist
from ..tvla.assessment import LeakageAssessment, TvlaConfig, assess_leakage


@dataclass(frozen=True)
class ValiantConfig:
    """Parameters of the VALIANT baseline.

    Attributes:
        tvla: TVLA campaign settings used at every iteration.
        max_iterations: Upper bound on assess-and-mask rounds.
        batch_fraction: Fraction of the currently leaky gates protected per
            round (VALIANT processes the worst offenders first).
        overhead_scale: Area/power/delay multiplier of VALIANT's protection
            cells relative to the plain masked composites.
        protection_style: Tag consumed by the power model's residual-leakage
            logic; set to ``"trichina"`` for the equal-cells ablation.
    """

    tvla: TvlaConfig = field(default_factory=TvlaConfig)
    max_iterations: int = 6
    batch_fraction: float = 0.5
    overhead_scale: float = 1.15
    protection_style: str = "valiant"


@dataclass
class ValiantResult:
    """Outcome of the VALIANT flow on one design.

    Attributes:
        masked_netlist: The protected design.
        masked_gates: All gates protected across the iterations.
        iterations: Number of assess-and-mask rounds executed.
        tvla_runs: TVLA campaigns executed (the dominant runtime cost).
        runtime_seconds: End-to-end wall-clock time of the flow.
        final_assessment: Leakage assessment of the protected design from
            the last iteration (reporting only).
    """

    masked_netlist: Netlist
    masked_gates: Tuple[str, ...]
    iterations: int
    tvla_runs: int
    runtime_seconds: float
    final_assessment: Optional[LeakageAssessment]

    @property
    def n_masked(self) -> int:
        """Number of gates protected."""
        return len(self.masked_gates)


def valiant_protect(netlist: Netlist,
                    config: Optional[ValiantConfig] = None) -> ValiantResult:
    """Run the VALIANT baseline flow on ``netlist``.

    Each round runs a full TVLA campaign, selects the leaky maskable gates
    (worst first), protects a batch of them, and repeats on the rewritten
    design until no maskable gate fails the threshold, the iteration budget
    is exhausted, or no candidates remain.
    """
    config = config if config is not None else ValiantConfig()
    start = time.perf_counter()

    current = netlist
    all_masked: List[str] = []
    tvla_runs = 0
    iterations = 0
    final_assessment: Optional[LeakageAssessment] = None

    for iteration in range(config.max_iterations):
        assessment = assess_leakage(current, config.tvla)
        tvla_runs += 1
        final_assessment = assessment
        iterations = iteration + 1

        already_masked = set(all_masked)
        maskable = set(maskable_gates(current))
        leaky_candidates = [
            gate for gate in assessment.leaky_gates
            if gate in maskable and gate not in already_masked
        ]
        if not leaky_candidates:
            break

        batch_size = max(1, int(round(config.batch_fraction * len(leaky_candidates))))
        batch = leaky_candidates[:batch_size]
        result = apply_masking(
            current, batch,
            suffix="",  # keep the design name stable across iterations
            protection_style=config.protection_style,
            overhead_scale=config.overhead_scale,
        )
        current = result.netlist
        current.name = netlist.name + "_valiant"
        all_masked.extend(result.masked_gates)

    runtime = time.perf_counter() - start
    return ValiantResult(
        masked_netlist=current,
        masked_gates=tuple(all_masked),
        iterations=iterations,
        tvla_runs=tvla_runs,
        runtime_seconds=runtime,
        final_assessment=final_assessment,
    )
