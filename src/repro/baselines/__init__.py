"""Baseline protection flows the paper compares POLARIS against."""

from .valiant import ValiantConfig, ValiantResult, valiant_protect

__all__ = ["ValiantConfig", "ValiantResult", "valiant_protect"]
