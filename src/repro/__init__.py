"""POLARIS reproduction: XAI-guided power side-channel leakage mitigation.

This package reproduces the DAC 2025 paper *POLARIS: Explainable Artificial
Intelligence for Mitigating Power Side-Channel Leakage* end to end on an
offline, pure-Python substrate:

* :mod:`repro.netlist` -- gate-level netlist model, BENCH I/O, graph views,
  and synthetic ISCAS-85 / EPFL / MIT-CEP benchmark stand-ins;
* :mod:`repro.simulation` -- vectorised gate-level logic simulation and TVLA
  stimulus campaigns;
* :mod:`repro.power` -- per-gate power traces and area/power/delay analysis;
* :mod:`repro.tvla` -- Welch's t-test leakage assessment with one-pass
  moments;
* :mod:`repro.masking` -- Trichina / DOM masked composites and the masking
  transform;
* :mod:`repro.features`, :mod:`repro.ml`, :mod:`repro.xai` -- structural
  features, from-scratch tree ensembles (Random Forest, XGBoost-style
  boosting, AdaBoost, SMOTE) and SHAP explainability with rule extraction;
* :mod:`repro.core` -- the POLARIS algorithms (cognition generation and
  XAI-guided masking) and the end-to-end pipeline;
* :mod:`repro.campaign` -- distributed, resumable TVLA campaign
  orchestration: content-hashed campaign specs, a SQLite task queue with
  lease/ack/retry (``QueueExecutor`` plugs into the sharded drivers),
  checkpoint/resume, a content-addressed result store and the
  ``polaris-campaign`` CLI;
* :mod:`repro.baselines` -- the VALIANT comparison flow;
* :mod:`repro.workloads` -- the training / evaluation design suites.

Quickstart::

    from repro import workloads
    from repro.core import PolarisConfig, train_polaris, protect_design

    config = PolarisConfig(msize=40, iterations=3)
    trained = train_polaris(workloads.training_designs(), config)
    report = protect_design(workloads.evaluation_designs()[0], trained)
    print(report.leakage_reduction_pct)
"""

from . import (
    baselines,
    campaign,
    core,
    features,
    masking,
    ml,
    netlist,
    power,
    simulation,
    tvla,
    workloads,
    xai,
)

__version__ = "1.0.0"

__all__ = [
    "baselines",
    "campaign",
    "core",
    "features",
    "masking",
    "ml",
    "netlist",
    "power",
    "simulation",
    "tvla",
    "workloads",
    "xai",
    "__version__",
]
