"""Tests for the power model, trace generation and overhead analysis."""

import numpy as np
import pytest

from repro.masking import apply_masking, maskable_gates
from repro.netlist import GateType, Netlist
from repro.power import (
    DesignMetrics,
    GatePowerModel,
    PowerModelConfig,
    PowerTraceGenerator,
    PowerTraces,
    analyze_design,
    critical_path_delay,
    overhead_report,
)
from repro.simulation import SimulationError, fixed_vs_random_campaigns


class TestGatePowerModel:
    def test_unmasked_power_scales_with_toggles(self, tiny_netlist):
        model = GatePowerModel(config=PowerModelConfig(noise_sigma=0.0))
        gate = tiny_netlist.gate("g_and")
        quiet = model.unmasked_power(gate, np.zeros(10, dtype=bool))
        busy = model.unmasked_power(gate, np.ones(10, dtype=bool))
        assert (busy > quiet).all()
        assert quiet.min() > 0  # static floor

    def test_load_increases_power(self, tiny_netlist):
        model = GatePowerModel(config=PowerModelConfig(noise_sigma=0.0))
        gate = tiny_netlist.gate("g_and")
        toggles = np.ones(5, dtype=bool)
        low = model.unmasked_power(gate, toggles, fanout=1)
        high = model.unmasked_power(gate, toggles, fanout=4)
        assert (high > low).all()

    def test_masked_power_positive_and_noisy_free(self, rng):
        model = GatePowerModel(config=PowerModelConfig(noise_sigma=0.0), seed=2)
        from repro.netlist.netlist import Gate
        masked_gate = Gate("m", GateType.MASKED_AND, ["a", "b"], "y",
                           {"masked_from": "AND"})
        a_prev = rng.integers(0, 2, 200).astype(bool)
        b_prev = rng.integers(0, 2, 200).astype(bool)
        a_cur = rng.integers(0, 2, 200).astype(bool)
        b_cur = rng.integers(0, 2, 200).astype(bool)
        power = model.masked_power(masked_gate, (a_prev, b_prev), (a_cur, b_cur))
        assert power.shape == (200,)
        assert (power >= 0).all()
        assert power.std() > 0  # fresh masks randomise the consumption

    def test_valiant_style_retains_more_data_dependence(self, rng):
        config = PowerModelConfig(noise_sigma=0.0)
        model = GatePowerModel(config=config, seed=3)
        from repro.netlist.netlist import Gate
        n = 4000
        a_prev = rng.integers(0, 2, n).astype(bool)
        b_prev = rng.integers(0, 2, n).astype(bool)
        a_cur = rng.integers(0, 2, n).astype(bool)
        b_cur = rng.integers(0, 2, n).astype(bool)
        toggles = (np.logical_xor(a_prev, a_cur).astype(float)
                   + np.logical_xor(b_prev, b_cur).astype(float)) / 2.0
        trichina = Gate("m", GateType.MASKED_AND, ["a", "b"], "y",
                        {"masked_from": "AND", "protection_style": "trichina"})
        valiant = Gate("m", GateType.MASKED_AND, ["a", "b"], "y",
                       {"masked_from": "AND", "protection_style": "valiant"})
        p_tri = model.masked_power(trichina, (a_prev, b_prev), (a_cur, b_cur))
        p_val = model.masked_power(valiant, (a_prev, b_prev), (a_cur, b_cur))
        corr_tri = np.corrcoef(p_tri, toggles)[0, 1]
        corr_val = np.corrcoef(p_val, toggles)[0, 1]
        assert corr_val > corr_tri  # VALIANT cells leak more of the input activity

    def test_input_glitch_factor_monotone(self):
        model = GatePowerModel(config=PowerModelConfig())
        assert model.input_glitch_factor(1.0) > model.input_glitch_factor(0.0)

    def test_noise_addition(self):
        model = GatePowerModel(config=PowerModelConfig(noise_sigma=0.5), seed=1)
        clean = np.full(1000, 3.0)
        noisy = model.add_noise(clean)
        assert noisy.std() > 0.1
        model_quiet = GatePowerModel(config=PowerModelConfig(noise_sigma=0.0))
        np.testing.assert_array_equal(model_quiet.add_noise(clean), clean)


class TestPowerTraces:
    def test_trace_matrix_shape(self, tiny_netlist):
        generator = PowerTraceGenerator(tiny_netlist, seed=1)
        fixed, rand = fixed_vs_random_campaigns(tiny_netlist, 50, seed=1)
        traces = generator.generate(fixed)
        assert isinstance(traces, PowerTraces)
        assert traces.per_gate.shape == (50, len(tiny_netlist))
        np.testing.assert_allclose(traces.total, traces.per_gate.sum(axis=1))

    def test_gate_column_lookup(self, tiny_netlist):
        generator = PowerTraceGenerator(tiny_netlist, seed=1)
        fixed, _ = fixed_vs_random_campaigns(tiny_netlist, 20, seed=1)
        traces = generator.generate(fixed)
        column = traces.gate_column("g_and")
        assert column.shape == (20,)
        with pytest.raises(KeyError):
            traces.gate_column("nonexistent")

    def test_masked_gates_get_power_columns(self, tiny_netlist):
        masked = apply_masking(tiny_netlist, maskable_gates(tiny_netlist)).netlist
        generator = PowerTraceGenerator(masked, seed=1)
        fixed, _ = fixed_vs_random_campaigns(masked, 30, seed=1)
        traces = generator.generate(fixed)
        assert traces.per_gate.shape[1] == len(masked)
        assert (traces.per_gate >= 0).sum() > 0


class TestVectorisedEngine:
    def test_matches_loop_exactly_without_noise(self, random_netlist):
        # With noise disabled and no masked cells both implementations are
        # deterministic; the vectorised engine must reproduce the per-gate
        # loop to float32 rounding.
        config = PowerModelConfig(noise_sigma=0.0)
        generator = PowerTraceGenerator(random_netlist, config=config, seed=2)
        fixed, rand = fixed_vs_random_campaigns(random_netlist, 400, seed=2)
        for campaign in (fixed, rand):
            vectorised = generator.generate(campaign)
            loop = generator.generate_loop(campaign)
            assert vectorised.gate_names == loop.gate_names
            np.testing.assert_allclose(
                vectorised.per_gate.astype(float), loop.per_gate,
                rtol=1e-6, atol=1e-6)

    def test_matches_loop_distribution_for_masked(self, tiny_netlist, rng):
        # Masked composites draw randomness differently in the two
        # implementations (lookup-table mask index vs per-gate mask bits),
        # so compare their first two moments instead of raw samples.
        masked = apply_masking(tiny_netlist, maskable_gates(tiny_netlist)).netlist
        config = PowerModelConfig(noise_sigma=0.0)
        generator = PowerTraceGenerator(masked, config=config, seed=3)
        _, rand = fixed_vs_random_campaigns(masked, 5000, seed=3)
        vectorised = generator.generate(rand)
        loop = generator.generate_loop(rand)
        for name in loop.gate_names:
            column_vec = vectorised.gate_column(name).astype(float)
            column_loop = loop.gate_column(name)
            assert column_vec.mean() == pytest.approx(column_loop.mean(),
                                                      abs=0.15)
            assert column_vec.std() == pytest.approx(column_loop.std(),
                                                     rel=0.15)

    def test_gaussian_noise_mode_in_vectorised_engine(self, tiny_netlist):
        config = PowerModelConfig(noise_mode="gaussian")
        generator = PowerTraceGenerator(tiny_netlist, config=config, seed=4)
        fixed, _ = fixed_vs_random_campaigns(tiny_netlist, 2000, seed=4)
        traces = generator.generate(fixed)
        reference = GatePowerModel(config=config)
        sigma = reference.noise_sigma_abs()
        # The fixed campaign keeps each gate's noiseless power constant, so
        # the column spread is the configured noise sigma.
        spreads = traces.per_gate.std(axis=0)
        assert spreads == pytest.approx(np.full(len(tiny_netlist), sigma),
                                        rel=0.25)

    def test_fast_noise_matches_sigma(self, tiny_netlist):
        generator = PowerTraceGenerator(tiny_netlist, seed=4)
        fixed, _ = fixed_vs_random_campaigns(tiny_netlist, 4000, seed=4)
        traces = generator.generate(fixed)
        sigma = generator._model.noise_sigma_abs()
        spreads = traces.per_gate.std(axis=0)
        assert spreads == pytest.approx(np.full(len(tiny_netlist), sigma),
                                        rel=0.2)

    def test_invalid_noise_mode_rejected(self):
        with pytest.raises(ValueError, match="noise_mode"):
            PowerModelConfig(noise_mode="bogus")

    def test_loop_path_honours_explicit_fast_noise(self, tiny_netlist):
        config = PowerModelConfig(noise_mode="fast")
        generator = PowerTraceGenerator(tiny_netlist, config=config, seed=6,
                                        vectorised=False)
        fixed, _ = fixed_vs_random_campaigns(tiny_netlist, 4000, seed=6)
        traces = generator.generate(fixed)
        sigma = generator._model.noise_sigma_abs()
        # The popcount sampler yields a 17-point lattice per column (the
        # fixed campaign keeps the noiseless power constant), with the
        # configured sigma.
        assert traces.per_gate.std(axis=0) == pytest.approx(
            np.full(len(tiny_netlist), sigma), rel=0.2)
        column = traces.gate_column(traces.gate_names[0])
        assert len(np.unique(np.round(column, 9))) <= 17

    def test_stream_chunks_cover_campaign(self, tiny_netlist):
        generator = PowerTraceGenerator(tiny_netlist, seed=1)
        fixed, _ = fixed_vs_random_campaigns(tiny_netlist, 250, seed=1)
        chunks = list(generator.generate_stream(fixed, chunk_traces=64))
        assert [chunk.n_traces for chunk in chunks] == [64, 64, 64, 58]
        assert all(chunk.gate_names == generator.gate_names
                   for chunk in chunks)
        with pytest.raises(ValueError):
            next(generator.generate_stream(fixed, chunk_traces=0))

    def test_mask_reuse_mode_leaks_through_shares(self, tiny_netlist):
        # mask_refresh=False models faulty masking: the shares track the
        # data, so the masked design's share toggles become data-dependent.
        masked = apply_masking(tiny_netlist, maskable_gates(tiny_netlist)).netlist
        faulty = PowerTraceGenerator(
            masked, config=PowerModelConfig(noise_sigma=0.0,
                                            mask_refresh=False), seed=5)
        fixed, rand = fixed_vs_random_campaigns(masked, 2000, seed=5)
        fixed_traces, rand_traces = faulty.generate_pair((fixed, rand))
        # A faulty-masked gate's fixed-input power collapses to (nearly)
        # constant per trace while the random group keeps its spread.
        assert (fixed_traces.per_gate.std(axis=0)
                < rand_traces.per_gate.std(axis=0)).mean() > 0.5

    def test_malformed_masked_gate_raises(self):
        netlist = Netlist("broken")
        netlist.add_primary_input("a")
        netlist.add_primary_output("y")
        netlist.add_gate("m", GateType.MASKED_AND, ["a"], "y",
                         {"masked_from": "AND"})
        with pytest.raises(SimulationError, match="masked gate 'm'"):
            PowerTraceGenerator(netlist)


class TestOverheadAnalysis:
    def test_analyze_design_counts_and_positivity(self, tiny_netlist):
        metrics = analyze_design(tiny_netlist)
        assert metrics.gate_count == len(tiny_netlist)
        assert metrics.area > 0 and metrics.power > 0 and metrics.delay > 0

    def test_masking_increases_all_metrics(self, random_netlist):
        masked = apply_masking(random_netlist, maskable_gates(random_netlist)).netlist
        original = analyze_design(random_netlist)
        protected = analyze_design(masked)
        assert protected.area > original.area
        assert protected.power > original.power
        assert protected.delay >= original.delay

    def test_overhead_scale_attribute_respected(self, tiny_netlist):
        plain = apply_masking(tiny_netlist, ["g_and"]).netlist
        scaled = apply_masking(tiny_netlist, ["g_and"], overhead_scale=2.0).netlist
        assert analyze_design(scaled).area > analyze_design(plain).area

    def test_critical_path_delay_matches_depth_ordering(self, tiny_netlist):
        shallow = Netlist("shallow")
        shallow.add_primary_input("a")
        shallow.add_primary_input("b")
        shallow.add_primary_output("y")
        shallow.add_gate("g", GateType.AND, ["a", "b"], "y")
        assert critical_path_delay(tiny_netlist) > critical_path_delay(shallow)

    def test_activity_weighted_power(self, tiny_netlist):
        idle = analyze_design(tiny_netlist,
                              activity={g.name: 0.0 for g in tiny_netlist.gates})
        busy = analyze_design(tiny_netlist,
                              activity={g.name: 1.0 for g in tiny_netlist.gates})
        assert busy.power > idle.power

    def test_overhead_report_fields(self, tiny_netlist):
        masked = apply_masking(tiny_netlist, ["g_and"]).netlist
        report = overhead_report(analyze_design(tiny_netlist), analyze_design(masked))
        assert report["area_ratio"] >= 1.0
        assert report["area_increase_pct"] == pytest.approx(
            (report["area_ratio"] - 1.0) * 100.0)

    def test_ratios_to(self):
        base = DesignMetrics(area=10, power=2, delay=1, gate_count=5)
        other = DesignMetrics(area=20, power=4, delay=3, gate_count=5)
        ratios = other.ratios_to(base)
        assert ratios == {"area": 2.0, "power": 2.0, "delay": 3.0}
