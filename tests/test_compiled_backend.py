"""Cross-backend equivalence: the fused compiled kernel vs the gate loop.

The compiled backend (``repro.simulation.compiled``) must be **bit-identical**
to the per-gate reference loop on every net of every design — that is the
contract that lets ``TvlaConfig.sim_backend`` default to ``"compiled"``
without perturbing any published t-value.  This module pins it down over

* a hand-built netlist covering every combinational cell-library gate type
  (including wide fan-ins, MUX, masked composites and the
  ``inverted_output`` attribute),
* sequential multi-cycle runs,
* every paper benchmark netlist (plus a fully masked variant),
* hypothesis-generated random netlists (the property test of ISSUE 3), and
* end-to-end TVLA campaigns (t-values to ~1e-12, in fact exactly equal).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.masking import apply_masking, maskable_gates
from repro.netlist import (
    GateType,
    Netlist,
    RandomLogicSpec,
    generate_random_logic,
    list_benchmarks,
    load_benchmark,
)
from repro.power import PowerTraceGenerator
from repro.simulation import (
    CompilationError,
    CompiledNetlist,
    LogicSimulator,
    fixed_vs_random_campaigns,
)
from repro.tvla import TvlaConfig, assess_leakage, assess_leakage_sharded

SETTINGS = settings(max_examples=25, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def assert_backends_agree(netlist, n_vectors=256, seed=0, cycles=1):
    """Evaluate ``netlist`` on both backends and require bit-equality."""
    fast = LogicSimulator(netlist, backend="compiled")
    slow = LogicSimulator(netlist, backend="loop")
    assert fast.backend == "compiled", "planner unexpectedly fell back"
    assert slow.backend == "loop"
    rng = np.random.default_rng(seed)
    stimulus = [
        {net: rng.integers(0, 2, n_vectors).astype(bool)
         for net in netlist.primary_inputs}
        for _ in range(cycles)
    ]
    fast_results = fast.run_cycles(stimulus)
    slow_results = slow.run_cycles(stimulus)
    for fast_result, slow_result in zip(fast_results, slow_results):
        assert set(fast_result.net_values) == set(slow_result.net_values)
        for net in slow_result.net_values:
            np.testing.assert_array_equal(
                fast_result.net_values[net], slow_result.net_values[net],
                err_msg=f"net {net!r} diverges")
        assert set(fast_result.next_state) == set(slow_result.next_state)
        for net in slow_result.next_state:
            np.testing.assert_array_equal(
                fast_result.next_state[net], slow_result.next_state[net],
                err_msg=f"register {net!r} diverges")
    return fast


def all_gate_types_netlist() -> Netlist:
    """A netlist instantiating every combinational cell-library gate type.

    Includes wide fan-ins (3/4-input AND, 3-input XOR), a MUX, a DFF, and
    all four masked composites — one with the transform's
    ``inverted_output`` attribute set.
    """
    netlist = Netlist("all_types")
    for net in ("a", "b", "c", "d", "r0", "r1"):
        netlist.add_primary_input(net)
    netlist.add_gate("g_buf", GateType.BUF, ["a"], "w_buf")
    netlist.add_gate("g_not", GateType.NOT, ["b"], "w_not")
    netlist.add_gate("g_and2", GateType.AND, ["a", "b"], "w_and2")
    netlist.add_gate("g_and3", GateType.AND, ["a", "b", "c"], "w_and3")
    netlist.add_gate("g_and4", GateType.AND, ["a", "b", "c", "d"], "w_and4")
    netlist.add_gate("g_nand", GateType.NAND, ["c", "d"], "w_nand")
    netlist.add_gate("g_or", GateType.OR, ["w_buf", "w_not"], "w_or")
    netlist.add_gate("g_nor", GateType.NOR, ["w_and2", "d"], "w_nor")
    netlist.add_gate("g_xor", GateType.XOR, ["w_and3", "w_nand"], "w_xor")
    netlist.add_gate("g_xor3", GateType.XOR, ["a", "c", "w_or"], "w_xor3")
    netlist.add_gate("g_xnor", GateType.XNOR, ["w_xor", "w_nor"], "w_xnor")
    netlist.add_gate("g_mux", GateType.MUX, ["w_xor3", "w_xnor", "a"], "w_mux")
    # Masked composites: two data inputs plus randomness nets; the DOM
    # variant reads the register output, and one composite carries the
    # transform's folded output inversion.
    netlist.add_gate("g_mand", GateType.MASKED_AND, ["w_mux", "b", "r0"],
                     "w_mand")
    netlist.add_gate("g_mor", GateType.MASKED_OR, ["w_mand", "c", "r1"],
                     "w_mor")
    netlist.add_gate("g_mxor", GateType.MASKED_XOR, ["w_mor", "d"], "w_mxor")
    netlist.add_gate("g_ff", GateType.DFF, ["w_mxor"], "q")
    netlist.add_gate("g_mdom", GateType.MASKED_AND_DOM, ["q", "a", "r0"],
                     "w_mdom")
    netlist.add_gate("g_mnand", GateType.MASKED_AND, ["w_mdom", "b", "r1"],
                     "y", attributes={"inverted_output": True,
                                      "masked_from": "NAND"})
    netlist.add_primary_output("y")
    return netlist


class TestGateTypeCoverage:
    def test_every_gate_type_bit_identical(self):
        fast = assert_backends_agree(all_gate_types_netlist(), cycles=3,
                                     n_vectors=512)
        # Every combinational gate of the design went through the fused
        # kernels (no silent fallback, no gate left unplanned).
        assert fast.plan is not None
        assert fast.plan.n_gates == sum(
            1 for g in all_gate_types_netlist().gates
            if g.gate_type.is_combinational)

    def test_undriven_nets_default_to_zero(self):
        netlist = Netlist("undriven")
        netlist.add_primary_input("a")
        netlist.add_gate("g1", GateType.AND, ["a", "floating"], "y")
        netlist.add_primary_output("y")
        assert_backends_agree(netlist, n_vectors=64)
        result = LogicSimulator(netlist).evaluate(
            {"a": np.ones(8, dtype=bool)})
        np.testing.assert_array_equal(result.net_values["floating"],
                                      np.zeros(8, dtype=bool))
        np.testing.assert_array_equal(result.net_values["y"],
                                      np.zeros(8, dtype=bool))


class TestBenchmarkNetlists:
    @pytest.mark.parametrize("name",
                             [spec.name for spec in list_benchmarks()])
    def test_benchmark_bit_identical(self, name):
        netlist = load_benchmark(name, scale=0.15, seed=11)
        assert_backends_agree(netlist, n_vectors=256, seed=3, cycles=2)

    def test_masked_benchmark_bit_identical(self):
        netlist = load_benchmark("md5", scale=0.2, seed=11)
        masked = apply_masking(netlist, maskable_gates(netlist)).netlist
        assert_backends_agree(masked, n_vectors=256, seed=4)


class TestHypothesisProperty:
    @SETTINGS
    @given(
        n_gates=st.integers(min_value=1, max_value=120),
        n_inputs=st.integers(min_value=2, max_value=24),
        profile=st.sampled_from(["crypto", "control", "arithmetic",
                                 "random"]),
        locality=st.floats(min_value=0.05, max_value=0.95),
        register_fraction=st.sampled_from([0.0, 0.0, 0.15, 0.4]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_random_netlists_bit_identical(self, n_gates, n_inputs, profile,
                                           locality, register_fraction,
                                           seed):
        spec = RandomLogicSpec(n_gates=n_gates, n_inputs=n_inputs,
                               n_outputs=min(4, n_gates), profile=profile,
                               locality=locality,
                               register_fraction=register_fraction,
                               seed=seed)
        netlist = generate_random_logic(spec)
        assert_backends_agree(netlist, n_vectors=73, seed=seed,
                              cycles=2 if register_fraction else 1)


class TestTvlaEquivalence:
    def test_t_values_agree_across_backends(self, tiny_netlist):
        netlist = load_benchmark("arbiter", scale=0.15, seed=11)
        masked = apply_masking(netlist, maskable_gates(netlist)).netlist
        for design in (netlist, masked):
            results = {}
            for backend in ("compiled", "loop"):
                config = TvlaConfig(n_traces=160, n_fixed_classes=2, seed=5,
                                    chunk_traces=64, tvla_order=2,
                                    sim_backend=backend)
                results[backend] = assess_leakage(design, config)
            compiled, loop = results["compiled"], results["loop"]
            assert compiled.gate_names == loop.gate_names
            # Identical traces feed identical accumulators, so the
            # agreement is exact — well inside the ~1e-12 contract.
            np.testing.assert_allclose(compiled.t_values, loop.t_values,
                                       rtol=1e-12, atol=1e-12)
            np.testing.assert_array_equal(compiled.t_values, loop.t_values)
            np.testing.assert_array_equal(compiled.order_t_values[2],
                                          loop.order_t_values[2])

    def test_sharded_compiled_matches_serial_loop(self):
        netlist = load_benchmark("voter", scale=0.2, seed=11)
        config = TvlaConfig(n_traces=192, n_fixed_classes=1, seed=7,
                            chunk_traces=32, streaming=True)
        serial_loop = assess_leakage(
            netlist, TvlaConfig(n_traces=192, n_fixed_classes=1, seed=7,
                                chunk_traces=32, streaming=True,
                                sim_backend="loop"))
        sharded = assess_leakage_sharded(netlist, config, n_shards=4,
                                         executor="thread", max_workers=2)
        np.testing.assert_allclose(sharded.t_values, serial_loop.t_values,
                                   rtol=1e-12, atol=1e-12)

    def test_power_traces_bit_identical(self):
        netlist = load_benchmark("sin", scale=0.2, seed=11)
        masked = apply_masking(netlist, maskable_gates(netlist)).netlist
        fixed, rnd = fixed_vs_random_campaigns(masked, 200, seed=1)
        compiled_gen = PowerTraceGenerator(masked, seed=1,
                                           sim_backend="compiled")
        loop_sim_gen = PowerTraceGenerator(masked, seed=1,
                                           sim_backend="loop")
        for campaign in (fixed, rnd):
            fast = compiled_gen.generate(campaign,
                                         rng=np.random.default_rng(3))
            slow = loop_sim_gen.generate(campaign,
                                         rng=np.random.default_rng(3))
            assert fast.gate_names == slow.gate_names
            np.testing.assert_array_equal(fast.per_gate, slow.per_gate)


class TestPlanStructure:
    def test_segments_are_topologically_consistent(self):
        plan = CompiledNetlist(load_benchmark("md5", scale=0.2, seed=11))
        produced_before = 1 + len(plan.netlist.primary_inputs) + sum(
            1 for _ in plan.netlist.sequential_gates())
        for segment in plan.segments:
            # Contiguous output block, directly after previous segments.
            assert segment.out_start == produced_before
            assert segment.n_gates == segment.operand_rows.shape[1]
            # Operands only read rows produced by earlier segments/sources.
            assert segment.operand_rows.max() < segment.out_start
            produced_before = segment.out_stop
        assert produced_before == plan.n_signals
        stats = plan.describe()
        assert stats["n_gates"] == plan.n_gates
        assert stats["n_segments"] < stats["n_gates"]

    def test_state_matrix_matches_net_values(self):
        netlist = load_benchmark("des3", scale=0.15, seed=11)
        simulator = LogicSimulator(netlist)
        rng = np.random.default_rng(0)
        stimulus = {net: rng.integers(0, 2, 65).astype(bool)
                    for net in netlist.primary_inputs}
        result = simulator.evaluate(stimulus)
        assert result.state_matrix is not None
        nets = list(result.net_values)
        rows = simulator.signal_rows(nets)
        gathered = result.state_matrix[rows]
        for i, net in enumerate(nets):
            np.testing.assert_array_equal(gathered[i],
                                          result.net_values[net])

    def test_compiled_net_values_are_read_only(self, tiny_netlist):
        simulator = LogicSimulator(tiny_netlist)
        assert simulator.backend == "compiled"
        stimulus = {net: np.ones(8, dtype=bool)
                    for net in tiny_netlist.primary_inputs}
        result = simulator.evaluate(stimulus)
        with pytest.raises(ValueError):
            result.net_values["n1"][:] = False
        with pytest.raises(ValueError):
            result.state_matrix[:] = False


class TestFallback:
    def test_malformed_mux_falls_back_to_loop(self):
        netlist = Netlist("bad_mux")
        for net in ("a", "b"):
            netlist.add_primary_input(net)
        netlist.add_gate("g_mux", GateType.MUX, ["a", "b"], "y")
        netlist.add_primary_output("y")
        with pytest.raises(CompilationError):
            CompiledNetlist(netlist)
        simulator = LogicSimulator(netlist, backend="compiled")
        assert simulator.backend == "loop"
        # The loop backend preserves the reference engine's lazy error.
        with pytest.raises(ValueError, match="MUX requires exactly 3"):
            simulator.evaluate({net: np.zeros(4, dtype=bool)
                                for net in netlist.primary_inputs})

    def test_unknown_backend_rejected(self, tiny_netlist):
        with pytest.raises(ValueError, match="backend must be one of"):
            LogicSimulator(tiny_netlist, backend="turbo")

    def test_unknown_sim_backend_rejected_in_config(self):
        with pytest.raises(ValueError, match="sim_backend must be one of"):
            TvlaConfig(sim_backend="turbo")
