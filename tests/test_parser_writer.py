"""Tests for BENCH parsing and writing."""

import pytest

from repro.netlist import (
    GateType,
    ParseError,
    load_benchmark,
    parse_bench,
    parse_bench_file,
    write_bench,
    write_bench_file,
)

SAMPLE = """
# name: sample
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
n1 = NAND(a, b)
n2 = INV(c)
y = XOR(n1, n2)
"""


class TestParser:
    def test_parse_basic(self):
        netlist = parse_bench(SAMPLE)
        assert netlist.name == "sample"
        assert netlist.primary_inputs == ("a", "b", "c")
        assert netlist.primary_outputs == ("y",)
        assert len(netlist) == 3
        assert netlist.driver_of("y").gate_type is GateType.XOR

    def test_alias_inv_maps_to_not(self):
        netlist = parse_bench(SAMPLE)
        assert netlist.driver_of("n2").gate_type is GateType.NOT

    def test_unknown_gate_type_raises_with_line_number(self):
        text = "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n"
        with pytest.raises(ParseError, match="line 3"):
            parse_bench(text)

    def test_malformed_statement_raises(self):
        with pytest.raises(ParseError, match="unrecognised"):
            parse_bench("INPUT(a)\nthis is not bench\n")

    def test_gate_without_inputs_raises(self):
        with pytest.raises(ParseError, match="no inputs"):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND()\n")

    def test_duplicate_driver_raises_parse_error(self):
        text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\ny = OR(a, b)\n"
        with pytest.raises(ParseError):
            parse_bench(text)

    def test_comments_and_blank_lines_ignored(self):
        text = "# hello\n\nINPUT(a)\n# another\nOUTPUT(a)\n"
        netlist = parse_bench(text)
        assert netlist.primary_inputs == ("a",)
        assert len(netlist) == 0


class TestWriter:
    def test_roundtrip_preserves_structure(self, tiny_netlist):
        text = write_bench(tiny_netlist)
        parsed = parse_bench(text)
        assert parsed.name == tiny_netlist.name
        assert parsed.primary_inputs == tiny_netlist.primary_inputs
        assert set(parsed.primary_outputs) == set(tiny_netlist.primary_outputs)
        assert len(parsed) == len(tiny_netlist)
        # Per-net driver types must match.
        for gate in tiny_netlist.gates:
            assert parsed.driver_of(gate.output).gate_type is gate.gate_type

    def test_roundtrip_benchmark(self):
        netlist = load_benchmark("c432", scale=0.3)
        parsed = parse_bench(write_bench(netlist))
        assert len(parsed) == len(netlist)
        assert set(parsed.nets) == set(netlist.nets)

    def test_file_roundtrip(self, tiny_netlist, tmp_path):
        path = write_bench_file(tiny_netlist, tmp_path / "tiny.bench")
        parsed = parse_bench_file(path)
        assert parsed.name == "tiny"
        assert len(parsed) == len(tiny_netlist)
