"""Regression tests for sharded parallel TVLA campaigns.

The contract pinned down here is what makes sharding trustworthy:

* sharded assessments (any shard count, any executor) match the unsharded
  streaming path to ~1e-12 in t-values, for every configured TVLA order;
* fixed seeds give bit-identical reruns, independent of the executor;
* shard ranges are chunk-aligned, disjoint and cover the campaign;
* ``assess_many`` fans several designs through one pool and returns exactly
  what per-design sharded assessments return.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.masking import apply_masking, maskable_gates
from repro.tvla import (
    TvlaConfig,
    assess_leakage,
    assess_leakage_sharded,
    assess_many,
    campaign_schedule,
    chunk_seed_streams,
    shard_trace_ranges,
)

#: Small-but-chunked campaign: 600 traces in 128-trace chunks -> 5 chunks.
SHARD_TVLA = dict(n_traces=600, n_fixed_classes=2, seed=9, chunk_traces=128)


@pytest.fixture(scope="module")
def sharded_config() -> TvlaConfig:
    return TvlaConfig(streaming=True, **SHARD_TVLA)


class TestShardRanges:
    @pytest.mark.parametrize("n_traces,n_shards,chunk", [
        (600, 4, 128), (600, 8, 128), (100, 3, 100), (2048, 2, 512),
        (1, 1, 1), (999, 7, 64),
    ])
    def test_cover_disjoint_chunk_aligned(self, n_traces, n_shards, chunk):
        ranges = shard_trace_ranges(n_traces, n_shards, chunk)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == n_traces
        for (start, stop), (next_start, _) in zip(ranges, ranges[1:]):
            assert stop == next_start
        for start, stop in ranges:
            assert stop > start
            assert start % chunk == 0

    def test_shards_capped_at_chunk_count(self):
        # 5 chunks cannot feed 8 shards; surplus shards are dropped rather
        # than returned empty.
        assert len(shard_trace_ranges(600, 8, 128)) == 5

    def test_even_distribution(self):
        ranges = shard_trace_ranges(2048, 4, 256)
        assert [stop - start for start, stop in ranges] == [512] * 4

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            shard_trace_ranges(0, 1, 1)
        with pytest.raises(ValueError):
            shard_trace_ranges(10, 0, 1)
        with pytest.raises(ValueError):
            shard_trace_ranges(10, 1, 0)


class TestSeedStreams:
    def test_streams_are_layout_independent(self):
        # The stream of chunk k is a pure function of (seed, class, group,
        # k): generating 3 or 10 chunks' worth of streams must agree on the
        # shared prefix.
        short = chunk_seed_streams(7, 1, 0, 3)
        long = chunk_seed_streams(7, 1, 0, 10)
        for a, b in zip(short, long):
            assert a.generate_state(4).tolist() == b.generate_state(4).tolist()

    def test_streams_differ_across_axes(self):
        base = chunk_seed_streams(7, 0, 0, 2)[0].generate_state(4).tolist()
        assert chunk_seed_streams(8, 0, 0, 2)[0].generate_state(4).tolist() != base
        assert chunk_seed_streams(7, 1, 0, 2)[0].generate_state(4).tolist() != base
        assert chunk_seed_streams(7, 0, 1, 2)[0].generate_state(4).tolist() != base
        assert chunk_seed_streams(7, 0, 0, 2)[1].generate_state(4).tolist() != base


class TestShardedRegression:
    @pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_matches_unsharded_streaming(self, small_benchmark, sharded_config,
                                         n_shards, executor):
        # The headline regression: sharded == unsharded to ~1e-12 in
        # t-values, for both pool executors, at every shard count.
        reference = assess_leakage(small_benchmark, sharded_config)
        sharded = assess_leakage_sharded(small_benchmark, sharded_config,
                                         n_shards=n_shards, executor=executor)
        np.testing.assert_allclose(sharded.t_values, reference.t_values,
                                   rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(sharded.mean_abs_t, reference.mean_abs_t,
                                   rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(sharded.degrees_of_freedom,
                                   reference.degrees_of_freedom,
                                   rtol=1e-9, atol=1e-9)
        assert sharded.gate_names == reference.gate_names
        assert sharded.n_shards == min(n_shards, 5)

    def test_serial_executor_matches(self, small_benchmark, sharded_config):
        reference = assess_leakage(small_benchmark, sharded_config)
        sharded = assess_leakage_sharded(small_benchmark, sharded_config,
                                         n_shards=3, executor="serial")
        np.testing.assert_allclose(sharded.t_values, reference.t_values,
                                   rtol=1e-12, atol=1e-12)

    def test_fixed_seed_reruns_bit_identical(self, small_benchmark,
                                             sharded_config):
        runs = [
            assess_leakage_sharded(small_benchmark, sharded_config,
                                   n_shards=4, executor=executor)
            for executor in ("thread", "thread", "process", "serial")
        ]
        for other in runs[1:]:
            assert np.array_equal(runs[0].t_values, other.t_values)
            assert np.array_equal(runs[0].mean_abs_t, other.mean_abs_t)

    def test_shard_count_does_not_change_results(self, small_benchmark,
                                                 sharded_config):
        # Documented contract: for a given seed the verdict is independent
        # of the shard layout (chunk_traces fixed).
        by_shards = {
            n: assess_leakage_sharded(small_benchmark, sharded_config,
                                      n_shards=n, executor="serial")
            for n in (1, 2, 5)
        }
        for n in (2, 5):
            np.testing.assert_allclose(by_shards[n].t_values,
                                       by_shards[1].t_values,
                                       rtol=1e-12, atol=1e-12)

    def test_higher_orders_through_shards(self, small_benchmark):
        config = TvlaConfig(tvla_order=3, **SHARD_TVLA)
        reference = assess_leakage(small_benchmark, config)
        sharded = assess_leakage_sharded(small_benchmark, config, n_shards=4,
                                         executor="process")
        for order in (2, 3):
            np.testing.assert_allclose(sharded.order_t_values[order],
                                       reference.order_t_values[order],
                                       rtol=1e-12, atol=1e-12)

    def test_loop_engine_generator_is_rebuilt_per_task(self, tiny_netlist):
        # The reference per-gate loop engine mutates per-generator model
        # state, so thread shards must not share it: each task rebuilds a
        # private generator, and the result still matches the serial loop
        # engine bit-for-bit RNG-wise (~1e-12 after merge).
        from repro.power import PowerTraceGenerator
        config = TvlaConfig(n_traces=300, n_fixed_classes=2, seed=4,
                            chunk_traces=64, streaming=True)
        loop_generator = PowerTraceGenerator(tiny_netlist,
                                             config=config.power,
                                             seed=config.seed,
                                             vectorised=False)
        reference = assess_leakage(tiny_netlist, config,
                                   generator=loop_generator)
        sharded = assess_leakage_sharded(tiny_netlist, config, n_shards=3,
                                         executor="thread",
                                         generator=PowerTraceGenerator(
                                             tiny_netlist,
                                             config=config.power,
                                             seed=config.seed,
                                             vectorised=False))
        np.testing.assert_allclose(sharded.t_values, reference.t_values,
                                   rtol=1e-12, atol=1e-12)

    def test_numpy_integer_order_accepted(self, tiny_netlist):
        config = TvlaConfig(n_traces=100, n_fixed_classes=1, seed=1,
                            tvla_order=int(np.int64(2)))
        assert config.moment_order() == 4
        from repro.tvla import moment_order_for_tvla
        assert moment_order_for_tvla(np.int64(3)) == 6

    def test_executor_instance_is_pluggable(self, small_benchmark,
                                            sharded_config):
        reference = assess_leakage(small_benchmark, sharded_config)
        with ThreadPoolExecutor(max_workers=2) as pool:
            sharded = assess_leakage_sharded(small_benchmark, sharded_config,
                                             n_shards=2, executor=pool)
        np.testing.assert_allclose(sharded.t_values, reference.t_values,
                                   rtol=1e-12, atol=1e-12)

    def test_schedule_reuse(self, small_benchmark, sharded_config):
        schedule = campaign_schedule(small_benchmark, sharded_config)
        direct = assess_leakage_sharded(small_benchmark, sharded_config,
                                        n_shards=2, executor="serial")
        reused = assess_leakage_sharded(small_benchmark, sharded_config,
                                        n_shards=2, executor="serial",
                                        campaigns=schedule)
        assert np.array_equal(direct.t_values, reused.t_values)

    def test_unknown_executor_rejected(self, small_benchmark, sharded_config):
        with pytest.raises(ValueError, match="executor"):
            assess_leakage_sharded(small_benchmark, sharded_config,
                                   executor="bogus")

    def test_invalid_schedule_rejected(self, tiny_netlist, small_benchmark,
                                       sharded_config):
        foreign = campaign_schedule(small_benchmark, sharded_config)
        with pytest.raises(ValueError, match="primary inputs"):
            assess_leakage_sharded(tiny_netlist, sharded_config,
                                   executor="serial", campaigns=foreign)


class TestAssessMany:
    def test_matches_per_design_sharded(self, small_benchmark, sharded_config):
        masked = apply_masking(small_benchmark,
                               maskable_gates(small_benchmark)).netlist
        results = assess_many([small_benchmark, masked], sharded_config,
                              n_shards=2, executor="thread")
        assert list(results) == [small_benchmark.name, masked.name]
        for netlist in (small_benchmark, masked):
            single = assess_leakage_sharded(netlist, sharded_config,
                                            n_shards=2, executor="serial")
            assert np.array_equal(results[netlist.name].t_values,
                                  single.t_values)

    def test_masked_design_improves(self, small_benchmark, sharded_config):
        masked = apply_masking(small_benchmark,
                               maskable_gates(small_benchmark)).netlist
        results = assess_many([small_benchmark, masked], sharded_config,
                              n_shards=2, executor="process")
        assert results[masked.name].mean_leakage < \
            results[small_benchmark.name].mean_leakage

    def test_duplicate_names_rejected(self, small_benchmark, sharded_config):
        with pytest.raises(ValueError, match="duplicate"):
            assess_many([small_benchmark, small_benchmark], sharded_config)
